#!/usr/bin/env python
"""CI chaos smoke: the supervision layer under real injected failures.

Three checks, any failure exits non-zero:

1. **Chaos campaign** — a supervised campaign whose workers measure
   through a :class:`FaultInjectingBackend` armed with hang-forever and
   worker-abort (``os._exit``) injections must complete, with stuck
   workers killed at the hard deadline, the pool respawned after
   crashes, and the poisoned genomes quarantined.  Supervisor telemetry
   is appended to ``--telemetry`` as JSON lines (the CI artifact).
2. **Graceful shutdown** — ``repro audit --max-wall-clock 0`` (the same
   code path as SIGTERM) must exit 75 and leave a resumable checkpoint.
3. **Checkpoint truncation** — truncating ``state.json`` of a finished
   checkpointed campaign must salvage the rotated snapshot, and the
   resumed campaign must reproduce the uncorrupted control bit-exactly.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.audit import AuditConfig, AuditRunner
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.faults import (
    FaultInjectingBackend,
    FaultInjectionConfig,
    FaultPolicy,
)
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import JsonlObserver, TelemetryCollector
from repro.experiments.setup import bulldozer_testbed
from repro.supervision import SupervisedExecutor
from repro.supervision.chaos import truncate_file

CHAOS = FaultInjectionConfig(
    seed=2,
    abort_rate=0.18,
    hang_forever_rate=0.12,
    hang_forever_s=3600.0,
)

CONFIG = AuditConfig(
    threads=2,
    ga=GaConfig(population_size=8, generations=2, seed=5),
)


def chaotic_platform():
    return MeasurementPlatform(
        backend=FaultInjectingBackend(bulldozer_testbed().backend,
                                      config=CHAOS)
    )


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def chaos_campaign(telemetry_path: str) -> None:
    collector = TelemetryCollector()
    observers = [collector]
    jsonl = None
    if telemetry_path:
        jsonl = JsonlObserver(telemetry_path)
        observers.append(jsonl)
    executor = SupervisedExecutor(
        2, task_timeout_s=3.0, max_pool_rebuilds=30, poll_s=0.05,
        observers=observers,
    )
    runner = AuditRunner(
        bulldozer_testbed(),
        config=CONFIG,
        executor=executor,
        observers=observers,
        platform_factory=chaotic_platform,
        fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
    )
    try:
        result = runner.run()
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    check(result.max_droop_v > 0, "chaos campaign completed with a winner")
    check(collector.supervisor_hangs >= 1,
          f"hung workers were killed ({collector.supervisor_hangs})")
    check(collector.supervisor_crashes >= 1,
          f"worker aborts were recovered ({collector.supervisor_crashes})")
    check(collector.quarantines >= 1,
          f"poisoned genomes were quarantined ({collector.quarantines})")


def graceful_shutdown(workdir: Path) -> None:
    store = workdir / "budget-campaign"
    command = [
        sys.executable, "-m", "repro", "audit",
        "--chip", "bulldozer", "--threads", "2",
        "--population", "4", "--generations", "2", "--seed", "1",
        "--checkpoint-dir", str(store), "--max-wall-clock", "0",
    ]
    proc = subprocess.run(command, capture_output=True, text=True)
    check(proc.returncode == 75,
          f"wall-clock stop exits 75 (got {proc.returncode})")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "audit", "--resume", str(store)],
        capture_output=True, text=True,
    )
    check(proc.returncode == 0,
          f"interrupted campaign resumes cleanly (got {proc.returncode})")


def truncation_resume() -> None:
    control = AuditRunner(bulldozer_testbed(), config=CONFIG).run()
    with tempfile.TemporaryDirectory() as tmp:
        store = CampaignCheckpoint(Path(tmp) / "campaign")
        AuditRunner(bulldozer_testbed(), config=CONFIG).run(checkpoint=store)
        truncate_file(store.state_path, keep_fraction=0.5)
        state = store.load()
        check(state is not None and state.salvaged,
              "truncated checkpoint salvages the rotated snapshot")
        resumed = AuditRunner(bulldozer_testbed(), config=CONFIG).run(
            checkpoint=store, resume=True
        )
    check(resumed.genome == control.genome
          and resumed.max_droop_v == control.max_droop_v
          and resumed.ga_result.history == control.ga_result.history,
          "resume after truncation is bit-identical to the control")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", default="",
                        help="append supervisor telemetry JSONL here")
    args = parser.parse_args()
    chaos_campaign(args.telemetry)
    with tempfile.TemporaryDirectory() as tmp:
        graceful_shutdown(Path(tmp))
    truncation_resume()
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
