"""Frequency-domain PDN analysis: resonance identification (paper Fig. 3).

Sweeps the load-side impedance over a log grid and extracts the three
resonance peaks — third (board, lowest frequency), second (package), and
first (die, highest frequency and the one stressmarks target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.errors import PdnError
from repro.pdn.network import PdnNetwork

#: Labels ordered by ascending frequency, following the paper's naming.
DROOP_ORDER_BY_FREQUENCY = ("third", "second", "first")


@dataclass(frozen=True)
class Resonance:
    """One impedance peak."""

    label: str
    frequency_hz: float
    impedance_ohm: float


@dataclass(frozen=True)
class ImpedanceSweep:
    """Result of an impedance sweep: the |Z(f)| curve plus its peaks."""

    frequencies_hz: np.ndarray
    impedance_ohm: np.ndarray
    resonances: tuple[Resonance, ...]

    def resonance(self, label: str) -> Resonance:
        """Look up a resonance by label ('first', 'second', 'third')."""
        for res in self.resonances:
            if res.label == label:
                return res
        raise PdnError(f"no resonance labelled {label!r} found")

    @property
    def first_droop(self) -> Resonance:
        """The first-droop resonance — the stressmark target frequency."""
        return self.resonance("first")


def sweep_impedance(
    network: PdnNetwork,
    *,
    f_min_hz: float = 1e3,
    f_max_hz: float = 1e9,
    points: int = 2000,
) -> ImpedanceSweep:
    """Sweep |Z(f)| on a log grid and label the resonance peaks.

    Peaks are found with :func:`scipy.signal.find_peaks` and labelled third /
    second / first in ascending frequency, matching paper Fig. 3.  A PDN
    whose stages are well separated yields exactly three.
    """
    if f_min_hz <= 0 or f_max_hz <= f_min_hz:
        raise PdnError("need 0 < f_min < f_max")
    if points < 16:
        raise PdnError("need at least 16 sweep points")
    freqs = np.logspace(np.log10(f_min_hz), np.log10(f_max_hz), points)
    z = network.impedance(freqs)
    peak_idx, _ = sp_signal.find_peaks(z)
    # Order peaks by frequency and label them third/second/first.
    peak_idx = sorted(peak_idx)
    resonances = []
    for label, idx in zip(DROOP_ORDER_BY_FREQUENCY, peak_idx[:3]):
        resonances.append(
            Resonance(
                label=label,
                frequency_hz=float(freqs[idx]),
                impedance_ohm=float(z[idx]),
            )
        )
    return ImpedanceSweep(
        frequencies_hz=freqs,
        impedance_ohm=z,
        resonances=tuple(resonances),
    )


def first_droop_frequency(network: PdnNetwork) -> float:
    """Convenience: the measured (damped) first-droop peak frequency in Hz."""
    # Focused fine sweep around the die stage's natural frequency.
    nominal = network.params.first_droop_frequency_hz
    freqs = np.linspace(nominal * 0.5, nominal * 1.5, 3001)
    z = network.impedance(freqs)
    return float(freqs[int(np.argmax(z))])
