"""State-space assembly of the three-stage PDN ladder.

The ladder of paper Fig. 2 is a sixth-order linear system: three inductor
currents and three capacitor voltages.  We assemble the continuous-time
state-space matrices once and expose:

* the **frequency response** (impedance seen by the die load), which gives
  Fig. 3's resonance peaks analytically, and
* the (A, B, C, D) deviation model used by the transient solver, where the
  input is the die load current and the output is the on-die supply voltage.

Sign conventions: state is the *deviation* from the zero-load equilibrium
(all node voltages at Vdd, no current flowing), the input is load current in
amperes (positive = drawing current), and the output is ``v_die - Vdd``
(negative values are droops).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PdnError
from repro.pdn.elements import PdnParameters


class PdnNetwork:
    """The assembled PDN: matrices plus frequency-domain queries."""

    #: State ordering: [i_board, i_pkg, i_die, v_board, v_pkg, v_die].
    STATE_DIM = 6

    def __init__(self, params: PdnParameters):
        self.params = params
        self._assemble()

    def _assemble(self) -> None:
        p = self.params
        r_ll = p.load_line_ohm
        s1, s2, s3 = p.board, p.package, p.die
        rs1 = s1.resistance_ohm + r_ll  # load line acts as extra VRM series R
        rs2, rs3 = s2.resistance_ohm, s3.resistance_ohm
        r1, r2, r3 = s1.esr_ohm, s2.esr_ohm, s3.esr_ohm
        l1, l2, l3 = s1.inductance_h, s2.inductance_h, s3.inductance_h
        c1, c2, c3 = s1.capacitance_f, s2.capacitance_f, s3.capacitance_f

        a = np.zeros((6, 6))
        # L1 di1/dt = -(rs1 + r1) i1 + r1 i2 - v1          (+ Vs, folded out)
        a[0, :] = [-(rs1 + r1) / l1, r1 / l1, 0.0, -1.0 / l1, 0.0, 0.0]
        # L2 di2/dt = r1 i1 - (r1 + rs2 + r2) i2 + r2 i3 + v1 - v2
        a[1, :] = [r1 / l2, -(r1 + rs2 + r2) / l2, r2 / l2, 1.0 / l2, -1.0 / l2, 0.0]
        # L3 di3/dt = r2 i2 - (r2 + rs3 + r3) i3 + v2 - v3  (+ r3 I via B)
        a[2, :] = [0.0, r2 / l3, -(r2 + rs3 + r3) / l3, 0.0, 1.0 / l3, -1.0 / l3]
        # C1 dv1/dt = i1 - i2
        a[3, :] = [1.0 / c1, -1.0 / c1, 0.0, 0.0, 0.0, 0.0]
        # C2 dv2/dt = i2 - i3
        a[4, :] = [0.0, 1.0 / c2, -1.0 / c2, 0.0, 0.0, 0.0]
        # C3 dv3/dt = i3 - I
        a[5, :] = [0.0, 0.0, 1.0 / c3, 0.0, 0.0, 0.0]

        b = np.zeros((6, 1))
        b[2, 0] = r3 / l3
        b[5, 0] = -1.0 / c3

        c = np.zeros((1, 6))
        c[0, 2] = r3
        c[0, 5] = 1.0
        d = np.array([[-r3]])

        self.a_matrix = a
        self.b_matrix = b
        self.c_matrix = c
        self.d_matrix = d

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------
    def transfer(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex transfer function H(f) from load current to (v_die - Vdd).

        ``H(0)`` equals minus the DC path resistance; at the first-droop
        resonance ``|H|`` peaks.
        """
        freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        if np.any(freqs < 0):
            raise PdnError("frequencies must be non-negative")
        s_values = 2j * np.pi * freqs
        eye = np.eye(self.STATE_DIM)
        out = np.empty(len(freqs), dtype=np.complex128)
        for idx, s in enumerate(s_values):
            m = s * eye - self.a_matrix
            x = np.linalg.solve(m, self.b_matrix)
            out[idx] = (self.c_matrix @ x + self.d_matrix)[0, 0]
        return out

    def impedance(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """|Z(f)| seen by the die load (ohms) — the curve of paper Fig. 3."""
        return np.abs(self.transfer(frequencies_hz))

    def dc_droop(self, current_a: float) -> float:
        """Steady-state IR droop (volts, positive) at constant load."""
        return self.params.dc_resistance_ohm * current_a

    def __repr__(self) -> str:
        f1 = self.params.first_droop_frequency_hz
        return f"PdnNetwork(vdd={self.params.vdd_nominal}, f1~{f1 / 1e6:.0f}MHz)"
