"""Lumped power-distribution-network parameters.

Paper Fig. 2 models the PDN as a three-stage RLC ladder — motherboard,
package, and die — each stage a series R+L feeding a decoupling capacitor
(with effective series resistance).  The three L/C interactions produce the
first, second, and third droop resonances of Fig. 3:

* **first droop** — package + die inductance against on-die decap,
  50–200 MHz (the one the paper, and this library, targets);
* **second droop** — socket/package inductance against package decap,
  low MHz;
* **third droop** — board inductance against bulk decap, tens–hundreds kHz.

Presets are tuned so the Bulldozer-like testbed resonates near 100 MHz and
the Phenom-like one near 80 MHz, with realistic milliohm-scale peak
impedances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LadderStage:
    """One RLC ladder stage: series R and L feeding a shunt capacitor.

    Parameters
    ----------
    resistance_ohm:
        Series (path) resistance of this stage.
    inductance_h:
        Series inductance of this stage.
    capacitance_f:
        Decoupling capacitance hanging off the stage's output node.
    esr_ohm:
        Effective series resistance of the decap (damping).
    """

    resistance_ohm: float
    inductance_h: float
    capacitance_f: float
    esr_ohm: float

    def __post_init__(self) -> None:
        for name in ("resistance_ohm", "inductance_h", "capacitance_f", "esr_ohm"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def natural_frequency_hz(self) -> float:
        """Undamped resonance 1/(2*pi*sqrt(LC)) of this stage in isolation."""
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance_h * self.capacitance_f))

    @property
    def characteristic_impedance_ohm(self) -> float:
        """sqrt(L/C) — sets the scale of the resonant impedance peak."""
        return math.sqrt(self.inductance_h / self.capacitance_f)

    @property
    def quality_factor(self) -> float:
        """Approximate Q of the stage tank (char. impedance over total R)."""
        return self.characteristic_impedance_ohm / (self.resistance_ohm + self.esr_ohm)


@dataclass(frozen=True)
class PdnParameters:
    """Full three-stage PDN description plus the VRM.

    ``board`` is the motherboard stage (third droop), ``package`` the
    socket/package stage (second droop), and ``die`` the package-to-die
    stage (first droop).  ``load_line_ohm`` is the VRM load-line output
    impedance; paper Fig. 9 measurements disable it, which is the default
    here (:meth:`with_load_line` re-enables it).
    """

    vdd_nominal: float
    board: LadderStage
    package: LadderStage
    die: LadderStage
    load_line_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ConfigurationError("vdd_nominal must be positive")
        if self.load_line_ohm < 0:
            raise ConfigurationError("load_line_ohm must be non-negative")
        # The stages must be ordered board -> package -> die by frequency.
        f3 = self.board.natural_frequency_hz
        f2 = self.package.natural_frequency_hz
        f1 = self.die.natural_frequency_hz
        if not f3 < f2 < f1:
            raise ConfigurationError(
                "stage natural frequencies must increase board < package < die "
                f"(got {f3:.3g}, {f2:.3g}, {f1:.3g} Hz)"
            )

    @property
    def stages(self) -> tuple[LadderStage, LadderStage, LadderStage]:
        """Stages ordered from VRM to die."""
        return (self.board, self.package, self.die)

    @property
    def dc_resistance_ohm(self) -> float:
        """Total series path resistance (plus load line when enabled)."""
        return (
            self.load_line_ohm
            + self.board.resistance_ohm
            + self.package.resistance_ohm
            + self.die.resistance_ohm
        )

    @property
    def first_droop_frequency_hz(self) -> float:
        """Nominal (undamped, isolated) first-droop resonance frequency."""
        return self.die.natural_frequency_hz

    def with_load_line(self, load_line_ohm: float) -> "PdnParameters":
        """Copy of these parameters with the VRM load line set."""
        return PdnParameters(
            vdd_nominal=self.vdd_nominal,
            board=self.board,
            package=self.package,
            die=self.die,
            load_line_ohm=load_line_ohm,
        )


def bulldozer_pdn(vdd: float = 1.2) -> PdnParameters:
    """PDN preset for the Bulldozer-like testbed (first droop ≈ 100 MHz)."""
    return PdnParameters(
        vdd_nominal=vdd,
        board=LadderStage(
            resistance_ohm=0.15e-3,
            inductance_h=9.4e-9,   # board spreading + VRM output inductance
            capacitance_f=3.0e-3,  # bulk electrolytics
            esr_ohm=2.0e-3,
        ),
        package=LadderStage(
            resistance_ohm=0.1e-3,
            inductance_h=0.20e-9,   # socket + package planes
            capacitance_f=30.0e-6,  # package ceramics
            esr_ohm=1.2e-3,
        ),
        die=LadderStage(
            resistance_ohm=0.05e-3,
            inductance_h=5.06e-12,  # package-to-die + on-die grid
            capacitance_f=0.5e-6,   # on-die decap
            esr_ohm=0.2e-3,
        ),
    )


def phenom_pdn(vdd: float = 1.3) -> PdnParameters:
    """PDN preset for the Phenom-II-like testbed (first droop ≈ 80 MHz).

    Same board (the paper swaps only the processor on the same board,
    Section V.C); different die stage because the older 45-nm part has less
    on-die decap and a different package.
    """
    base = bulldozer_pdn(vdd)
    return PdnParameters(
        vdd_nominal=vdd,
        board=base.board,
        package=base.package,
        die=LadderStage(
            resistance_ohm=0.08e-3,
            inductance_h=8.8e-12,
            capacitance_f=0.45e-6,  # -> ~80 MHz first droop
            esr_ohm=0.3e-3,
        ),
    )
