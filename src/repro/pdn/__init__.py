"""Power-distribution-network substrate: lumped RLC ladder + solvers.

The paper's PDN abstraction (Fig. 2/3): a board/package/die RLC ladder whose
L-C interactions produce the first/second/third droop resonances.  This
package provides the parameter presets, the state-space network, an
HSPICE-equivalent transient solver, and frequency-domain resonance analysis.
"""

from repro.pdn.elements import LadderStage, PdnParameters, bulldozer_pdn, phenom_pdn
from repro.pdn.impedance import (
    ImpedanceSweep,
    Resonance,
    first_droop_frequency,
    sweep_impedance,
)
from repro.pdn.netlist import export_netlist, parse_netlist_elements
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver, VoltageTrace

__all__ = [
    "ImpedanceSweep",
    "LadderStage",
    "PdnNetwork",
    "PdnParameters",
    "Resonance",
    "TransientSolver",
    "VoltageTrace",
    "bulldozer_pdn",
    "export_netlist",
    "first_droop_frequency",
    "parse_netlist_elements",
    "phenom_pdn",
    "sweep_impedance",
]
