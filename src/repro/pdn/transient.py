"""Transient simulation of the PDN: the library's "HSPICE".

The paper's simulation path converts a per-cycle current profile into a
current sink on a lumped RLC model and runs HSPICE to get the voltage-droop
waveform (Section III).  Our ladder is linear, so we do better than a
generic integrator: the continuous state space is discretised **exactly**
(zero-order hold) at the sample interval, factored into second-order
sections, and executed through ``scipy.signal.sosfilt`` — C-speed,
numerically stable, no time-step error for piecewise-constant current
(which per-cycle current profiles are).

Two solvers are provided:

* :meth:`TransientSolver.simulate` — general time-domain run over any
  :class:`~repro.power.trace.CurrentTrace` (used for excitation events,
  heterogeneous multi-core traces, and scope-style long captures);
* :meth:`TransientSolver.steady_state_periodic` — exact periodic steady
  state of a one-period current waveform via the frequency response (used
  by GA fitness and dithering sweeps, where the resonance is fully built).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from repro.errors import PdnError
from repro.pdn.network import PdnNetwork
from repro.power.trace import CurrentTrace
from repro.validation.invariants import check_current_samples, check_voltage_samples


@dataclass(frozen=True)
class VoltageTrace:
    """A sampled on-die supply-voltage waveform."""

    samples: np.ndarray
    dt: float
    vdd_nominal: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size == 0:
            raise PdnError("voltage trace must be a non-empty 1-D array")
        if self.dt <= 0:
            raise PdnError("dt must be positive")
        object.__setattr__(self, "samples", samples)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def min_v(self) -> float:
        return float(self.samples.min())

    @property
    def max_v(self) -> float:
        return float(self.samples.max())

    @property
    def max_droop_v(self) -> float:
        """Worst undershoot below nominal (positive number, volts).

        NaN samples yield a NaN droop (``np.maximum`` propagates, Python's
        ``max`` would not): a corrupt capture must poison the value, never
        silently read as "no droop".
        """
        return float(np.maximum(0.0, self.vdd_nominal - self.min_v))

    @property
    def max_overshoot_v(self) -> float:
        """Worst overshoot above nominal (positive number, volts)."""
        return float(np.maximum(0.0, self.max_v - self.vdd_nominal))

    @property
    def worst_droop_index(self) -> int:
        """Sample index of the deepest droop."""
        return int(np.argmin(self.samples))

    def time_axis(self) -> np.ndarray:
        """Sample times in seconds."""
        return np.arange(len(self.samples)) * self.dt


def _ss_to_sos(ad, bd, cd, dd) -> np.ndarray:
    """Discrete SISO state space → second-order sections, polynomial-free.

    Poles are eigenvalues of ``ad``; transmission zeros are the generalized
    eigenvalues of the Rosenbrock system pencil; the gain is fixed by
    matching the frequency response at one well-conditioned point.
    """
    from scipy import linalg

    n = ad.shape[0]
    poles = np.linalg.eigvals(ad)
    # Rosenbrock pencil: zeros z satisfy det([[ad - zI, bd], [cd, dd]]) = 0.
    pencil_a = np.block([[ad, bd], [cd, dd]])
    pencil_b = np.zeros_like(pencil_a)
    pencil_b[:n, :n] = np.eye(n)
    zeros = linalg.eigvals(pencil_a, pencil_b)
    zeros = zeros[np.isfinite(zeros)]
    # Gain: match H(z0) at a point away from poles and zeros.
    z0 = np.exp(1j * 0.7)
    h0 = (cd @ np.linalg.solve(z0 * np.eye(n) - ad, bd) + dd)[0, 0]
    gain = h0 * np.prod(z0 - poles) / np.prod(z0 - zeros)
    if abs(gain.imag) > 1e-6 * max(abs(gain.real), 1e-30):
        raise PdnError("state space did not reduce to a real rational filter")
    return signal.zpk2sos(zeros, poles, gain.real)


class TransientSolver:
    """ZOH-exact transient solver for one :class:`PdnNetwork` at fixed dt."""

    def __init__(self, network: PdnNetwork, dt: float):
        if dt <= 0:
            raise PdnError("dt must be positive")
        self.network = network
        self.dt = dt
        system = (
            network.a_matrix,
            network.b_matrix,
            network.c_matrix,
            network.d_matrix,
        )
        ad, bd, cd, dd, _ = signal.cont2discrete(system, dt, method="zoh")
        self._ad, self._bd, self._cd, self._dd = ad, bd, cd, dd
        # Single-input single-output: factor into second-order sections so
        # the recurrence runs inside sosfilt (C speed).  Any route through a
        # direct-form transfer function (including scipy's ss2zpk, which
        # expands the characteristic polynomial) is numerically unstable
        # here: the discrete poles of a stiff PDN (a 50 kHz board tank
        # sampled at ~3 GHz) sit so close to z = 1 that the expanded
        # polynomial coefficients cancel catastrophically.  We therefore
        # compute poles and zeros directly from eigenproblems.
        self._sos = _ss_to_sos(ad, bd, cd, dd)

    def simulate(
        self,
        load: CurrentTrace,
        *,
        baseline_current_a: float = 0.0,
    ) -> VoltageTrace:
        """Run a transient over *load*, starting from DC steady state.

        The network is assumed to have been sitting at a constant
        *baseline_current_a* forever before the trace starts (0 A means a
        quiet machine); the response to the deviation is superposed on that
        operating point.  Exact for LTI systems.
        """
        if abs(load.dt - self.dt) > 1e-18:
            raise PdnError(
                f"trace dt {load.dt!r} does not match solver dt {self.dt!r}"
            )
        if not np.isfinite(baseline_current_a):
            raise PdnError("baseline current must be finite")
        check_current_samples(load.samples, layer="pdn")
        vdd = self.network.params.vdd_nominal
        deviation = load.samples - baseline_current_a
        response = signal.sosfilt(self._sos, deviation)
        dc = self.network.dc_droop(baseline_current_a)
        volts = vdd - dc + response
        check_voltage_samples(volts, supply_v=vdd, layer="pdn")
        return VoltageTrace(volts, self.dt, vdd)

    def steady_state_periodic(self, period_load: CurrentTrace) -> VoltageTrace:
        """Exact periodic steady-state voltage for one period of load current.

        Evaluates the network frequency response at the waveform's harmonics
        — the state after infinitely many repetitions of the period.  This is
        the droop a resonant stressmark reaches once the resonance has built
        up (M cycles in the paper's notation).
        """
        if abs(period_load.dt - self.dt) > 1e-18:
            raise PdnError("trace dt does not match solver dt")
        samples = period_load.samples
        check_current_samples(samples, layer="pdn")
        n = len(samples)
        spectrum = np.fft.rfft(samples)
        harmonics = np.fft.rfftfreq(n, d=self.dt)
        h = self.network.transfer(harmonics)
        v_spectrum = h * spectrum
        deviation = np.fft.irfft(v_spectrum, n=n)
        vdd = self.network.params.vdd_nominal
        volts = vdd + deviation
        check_voltage_samples(volts, supply_v=vdd, layer="pdn")
        return VoltageTrace(volts, self.dt, vdd)

    def steady_state_periodic_batch(
        self, period_matrix: np.ndarray, *, vdd_rows
    ) -> np.ndarray:
        """Batched :meth:`steady_state_periodic`: one row per candidate.

        All rows share the network's frequency response, so the ``6x6``
        per-harmonic solves inside :meth:`PdnNetwork.transfer` — the
        dominant cost of a periodic solve — are paid **once** for the whole
        batch instead of once per candidate.  The response is vdd-free
        (nominal voltage only shifts the operating point), so each row gets
        its own supply added afterwards; the result is bit-identical to a
        per-row serial solve with a solver built at that row's supply.
        """
        matrix = np.asarray(period_matrix, dtype=np.float64)
        vdds = np.asarray(vdd_rows, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise PdnError("period matrix must be a non-empty 2-D array")
        if vdds.shape != (matrix.shape[0],):
            raise PdnError("one supply voltage per batch row required")
        for row in matrix:
            check_current_samples(row, layer="pdn")
        n = matrix.shape[1]
        spectrum = np.fft.rfft(matrix, axis=-1)
        harmonics = np.fft.rfftfreq(n, d=self.dt)
        h = self.network.transfer(harmonics)
        deviation = np.fft.irfft(h * spectrum, n=n, axis=-1)
        volts = vdds[:, None] + deviation
        for row, vdd in zip(volts, vdds):
            check_voltage_samples(row, supply_v=float(vdd), layer="pdn")
        return volts

    def simulate_batch(
        self, load_matrix: np.ndarray, *, baselines, vdd_rows
    ) -> np.ndarray:
        """Batched :meth:`simulate`: one row per candidate trace.

        ``sosfilt`` runs the second-order-section recurrence along the last
        axis for all rows in one C call; DC operating points and supply
        voltages are applied per row.  Bit-identical to serial
        :meth:`simulate` calls with per-row baselines and supplies.
        """
        matrix = np.asarray(load_matrix, dtype=np.float64)
        baselines = np.asarray(baselines, dtype=np.float64)
        vdds = np.asarray(vdd_rows, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise PdnError("load matrix must be a non-empty 2-D array")
        if baselines.shape != (matrix.shape[0],):
            raise PdnError("one baseline current per batch row required")
        if vdds.shape != (matrix.shape[0],):
            raise PdnError("one supply voltage per batch row required")
        if not np.all(np.isfinite(baselines)):
            raise PdnError("baseline current must be finite")
        for row in matrix:
            check_current_samples(row, layer="pdn")
        deviation = matrix - baselines[:, None]
        response = signal.sosfilt(self._sos, deviation, axis=-1)
        dcs = np.array([self.network.dc_droop(float(b)) for b in baselines])
        volts = (vdds - dcs)[:, None] + response
        for row, vdd in zip(volts, vdds):
            check_voltage_samples(row, supply_v=float(vdd), layer="pdn")
        return volts

    def impulse_response(self, samples: int) -> np.ndarray:
        """Discrete impulse response (volts per amp), for analysis/tests."""
        if samples < 1:
            raise PdnError("samples must be >= 1")
        impulse = np.zeros(samples)
        impulse[0] = 1.0
        return signal.sosfilt(self._sos, impulse)
