"""HSPICE netlist export: the paper's simulation-path artifact.

Paper Section III: "AUDIT converts the per-cycle current profile into a
current sink in HSPICE simulation using a lumped RLC model of the PDN."
Our solver integrates the same lumped model natively, but the exported
netlist lets anyone re-run a candidate stressmark's current profile through
a real SPICE engine and check our waveforms independently.

The deck contains the three-stage ladder of Fig. 2 (VRM source, board,
package, die stages with decap + ESR), a piecewise-linear current sink
built from a :class:`~repro.power.trace.CurrentTrace`, and a ``.tran``
statement covering the trace.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PdnError
from repro.pdn.elements import PdnParameters
from repro.power.trace import CurrentTrace

#: Largest PWL point count emitted; longer traces are decimated (SPICE decks
#: with millions of PWL points are unusable).
MAX_PWL_POINTS = 20_000


def _format_si(value: float) -> str:
    """SPICE-friendly scientific notation."""
    return f"{value:.6e}"


def _pwl_points(trace: CurrentTrace, max_points: int) -> list[tuple[float, float]]:
    samples = trace.samples
    n = len(samples)
    stride = max(1, int(np.ceil(n / max_points)))
    points = [(i * trace.dt, float(samples[i])) for i in range(0, n, stride)]
    # Always include the final sample so the .tran window is covered.
    last = ((n - 1) * trace.dt, float(samples[-1]))
    if points[-1] != last:
        points.append(last)
    return points


def export_netlist(
    params: PdnParameters,
    load: CurrentTrace,
    *,
    title: str = "AUDIT PDN deck",
    max_pwl_points: int = MAX_PWL_POINTS,
) -> str:
    """Render an HSPICE deck for *params* driven by *load*.

    Node map: ``vrm`` → (R/L board) → ``board`` → (R/L package) →
    ``pkg`` → (R/L die) → ``die``; each node has its decap + ESR to
    ground; the load current is pulled from ``die``.
    """
    if max_pwl_points < 2:
        raise PdnError("need at least 2 PWL points")
    lines = [f"* {title}", f"* vdd={params.vdd_nominal} V"]

    lines.append(f"Vvrm vrm 0 DC {_format_si(params.vdd_nominal)}")
    if params.load_line_ohm > 0:
        lines.append(f"Rll vrm vrm_ll {_format_si(params.load_line_ohm)}")
        source_node = "vrm_ll"
    else:
        source_node = "vrm"

    stage_names = ("board", "pkg", "die")
    previous = source_node
    for name, stage in zip(stage_names, params.stages):
        mid = f"{name}_l"
        lines.append(f"R{name} {previous} {mid} {_format_si(stage.resistance_ohm)}")
        lines.append(f"L{name} {mid} {name} {_format_si(stage.inductance_h)}")
        lines.append(
            f"Resr_{name} {name} {name}_c {_format_si(stage.esr_ohm)}"
        )
        lines.append(
            f"C{name} {name}_c 0 {_format_si(stage.capacitance_f)}"
        )
        previous = name

    points = _pwl_points(load, max_pwl_points)
    pwl = " ".join(
        f"{_format_si(t)} {_format_si(i)}" for t, i in points
    )
    lines.append(f"Iload die 0 PWL({pwl})")

    duration = load.duration_s
    step = load.dt
    lines.append(f".tran {_format_si(step)} {_format_si(duration)}")
    lines.append(".probe v(die)")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_netlist_elements(netlist: str) -> dict:
    """Parse back the element values of a deck produced by export_netlist.

    Round-trip helper used by tests and by tooling that post-processes the
    deck; returns ``{element_name: value}`` for R/L/C/V cards.
    """
    elements: dict[str, float] = {}
    for line in netlist.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("*", ".")):
            continue
        parts = stripped.split()
        name = parts[0]
        if name[0].upper() in "RLC" and len(parts) >= 4:
            elements[name] = float(parts[3])
        elif name[0].upper() == "V" and len(parts) >= 5 and parts[3] == "DC":
            elements[name] = float(parts[4])
    return elements
