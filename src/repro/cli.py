"""Command-line interface: run AUDIT and regenerate paper experiments.

Usage (also available as ``python -m repro``)::

    python -m repro sweep --chip bulldozer
    python -m repro audit --threads 4 --mode resonant --asm-out a_res.asm
    python -m repro audit --workers 4 --progress --telemetry-out run.jsonl
    python -m repro audit --generations 40 --checkpoint-dir campaign/
    python -m repro audit --resume campaign/
    python -m repro audit --eval-retries 3 --on-fault penalize
    python -m repro audit --qualify --checkpoint-dir campaign/
    python -m repro qualify a-res --threads 4
    python -m repro bench-evals --generations 6
    python -m repro experiment table1
    python -m repro list

Exit codes: 0 success, 1 run error, 2 bad configuration, 3 fault policy
exhausted, 4 invariant violation (corrupt numerics), 70 internal crash
(a ``crash_report.json`` is written next to the checkpoint, or in the
working directory).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
import traceback
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.checkpoint import CampaignCheckpoint, validate_campaign_meta
from repro.core.engine import make_executor
from repro.core.faults import FaultPolicy, QuarantineExhaustedError
from repro.core.ga import GaConfig
from repro.core.qualify import (
    QualificationCheckpoint,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.core.resonance import find_resonance
from repro.core.telemetry import (
    ConsoleObserver,
    JsonlObserver,
    RecentEventsObserver,
    TelemetryCollector,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InvariantViolation,
    ReproError,
)
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.isa.encoder import encode_program
from repro.isa.opcodes import default_table

#: Process exit codes (``sysexits``-adjacent; 70 = EX_SOFTWARE).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_CONFIG = 2
EXIT_FAULTS = 3
EXIT_INVARIANT = 4
EXIT_CRASH = 70

#: Flight recorder for crash reports; reset per ``main`` invocation.
_flight_recorder = RecentEventsObserver()


def _platform(chip: str, throttle: int | None = None):
    if chip == "bulldozer":
        return bulldozer_testbed(fp_throttle=throttle)
    if chip == "phenom":
        if throttle is not None:
            raise ReproError("--throttle is only modelled on the bulldozer chip")
        return phenom_testbed()
    raise ReproError(f"unknown chip {chip!r} (expected bulldozer or phenom)")


def _platform_factory(chip: str, throttle: int | None = None):
    """A picklable platform builder for process-pool workers."""
    return functools.partial(_platform, chip, throttle)


def _observers(args):
    """Telemetry sinks selected by CLI flags; returns (observers, jsonl)."""
    observers = [_flight_recorder]
    jsonl = None
    if getattr(args, "progress", False):
        observers.append(ConsoleObserver())
    telemetry_out = getattr(args, "telemetry_out", None)
    if telemetry_out:
        try:
            jsonl = JsonlObserver(telemetry_out)
        except OSError as error:
            raise ConfigurationError(
                f"cannot open telemetry log {telemetry_out!r}: {error}"
            ) from error
        observers.append(jsonl)
    return observers, jsonl


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------
def _run_fig3():
    from repro.experiments import fig3_resonances as mod

    return mod.report(mod.run_fig3(bulldozer_testbed()))


def _run_fig4():
    from repro.experiments import fig4_excitation_vs_resonance as mod

    return mod.report(mod.run_fig4(bulldozer_testbed(), default_table()))


def _run_fig6():
    from repro.core.resonance import probe_program
    from repro.experiments import fig6_natural_dithering as mod

    program = probe_program(default_table(), hp_count=32, lp_nops=95)
    return mod.report(mod.run_fig6(bulldozer_testbed(), program))


def _run_fig9():
    from repro.experiments import fig9_droop_comparison as mod

    return mod.report(mod.run_fig9(bulldozer_testbed(), default_table()))


def _run_fig10():
    from repro.experiments import fig10_histograms as mod

    return mod.report(mod.run_fig10(bulldozer_testbed(), default_table(),
                                    samples=1_000_000))


def _run_table1():
    from repro.experiments import table1_failure as mod

    return mod.report(mod.run_table1(bulldozer_testbed(), default_table()))


def _run_table2():
    from repro.experiments import table2_throttling as mod

    return mod.report(mod.run_table2(
        bulldozer_testbed(), bulldozer_testbed(fp_throttle=1), default_table()
    ))


def _run_table3():
    from repro.experiments import table3_phenom as mod

    return mod.report(mod.run_table3(phenom_testbed(), default_table()))


def _run_sec3b():
    from repro.experiments import sec3b_dithering_cost as mod

    return mod.report(mod.run_sec3b())


def _run_sec3c():
    from repro.experiments import sec3c_hierarchical as mod

    return mod.report(mod.run_sec3c(bulldozer_testbed(), default_table()))


def _run_sec3_data():
    from repro.experiments import sec3_data_values as mod

    return mod.report(mod.run_sec3_data_values(bulldozer_testbed(),
                                               default_table()))


def _run_sec5a1():
    from repro.experiments import sec5a1_barrier as mod

    return mod.report(mod.run_sec5a1(bulldozer_testbed(), default_table()))


def _run_sec5a5():
    from repro.experiments import sec5a5_nop_analysis as mod

    return mod.report(mod.run_sec5a5(bulldozer_testbed(), default_table()))


def _run_sec5_sim():
    from repro.experiments import sec5_simulator_insights as mod

    return mod.report(mod.run_sec5_simulator_insights(bulldozer_testbed(),
                                                      default_table()))


def _run_sec5_qualify():
    from repro.experiments import sec5_qualification as mod

    return mod.report(mod.run_sec5_qualification(bulldozer_testbed(),
                                                 default_table()))


EXPERIMENTS = {
    "fig3": ("PDN resonances, frequency + time domain", _run_fig3),
    "fig4": ("excitation vs resonance", _run_fig4),
    "fig6": ("natural dithering scope shot", _run_fig6),
    "fig9": ("droop comparison grid (slow)", _run_fig9),
    "fig10": ("Vdd histograms", _run_fig10),
    "table1": ("voltage at failure", _run_table1),
    "table2": ("FPU throttling impact", _run_table2),
    "table3": ("Phenom II processor swap", _run_table3),
    "sec3b": ("dithering sweep cost", _run_sec3b),
    "sec3c": ("hierarchical vs flat GA (slow)", _run_sec3c),
    "sec3-data": ("operand data values vs droop", _run_sec3_data),
    "sec5a1": ("barrier release skew", _run_sec5a1),
    "sec5a5": ("NOP vs ADD loop analysis", _run_sec5a5),
    "sec5-sim": ("simulator vs hardware insights", _run_sec5_sim),
    "sec5-qualify": ("qualified stressmarks: droop vs robustness vs failure",
                     _run_sec5_qualify),
}


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_sweep(args) -> int:
    platform = _platform(args.chip)
    sweep = find_resonance(platform, default_table(), threads=1,
                           period_candidates=list(range(8, 133, 4)))
    rows = [
        [p.period_cycles if p.period_cycles is not None else "-",
         f"{p.droop_v * 1e3:.1f} mV"]
        for p in sweep.points
    ]
    print(format_table(["loop period (cycles)", "max droop"], rows,
                       title=f"resonance sweep on {args.chip}"))
    print(f"\nresonance: {sweep.resonance_hz / 1e6:.1f} MHz "
          f"({sweep.best_period_cycles} cycles)")
    return 0


def _fault_policy(args) -> FaultPolicy | None:
    """A FaultPolicy from the campaign CLI flags (None = fail-fast)."""
    if (args.eval_retries is None and args.eval_timeout is None
            and args.on_fault is None):
        return None
    return FaultPolicy(
        max_retries=args.eval_retries if args.eval_retries is not None else 2,
        backoff_s=args.eval_backoff,
        eval_timeout_s=args.eval_timeout,
        on_exhaust=args.on_fault or "raise",
    )


def cmd_audit(args) -> int:
    checkpoint = None
    resume = False
    if args.resume is not None:
        # The stored campaign meta is authoritative: the run continues with
        # the exact chip/config it started with, so the same seeds keep
        # producing the same stressmark no matter what flags accompany
        # --resume.
        checkpoint = CampaignCheckpoint(args.resume)
        meta = validate_campaign_meta(checkpoint.read_meta(),
                                      path=checkpoint.meta_path)
        resume = True
        args.chip = meta["chip"]
        args.throttle = meta["throttle"]
        args.threads = meta["threads"]
        args.mode = meta["mode"]
        args.population = meta["population"]
        args.generations = meta["generations"]
        args.seed = meta["seed"]
    elif args.checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(args.checkpoint_dir)
        checkpoint.write_meta({
            "chip": args.chip,
            "throttle": args.throttle,
            "threads": args.threads,
            "mode": args.mode,
            "population": args.population,
            "generations": args.generations,
            "seed": args.seed,
        })
    platform = _platform(args.chip, args.throttle)
    mode = StressmarkMode(args.mode)
    config = AuditConfig(
        threads=args.threads,
        mode=mode,
        ga=GaConfig(population_size=args.population,
                    generations=args.generations, seed=args.seed),
    )
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    runner = AuditRunner(
        platform,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip, args.throttle),
        fault_policy=_fault_policy(args),
    )
    qualify_config = None
    qualify_checkpoint = None
    if args.qualify:
        qualify_config = QualifyConfig(seed=args.seed)
        if checkpoint is not None:
            qualify_checkpoint = QualificationCheckpoint(checkpoint.directory)
    if resume:
        state = checkpoint.load()
        if state is None:
            raise CheckpointError(
                f"nothing to resume in {args.resume!r}: no checkpointed "
                "generation yet"
            )
        print(f"resuming campaign from generation {state.ga.generation} "
              f"({state.ga.evaluations} evaluations banked)")
    try:
        result = runner.run(checkpoint=checkpoint, resume=resume,
                            qualify=qualify_config,
                            qualify_checkpoint=qualify_checkpoint)
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(f"resonance: {result.resonance.resonance_hz / 1e6:.1f} MHz")
    print(f"GA evaluations: {result.ga_result.evaluations}")
    print(f"{result.name} droop at {args.threads}T: "
          f"{result.max_droop_v * 1e3:.1f} mV")
    if result.qualification is not None:
        qual = result.qualification
        print("\n" + qual.chosen_report.summary_table())
        if qual.demoted:
            print(f"GA winner demoted as {qual.winner_report.verdict}; "
                  f"promoted {qual.chosen_report.stressmark} "
                  f"({qual.verdict}, robustness "
                  f"{qual.chosen_report.robustness:.2f})")
        else:
            print(f"qualification: {qual.verdict} "
                  f"(robustness {qual.chosen_report.robustness:.2f})")
    asm = encode_program(result.program(), name=result.name.lower().replace("-", "_"))
    if args.asm_out:
        with open(args.asm_out, "w") as handle:
            handle.write(asm)
        print(f"stressmark written to {args.asm_out}")
    else:
        print("\n" + asm)
    if args.telemetry:
        print("\n" + collector.summary_table(platform.stats()))
    return 0


#: Canned stressmarks ``repro qualify`` can re-measure by name.
CANNED_STRESSMARKS = ("a-res", "a-ex", "sm-res", "sm1", "sm2", "joseph-brooks")


def _canned_kernel(name: str, pool):
    from repro.workloads import stressmarks as sm

    builders = {
        "a-res": sm.a_res_canned,
        "a-ex": sm.a_ex_canned,
        "sm-res": sm.sm_res,
        "sm1": sm.sm1,
        "sm2": sm.sm2,
        "joseph-brooks": sm.joseph_brooks,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown stressmark {name!r} "
            f"(expected one of {', '.join(CANNED_STRESSMARKS)})"
        ) from None
    return builder(pool)


def cmd_qualify(args) -> int:
    """Qualify one canned stressmark: perturbation sweep + verdict."""
    platform = _platform(args.chip)
    pool = default_table().supported_on(platform.chip.extensions)
    from repro.workloads.stressmarks import stressmark_program

    program = stressmark_program(_canned_kernel(args.stressmark, pool))
    config = QualifyConfig(
        seed=args.seed,
        jitter_repeats=args.jitter_repeats,
        supply_span_v=args.supply_span,
        supply_points=args.supply_points,
        pdn_tolerance=args.pdn_tolerance,
    )
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    checkpoint = (QualificationCheckpoint(args.checkpoint_dir)
                  if args.checkpoint_dir else None)
    qualifier = StressmarkQualifier(
        platform,
        threads=args.threads,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip),
        checkpoint=checkpoint,
    )
    try:
        report = qualifier.qualify_program(program, name=args.stressmark)
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(report.summary_table())
    print(f"\nverdict: {report.verdict} "
          f"(robustness {report.robustness:.2f}, "
          f"{report.evaluations} evaluations, "
          f"{report.cache_hits} cache hits, {report.wall_s:.1f}s)")
    if args.telemetry:
        print("\n" + collector.summary_table(platform.stats()))
    return EXIT_OK


def cmd_bench_evals(args) -> int:
    """A short AUDIT loop instrumented end to end: the perf canary.

    Prints the telemetry summary table (evals/sec, cache hit rates, module
    simulator vs. PDN-solve time split) so evaluation-path regressions are
    observable from the command line.
    """
    platform = _platform(args.chip)
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    config = AuditConfig(
        threads=args.threads,
        ga=GaConfig(population_size=args.population,
                    generations=args.generations, seed=args.seed,
                    stagnation_patience=max(6, args.generations)),
    )
    runner = AuditRunner(
        platform,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip),
    )
    try:
        result = runner.run()
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(f"{result.name} droop at {args.threads}T: "
          f"{result.max_droop_v * 1e3:.1f} mV "
          f"({result.ga_result.evaluations} evaluations, "
          f"executor: {executor.name})")
    print("\n" + collector.summary_table(platform.stats()))
    return 0


def cmd_netlist(args) -> int:
    from repro.pdn.netlist import export_netlist
    from repro.workloads.stressmarks import a_res_canned, stressmark_program

    platform = _platform(args.chip)
    pool = default_table().supported_on(platform.chip.extensions)
    program = stressmark_program(a_res_canned(pool))
    measurement = platform.measure_program(program, args.threads)
    load = measurement.current.tile(args.periods)
    deck = export_netlist(
        platform.pdn, load,
        title=f"A-Res {args.threads}T current profile on {args.chip}",
    )
    with open(args.out, "w") as handle:
        handle.write(deck)
    print(f"HSPICE deck ({len(load)} samples, "
          f"{load.duration_s * 1e9:.0f} ns) written to {args.out}")
    return 0


def cmd_experiment(args) -> int:
    try:
        _description, runner = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; see 'list'", file=sys.stderr)
        return 2
    print(runner())
    return 0


def cmd_list(_args) -> int:
    rows = [[name, description] for name, (description, _fn) in EXPERIMENTS.items()]
    print(format_table(["experiment", "description"], rows,
                       title="available experiments"))
    return 0


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="evaluate GA generations on this many worker processes "
             "(default: serial in-process; note that worker-side platform "
             "counters stay in the workers)")
    parser.add_argument(
        "--progress", action="store_true",
        help="narrate generations and phases to stderr")
    parser.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="append per-event telemetry as JSON lines to PATH")


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write an atomic campaign snapshot (GA population, RNG state, "
             "fitness cache) to DIR every generation")
    group.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume the campaign checkpointed in DIR and keep "
             "checkpointing there; run parameters come from the stored "
             "meta, and the final stressmark is identical to an "
             "uninterrupted run")
    parser.add_argument(
        "--eval-retries", type=int, default=None, metavar="N",
        help="retry a faulting measurement up to N times before the "
             "--on-fault action (enables the fault policy)")
    parser.add_argument(
        "--eval-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base backoff between retries (doubles per attempt)")
    parser.add_argument(
        "--eval-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog budget per evaluation; slower attempts count as "
             "faults (enables the fault policy)")
    parser.add_argument(
        "--on-fault", default=None, choices=("raise", "skip", "penalize"),
        help="what to do with a genome once retries are exhausted: kill "
             "the run, quarantine at -inf fitness, or quarantine at the "
             "penalty fitness (enables the fault policy)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AUDIT reproduction: di/dt stressmark generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the resonance-frequency sweep")
    sweep.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    sweep.set_defaults(fn=cmd_sweep)

    audit = sub.add_parser("audit", help="run the full AUDIT closed loop")
    audit.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    audit.add_argument("--threads", type=int, default=4)
    audit.add_argument("--mode", default="resonant",
                       choices=("resonant", "excitation"))
    audit.add_argument("--throttle", type=int, default=None,
                       help="enable the FPU throttle at this issue limit")
    audit.add_argument("--population", type=int, default=16)
    audit.add_argument("--generations", type=int, default=10)
    audit.add_argument("--seed", type=int, default=1)
    audit.add_argument("--asm-out", default=None,
                       help="write the winning stressmark as NASM to a file")
    _add_telemetry_args(audit)
    _add_campaign_args(audit)
    audit.add_argument("--telemetry", action="store_true",
                       help="print the run-telemetry summary table")
    audit.add_argument(
        "--qualify", action="store_true",
        help="qualify the GA winner under perturbations (jitter seeds, SMT "
             "offsets, supply span, PDN tolerances); an ARTIFACT winner is "
             "demoted for the best-qualified runner-up")
    audit.set_defaults(fn=cmd_audit)

    qualify = sub.add_parser(
        "qualify",
        help="re-measure a canned stressmark under perturbations and "
             "render a PASS/FRAGILE/ARTIFACT verdict",
    )
    qualify.add_argument("stressmark", choices=CANNED_STRESSMARKS)
    qualify.add_argument("--chip", default="bulldozer",
                         choices=("bulldozer", "phenom"))
    qualify.add_argument("--threads", type=int, default=4)
    qualify.add_argument("--seed", type=int, default=0,
                         help="seed of the perturbation grid")
    qualify.add_argument("--jitter-repeats", type=int, default=4,
                         help="SMT jitter reseeds to sweep")
    qualify.add_argument("--supply-span", type=float, default=0.05,
                         metavar="VOLTS",
                         help="supply sweep half-width around nominal Vdd")
    qualify.add_argument("--supply-points", type=int, default=5)
    qualify.add_argument("--pdn-tolerance", type=float, default=0.10,
                         help="relative R/L/C/ESR component tolerance")
    qualify.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist measured perturbations to DIR after every axis; "
             "rerunning resumes from the banked measurements")
    qualify.add_argument("--telemetry", action="store_true",
                         help="print the run-telemetry summary table")
    _add_telemetry_args(qualify)
    qualify.set_defaults(fn=cmd_qualify)

    bench = sub.add_parser(
        "bench-evals",
        help="run a short AUDIT loop and print the telemetry summary "
             "(evals/sec, cache hit rates, simulator vs PDN time split)",
    )
    bench.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    bench.add_argument("--threads", type=int, default=4)
    bench.add_argument("--population", type=int, default=12)
    bench.add_argument("--generations", type=int, default=4)
    bench.add_argument("--seed", type=int, default=1)
    _add_telemetry_args(bench)
    bench.set_defaults(fn=cmd_bench_evals)

    netlist = sub.add_parser(
        "netlist",
        help="export an HSPICE deck of the A-Res current profile",
    )
    netlist.add_argument("--chip", default="bulldozer",
                         choices=("bulldozer", "phenom"))
    netlist.add_argument("--threads", type=int, default=4)
    netlist.add_argument("--periods", type=int, default=40,
                         help="loop periods of current to include")
    netlist.add_argument("--out", default="a_res_pdn.sp")
    netlist.set_defaults(fn=cmd_netlist)

    experiment = sub.add_parser("experiment",
                                help="regenerate one paper table/figure")
    experiment.add_argument("name")
    experiment.set_defaults(fn=cmd_experiment)

    listing = sub.add_parser("list", help="list available experiments")
    listing.set_defaults(fn=cmd_list)
    return parser


def _crash_report(args, error: BaseException) -> str | None:
    """Write ``crash_report.json`` for an unhandled exception.

    The report lands next to the campaign checkpoint when one is
    configured (the natural place to look after an overnight run died),
    otherwise in the working directory.  It carries the parsed CLI args,
    the traceback, and the tail of the telemetry event stream — enough
    to reconstruct what the run was doing when it went down.
    """
    directory = (getattr(args, "checkpoint_dir", None)
                 or getattr(args, "resume", None) or ".")
    path = Path(directory) / "crash_report.json"
    payload = {
        "command": getattr(args, "command", None),
        "args": {
            key: value for key, value in vars(args).items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "recent_events": _flight_recorder.tail(),
        "written_at": time.time(),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError:
        return None  # never let the crash reporter mask the crash
    return str(path)


def main(argv: list[str] | None = None) -> int:
    global _flight_recorder
    _flight_recorder = RecentEventsObserver()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ConfigurationError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    except QuarantineExhaustedError as error:
        print(f"fault policy exhausted: {error}", file=sys.stderr)
        return EXIT_FAULTS
    except InvariantViolation as error:
        print(f"invariant violation: {error}", file=sys.stderr)
        return EXIT_INVARIANT
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE
    except KeyboardInterrupt:
        raise
    except Exception as error:  # noqa: BLE001 — last-resort crash report
        report = _crash_report(args, error)
        where = f" (crash report: {report})" if report else ""
        print(f"internal error: {type(error).__name__}: {error}{where}",
              file=sys.stderr)
        return EXIT_CRASH


if __name__ == "__main__":
    raise SystemExit(main())
