"""Exception hierarchy for the AUDIT reproduction library.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class IsaError(ReproError):
    """Invalid instruction, operand, or kernel construction."""


class SchedulingError(ReproError):
    """The pipeline scheduler could not place an instruction stream."""


class PdnError(ReproError):
    """Power-distribution-network model construction or simulation failed."""


class MeasurementError(ReproError):
    """An oscilloscope / measurement operation was misused."""


class SearchError(ReproError):
    """A GA / AUDIT search was configured or driven incorrectly."""


class CheckpointError(ReproError):
    """A campaign checkpoint could not be written, read, or resumed."""


class WorkloadError(ReproError):
    """A benchmark or stressmark definition is invalid."""
