"""Exception hierarchy for the AUDIT reproduction library.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


#: Process exit codes (``sysexits``-adjacent; 70 = EX_SOFTWARE).  They live
#: here rather than in :mod:`repro.cli` because the fleet orchestrator
#: classifies shard failures with the same taxonomy without importing the
#: CLI package.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_CONFIG = 2
EXIT_FAULTS = 3
EXIT_INVARIANT = 4
EXIT_CRASH = 70
EXIT_INTERRUPTED = 75
"""A run stopped *on purpose* (SIGTERM/SIGINT or a ``--max-wall-clock``
budget) after finishing its in-flight generation and writing a final
checkpoint.  75 is sysexits' EX_TEMPFAIL: "try again later" — fleet
automation retries an interrupted shard, it does not triage it."""

#: Failure severity, worst first — a fleet with mixed shard failures exits
#: with the most severe code so automation sees the worst problem.  An
#: interruption is the least severe non-zero outcome: nothing is broken,
#: the work is merely unfinished.
EXIT_SEVERITY = (EXIT_CRASH, EXIT_INVARIANT, EXIT_FAULTS, EXIT_CONFIG,
                 EXIT_FAILURE, EXIT_INTERRUPTED)


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class IsaError(ReproError):
    """Invalid instruction, operand, or kernel construction."""


class SchedulingError(ReproError):
    """The pipeline scheduler could not place an instruction stream."""


class PdnError(ReproError):
    """Power-distribution-network model construction or simulation failed."""


class MeasurementError(ReproError):
    """An oscilloscope / measurement operation was misused."""


class InvariantViolation(MeasurementError):
    """A runtime invariant guard caught corrupt numerics mid-measurement.

    Raised by the always-on guards in :mod:`repro.validation` (wired into
    the chip simulator, the PDN transient solver, and the measurement
    platform) so that non-finite or physically impossible values surface as
    a structured fault — routed through the
    :class:`~repro.core.faults.FaultPolicy` — instead of scoring as
    fitness.  ``guard`` names the specific invariant (e.g.
    ``"voltage-finite"``) and ``layer`` the stack layer that fired
    (``"platform"``, ``"pdn"``, ``"uarch"``).
    """

    def __init__(self, guard: str, layer: str, message: str):
        super().__init__(f"[{layer}/{guard}] {message}")
        self.guard = guard
        self.layer = layer


class SearchError(ReproError):
    """A GA / AUDIT search was configured or driven incorrectly."""


class CheckpointError(ReproError):
    """A campaign checkpoint could not be written, read, or resumed."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed integrity verification.

    Raised when a snapshot's bytes do not parse, do not match any hash in
    the store's sha256 manifest, or cannot be confirmed against the
    journal.  Distinct from plain :class:`CheckpointError` so resume
    logic can tell "the file is damaged — try salvage" apart from "the
    store was misused" (wrong version, wrong directory, bad config).
    """

    def __init__(self, path, reason: str):
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class CampaignInterrupted(ReproError):
    """A run was stopped gracefully (signal or wall-clock budget).

    Raised at a generation boundary after the final checkpoint landed, so
    the campaign is resumable from exactly where it stopped.  The CLI maps
    this to :data:`EXIT_INTERRUPTED` — "interrupted", not "crashed".
    """

    def __init__(self, reason: str, *, generation: int | None = None,
                 checkpoint_path: str = ""):
        detail = f" at generation {generation}" if generation is not None else ""
        where = f" (checkpoint: {checkpoint_path})" if checkpoint_path else ""
        super().__init__(f"campaign interrupted by {reason}{detail}{where}")
        self.reason = reason
        self.generation = generation
        self.checkpoint_path = checkpoint_path


class WorkloadError(ReproError):
    """A benchmark or stressmark definition is invalid."""


class RegistryError(ReproError):
    """A stressmark-registry operation failed (bad record, tampered
    object, unresolvable reference, or a damaged store)."""
