"""Fixed-width report rendering for experiment tables.

Every benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from repro.errors import ReproError


def format_table(headers: list[str], rows: list[list], *, title: str | None = None) -> str:
    """Render a fixed-width text table.

    Cells are stringified; floats get 3 significant decimals.  Raises if a
    row's arity does not match the header.
    """
    if not headers:
        raise ReproError("table needs at least one column")

    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        str_rows.append([render(c) for c in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in str_rows)
    return "\n".join(parts)


def format_kv_table(pairs: list[tuple], *, title: str | None = None) -> str:
    """Render (metric, value) pairs as a two-column table.

    The shape every telemetry/summary report uses; values are rendered by
    :func:`format_table`'s cell rules.
    """
    return format_table(
        ["metric", "value"], [list(pair) for pair in pairs], title=title
    )


def relative(value: float, baseline: float) -> float:
    """Value normalised to a baseline (the paper's 'relative to 4T SM1')."""
    if baseline == 0:
        raise ReproError("cannot normalise to a zero baseline")
    return value / baseline


def millivolts(value_v: float) -> float:
    """Volts → millivolts (for delta columns like Table I's 'VF - 62 mV')."""
    return value_v * 1e3


def vf_delta_label(vf: float, reference_vf: float) -> str:
    """Render a failure voltage as the paper does: 'VF' or 'VF - N mV'."""
    delta_mv = (reference_vf - vf) * 1e3
    if abs(delta_mv) < 0.5:
        return "VF"
    if delta_mv < 0:
        return f"VF + {-delta_mv:.0f} mV"
    return f"VF - {delta_mv:.0f} mV"
