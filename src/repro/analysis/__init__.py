"""Analysis helpers: spectra, histograms, and report tables."""

from repro.analysis.report import format_table, millivolts, relative, vf_delta_label
from repro.analysis.spectrum import Spectrum, activity_fundamental_hz, amplitude_spectrum

__all__ = [
    "Spectrum",
    "activity_fundamental_hz",
    "amplitude_spectrum",
    "format_table",
    "millivolts",
    "relative",
    "vf_delta_label",
]
