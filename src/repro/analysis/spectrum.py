"""Frequency-domain analysis of voltage/current waveforms.

Used by the loop analysis of paper Section V.A.5 (the NOP→ADD substitution
"shifted the frequency of the di/dt pattern lower than the ideal resonant
frequency") and by the Fig. 3/4 reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class Spectrum:
    """One-sided amplitude spectrum of a uniformly sampled waveform."""

    frequencies_hz: np.ndarray
    amplitudes: np.ndarray

    def amplitude_at(self, frequency_hz: float) -> float:
        """Amplitude of the bin nearest *frequency_hz*."""
        idx = int(np.argmin(np.abs(self.frequencies_hz - frequency_hz)))
        return float(self.amplitudes[idx])

    def dominant_frequency(self, *, f_min_hz: float = 0.0) -> float:
        """Frequency of the strongest component at or above *f_min_hz*."""
        mask = self.frequencies_hz >= f_min_hz
        if not mask.any():
            raise MeasurementError("no spectral bins above f_min")
        amps = np.where(mask, self.amplitudes, -np.inf)
        return float(self.frequencies_hz[int(np.argmax(amps))])


def amplitude_spectrum(samples: np.ndarray, dt: float) -> Spectrum:
    """One-sided amplitude spectrum with the DC term removed.

    Amplitudes are normalised so a pure sinusoid of amplitude A yields A in
    its bin.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 4:
        raise MeasurementError("need at least 4 samples for a spectrum")
    if dt <= 0:
        raise MeasurementError("dt must be positive")
    centred = samples - samples.mean()
    spectrum = np.fft.rfft(centred)
    freqs = np.fft.rfftfreq(len(centred), d=dt)
    amplitudes = 2.0 * np.abs(spectrum) / len(centred)
    amplitudes[0] = 0.0
    return Spectrum(frequencies_hz=freqs, amplitudes=amplitudes)


def activity_fundamental_hz(
    samples: np.ndarray,
    dt: float,
    *,
    f_min_hz: float = 1e6,
) -> float:
    """The fundamental repetition frequency of a periodic activity trace."""
    return amplitude_spectrum(samples, dt).dominant_frequency(f_min_hz=f_min_hz)
