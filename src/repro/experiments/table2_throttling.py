"""Table II: impact of FPU throttling on droop and failure point.

FPU throttling statically limits FP-unit issues per cycle per module
(paper Section V.B).  Expected shape:

* throttling reduces droop for every stressmark, most for the pure-FP
  resonant ones (A-Res, SM-Res), least for SM1 (multiple stress paths);
* failure voltages drop (margin improves) under throttling;
* AUDIT re-run *with throttling enabled* (A-Res-Th) finds an integer-lean
  path around the throttle: better than the throttled 4T-trained marks,
  but below the unthrottled droops.

Droops are relative to unthrottled 4T SM1; failure points relative to the
unthrottled 4T A-Res failure voltage, matching the paper's normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, vf_delta_label
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.platform import MeasurementPlatform
from repro.isa.instruction import make_independent
from repro.isa.kernels import LoopKernel, nop_region
from repro.isa.opcodes import OpcodeTable
from repro.experiments.setup import program_failure_voltage, quick_ga
from repro.workloads.stressmarks import (
    a_res_canned,
    sm1,
    sm_res,
    stressmark_program,
)

#: The static FPU issue limit used for the throttled runs.
THROTTLE_LIMIT = 1


def a_res_th_canned(table: OpcodeTable, *, period_cycles: int = 32) -> LoopKernel:
    """The stressmark AUDIT converges to with FPU throttling enabled.

    With the FP pipes capped, the GA leans on the dedicated integer
    clusters (which the throttle cannot touch) plus the allowed trickle of
    FP ops — "another path that can still produce significant voltage
    droops with FPU throttling enabled" (paper Section V.B).
    """
    half = period_cycles // 2
    hp = (
        make_independent(table.get("imul"), half // 2)
        + make_independent(table.get("add"), half * 2)
        + make_independent(table.get("load"), half)
        + make_independent(table.get("store"), half // 2)
        + make_independent(table.get("mulpd"), half // 2)
    )
    lp_nops = max(0, period_cycles * 4 - len(hp) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="A-Res-Th")


@dataclass(frozen=True)
class Table2Row:
    name: str
    throttled: bool
    droop_v: float
    failure_v: float


@dataclass(frozen=True)
class Table2Result:
    rows: tuple[Table2Row, ...]
    baseline_droop_v: float   # unthrottled 4T SM1
    reference_failure_v: float  # unthrottled 4T A-Res

    def row(self, name: str, *, throttled: bool) -> Table2Row:
        for r in self.rows:
            if r.name == name and r.throttled == throttled:
                return r
        raise KeyError((name, throttled))

    def relative_droop(self, name: str, *, throttled: bool) -> float:
        return self.row(name, throttled=throttled).droop_v / self.baseline_droop_v


def run_table2(
    free_platform: MeasurementPlatform,
    throttled_platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    audit_rerun: bool = False,
    audit_seed: int = 22,
) -> Table2Result:
    """Measure droop + failure for SM1/A-Res/SM-Res with and without
    throttling, plus the throttle-aware AUDIT stressmark A-Res-Th.

    ``audit_rerun=True`` runs the real GA against the throttled platform
    instead of using the canned A-Res-Th (slower, but the full loop).
    """
    pool = table.supported_on(free_platform.chip.extensions)
    kernels = {
        "SM1": sm1(pool),
        "A-Res": a_res_canned(pool),
        "SM-Res": sm_res(pool),
    }

    rows: list[Table2Row] = []
    for throttled, platform in ((False, free_platform), (True, throttled_platform)):
        for name, kernel in kernels.items():
            program = stressmark_program(kernel)
            droop = platform.measure_program(program, threads).max_droop_v
            failure = program_failure_voltage(platform, program, threads)
            rows.append(Table2Row(name, throttled, droop, failure))

    if audit_rerun:
        runner = AuditRunner(
            throttled_platform,
            config=AuditConfig(threads=threads, mode=StressmarkMode.RESONANT,
                               ga=quick_ga(audit_seed)),
        )
        th_kernel = runner.run(name="A-Res-Th").kernel
    else:
        th_kernel = a_res_th_canned(pool)
    th_program = stressmark_program(th_kernel)
    rows.append(
        Table2Row(
            "A-Res-Th",
            True,
            throttled_platform.measure_program(th_program, threads).max_droop_v,
            program_failure_voltage(throttled_platform, th_program, threads),
        )
    )

    baseline = next(r for r in rows if r.name == "SM1" and not r.throttled)
    reference = next(r for r in rows if r.name == "A-Res" and not r.throttled)
    return Table2Result(
        rows=tuple(rows),
        baseline_droop_v=baseline.droop_v,
        reference_failure_v=reference.failure_v,
    )


def report(result: Table2Result) -> str:
    rows = []
    for r in result.rows:
        rows.append([
            "FPU throttling" if r.throttled else "no throttling",
            r.name,
            f"{r.droop_v / result.baseline_droop_v:.2f}",
            vf_delta_label(r.failure_v, result.reference_failure_v),
        ])
    return format_table(
        ["mode", "stressmark", "rel. droop", "failure point"],
        rows,
        title="Table II — impact of FPU throttling (droop rel. to 4T SM1)",
    )
