"""Canonical testbed assembly shared by all experiment reproductions.

One place defines the two boards (paper Section IV), the failure-model
calibration, and the standard thread configurations, so every figure/table
harness measures against identical hardware.
"""

from __future__ import annotations

import numpy as np

from repro.core.ga import GaConfig
from repro.core.platform import DEFAULT_JITTER_SEED, MeasurementPlatform
from repro.isa.kernels import ThreadProgram
from repro.isa.opcodes import OpcodeTable, default_table
from repro.measure.failure import FailureModel, voltage_at_failure
from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.uarch.config import bulldozer_chip, phenom_chip
from repro.workloads.phases import ActivityModel
from repro.workloads.runner import run_workload

#: Timing-margin calibration: the typical path fails below this voltage.
#: Chosen so the 4T failure sweep spans the same ~125 mV band as Table I.
VCRIT_BASE_V = 0.95

#: The paper's thread configurations (Fig. 9).
THREAD_CONFIGS: tuple[int, ...] = (1, 2, 4, 8)

#: Deterministic seed for workload generation across experiments.
WORKLOAD_SEED = 20120212  # MICRO 2012


def bulldozer_testbed(
    *,
    fp_throttle: int | None = None,
    jitter_seed: int = DEFAULT_JITTER_SEED,
) -> MeasurementPlatform:
    """The primary testbed: 4-module Bulldozer board, 100 MHz first droop.

    ``jitter_seed`` seeds the SMT loop-phase random walk (paper Section
    V.A.2); the default keeps every seed bench byte-identical.
    """
    chip = bulldozer_chip()
    if fp_throttle is not None:
        chip = chip.with_fp_throttle(fp_throttle)
    return MeasurementPlatform(
        chip, bulldozer_pdn(vdd=chip.vdd), jitter_seed=jitter_seed
    )


def phenom_testbed(*, jitter_seed: int = DEFAULT_JITTER_SEED) -> MeasurementPlatform:
    """The secondary testbed: same board, Phenom II processor (Section V.C)."""
    chip = phenom_chip()
    return MeasurementPlatform(
        chip, phenom_pdn(vdd=chip.vdd), jitter_seed=jitter_seed
    )


def opcode_pool(platform: MeasurementPlatform) -> OpcodeTable:
    """The opcode vocabulary legal on a platform's processor."""
    return default_table().supported_on(platform.chip.extensions)


def failure_model() -> FailureModel:
    return FailureModel(vcrit_base=VCRIT_BASE_V)


def quick_ga(seed: int = 1, *, population: int = 12, generations: int = 8) -> GaConfig:
    """A bench-sized GA budget: converges in tens of seconds, not hours."""
    return GaConfig(
        population_size=population,
        generations=generations,
        seed=seed,
        stagnation_patience=max(6, generations),
    )


def program_failure_voltage(
    platform: MeasurementPlatform,
    program: ThreadProgram,
    threads: int,
    *,
    model: FailureModel | None = None,
) -> float:
    """Voltage-at-failure sweep for a generated/stressmark program."""
    model = model or failure_model()

    def run_at(vs: float):
        measurement = platform.measure_program(program, threads, supply_v=vs)
        return measurement.voltage, measurement.sensitivity

    return voltage_at_failure(run_at, model, vdd_nominal=platform.chip.vdd)


def workload_failure_voltage(
    platform: MeasurementPlatform,
    workload: ActivityModel,
    threads: int,
    *,
    duration_cycles: int = 120_000,
    model: FailureModel | None = None,
    seed: int = WORKLOAD_SEED,
) -> float:
    """Voltage-at-failure sweep for a synthetic benchmark workload."""
    model = model or failure_model()

    def run_at(vs: float):
        measurement = run_workload(
            platform, workload, threads,
            duration_cycles=duration_cycles,
            rng=np.random.default_rng(seed),
            supply_v=vs,
        )
        return measurement.voltage, measurement.sensitivity

    return voltage_at_failure(run_at, model, vdd_nominal=platform.chip.vdd)
