"""Table I: voltage at failure relative to the A-Res 4T failure point.

The supply is lowered in 12.5 mV decrements until each 4T program fails.
Expected ordering (paper): A-Res fails first (highest voltage), then
SM-Res, SM1, A-Ex, SM2, and finally the standard benchmarks — with SM2
failing *above* its droop rank because it exercises sensitive paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, vf_delta_label
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable
from repro.experiments.setup import (
    program_failure_voltage,
    workload_failure_voltage,
)
from repro.workloads.parsec import parsec_model
from repro.workloads.spec import spec_model
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

#: Paper column order.
TABLE1_ORDER = ("A-Res", "SM-Res", "SM1", "A-Ex", "SM2", "zeusmp", "swaptions")


@dataclass(frozen=True)
class Table1Result:
    failure_voltages: dict  # name -> VF in volts

    @property
    def reference(self) -> float:
        return self.failure_voltages["A-Res"]

    def delta_mv(self, name: str) -> float:
        """Millivolts below the A-Res failure point (paper's 'VF - N mV')."""
        return (self.reference - self.failure_voltages[name]) * 1e3


def run_table1(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
) -> Table1Result:
    pool = table.supported_on(platform.chip.extensions)
    failure_voltages = {}
    stressmarks = {
        "A-Res": a_res_canned(pool),
        "SM-Res": sm_res(pool),
        "SM1": sm1(pool),
        "A-Ex": a_ex_canned(pool),
        "SM2": sm2(pool),
    }
    for name, kernel in stressmarks.items():
        failure_voltages[name] = program_failure_voltage(
            platform, stressmark_program(kernel), threads
        )
    failure_voltages["zeusmp"] = workload_failure_voltage(
        platform, spec_model("zeusmp"), threads
    )
    failure_voltages["swaptions"] = workload_failure_voltage(
        platform, parsec_model("swaptions"), threads
    )
    return Table1Result(failure_voltages=failure_voltages)


def report(result: Table1Result) -> str:
    rows = [[
        name,
        f"{result.failure_voltages[name]:.4f} V",
        vf_delta_label(result.failure_voltages[name], result.reference),
    ] for name in TABLE1_ORDER]
    return format_table(
        ["program", "failure voltage", "relative"],
        rows,
        title="Table I — voltage at failure relative to A-Res (4T)",
    )
