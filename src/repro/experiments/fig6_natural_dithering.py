"""Fig. 6: natural dithering — OS ticks re-align threads every ~16 ms.

A four-thread resonant stressmark runs for 100 ms while the OS timer tick
perturbs each core's loop phase.  The scope (100 MS/s, peak detect) shows
the Vdd variability changing at every tick; when the threads happen to
align constructively, the droop maximises.

We reproduce the scope shot as a per-tick droop envelope: for each tick
interval the alignment vector drawn by the OS model is applied as module
phases, measured through the platform, and the interval's min/max Vdd
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.kernels import ThreadProgram
from repro.osmodel.scheduler import OsInterferenceModel


@dataclass(frozen=True)
class TickEnvelope:
    """Droop envelope of one OS-tick interval."""

    start_ms: float
    phases: tuple[int, ...]
    max_droop_v: float
    misalignment_cycles: int


@dataclass(frozen=True)
class Fig6Result:
    ticks: tuple[TickEnvelope, ...]
    aligned_droop_v: float
    period_cycles: int

    @property
    def best_natural_droop_v(self) -> float:
        """Largest droop natural dithering stumbled into."""
        return max(t.max_droop_v for t in self.ticks)

    @property
    def envelope_variation(self) -> float:
        """Peak-to-trough variation of the per-tick droop envelope."""
        droops = [t.max_droop_v for t in self.ticks]
        return max(droops) - min(droops)


def run_fig6(
    platform: MeasurementPlatform,
    program: ThreadProgram,
    *,
    threads: int = 4,
    duration_s: float = 0.1,
    seed: int = 6,
) -> Fig6Result:
    """Simulate 100 ms of a resonant stressmark under OS tick perturbation."""
    baseline = platform.measure_program(program, threads)
    if baseline.period_cycles is None:
        raise ValueError("fig6 needs a periodic resonant stressmark")
    period = baseline.period_cycles

    os_model = OsInterferenceModel(seed=seed)
    tick_phases = os_model.natural_dithering(
        duration_s=duration_s,
        cores=min(threads, platform.chip.module_count),
        loop_period_cycles=period,
    )

    envelopes = []
    for tick in tick_phases:
        phases = list(tick.phases)
        while len(phases) < platform.chip.module_count:
            phases.append(0)
        measurement = platform.measure_program(
            program, threads, module_phases=phases
        )
        envelopes.append(
            TickEnvelope(
                start_ms=tick.start_s * 1e3,
                phases=tick.phases,
                max_droop_v=measurement.max_droop_v,
                misalignment_cycles=tick.misalignment(period),
            )
        )
    return Fig6Result(
        ticks=tuple(envelopes),
        aligned_droop_v=baseline.max_droop_v,
        period_cycles=period,
    )


def report(result: Fig6Result) -> str:
    rows = []
    for tick in result.ticks:
        rows.append([
            f"{tick.start_ms:.1f}",
            str(tick.phases),
            tick.misalignment_cycles,
            f"{tick.max_droop_v * 1e3:.1f}",
        ])
    table = format_table(
        ["t (ms)", "phases", "misalign (cyc)", "droop (mV)"],
        rows,
        title="Fig. 6 — natural dithering over 100 ms (16 ms OS ticks)",
    )
    footer = (
        f"\naligned (dithered) droop: {result.aligned_droop_v * 1e3:.1f} mV; "
        f"best natural: {result.best_natural_droop_v * 1e3:.1f} mV; "
        f"envelope variation: {result.envelope_variation * 1e3:.1f} mV"
    )
    return table + footer
