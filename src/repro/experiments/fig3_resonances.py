"""Fig. 3: first/second/third droop resonances, frequency and time domain.

Reproduces both panels: the |Z(f)| sweep with its three labelled peaks, and
time-domain droop waveforms produced by periodic loads at each resonance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.pdn.impedance import ImpedanceSweep, sweep_impedance
from repro.power.trace import square_wave


@dataclass(frozen=True)
class Fig3Result:
    """The impedance sweep plus one time-domain trace per resonance."""

    sweep: ImpedanceSweep
    time_domain: dict  # label -> (VoltageTrace, droop_v)

    def droop_of(self, label: str) -> float:
        return self.time_domain[label][1]


def run_fig3(
    platform: MeasurementPlatform,
    *,
    swing_a: float = 30.0,
) -> Fig3Result:
    """Sweep the PDN and excite each resonance with a square-wave load."""
    solver = platform.solver_at(platform.chip.vdd)
    sweep = sweep_impedance(solver.network)
    dt = platform.chip.cycle_time_s

    time_domain = {}
    for resonance in sweep.resonances:
        period_cycles = max(2, int(round(1.0 / (resonance.frequency_hz * dt))))
        high = period_cycles // 2
        load = square_wave(
            high_a=swing_a,
            low_a=0.0,
            high_samples=high,
            low_samples=period_cycles - high,
            periods=1,
            dt=dt,
        )
        voltage = solver.steady_state_periodic(load)
        time_domain[resonance.label] = (voltage, voltage.max_droop_v)
    return Fig3Result(sweep=sweep, time_domain=time_domain)


def report(result: Fig3Result) -> str:
    rows = []
    for resonance in result.sweep.resonances:
        rows.append([
            resonance.label,
            f"{resonance.frequency_hz / 1e6:.3f} MHz",
            f"{resonance.impedance_ohm * 1e3:.2f} mOhm",
            f"{result.droop_of(resonance.label) * 1e3:.1f} mV",
        ])
    return format_table(
        ["droop", "frequency", "peak |Z|", "square-wave droop"],
        rows,
        title="Fig. 3 — PDN resonances (frequency + time domain)",
    )
