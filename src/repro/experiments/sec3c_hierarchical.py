"""Section III.C: hierarchical (sub-blocked) vs. flat GA generation.

The paper: "we compared the hierarchical AUDIT implementation to that
proposed in [13] and found sub-blocking provided faster convergence as well
as better results — 19 % higher droop in less than five hours compared to a
30-hour run without hierarchical generation."

We reproduce the comparison at equal *evaluation budget*: the hierarchical
search evolves a K-cycle sub-block replicated S times; the flat search must
evolve all S*K cycles of the HP region directly — a solution space |pool|^
(S*K*width) instead of |pool|^(K*width) — and lands on a worse droop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable


@dataclass(frozen=True)
class Sec3cResult:
    hierarchical_droop_v: float
    flat_droop_v: float
    hierarchical_evaluations: int
    flat_evaluations: int

    @property
    def improvement(self) -> float:
        """Hierarchical droop gain over flat at the same budget."""
        return self.hierarchical_droop_v / self.flat_droop_v - 1.0


def run_sec3c(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    subblock_cycles: int = 6,
    replications: int = 3,
    ga: GaConfig | None = None,
) -> Sec3cResult:
    ga = ga or GaConfig(population_size=12, generations=8, seed=3,
                        stagnation_patience=8)

    hierarchical = AuditRunner(
        platform,
        table=table,
        config=AuditConfig(
            threads=threads,
            mode=StressmarkMode.RESONANT,
            subblock_cycles=subblock_cycles,
            replications=replications,
            ga=ga,
        ),
    ).run(name="A-Res-hier")

    flat = AuditRunner(
        platform,
        table=table,
        config=AuditConfig(
            threads=threads,
            mode=StressmarkMode.RESONANT,
            subblock_cycles=subblock_cycles * replications,  # same HP cycles
            replications=1,                                   # no sub-blocking
            ga=ga,
        ),
    ).run(name="A-Res-flat")

    return Sec3cResult(
        hierarchical_droop_v=hierarchical.max_droop_v,
        flat_droop_v=flat.max_droop_v,
        hierarchical_evaluations=hierarchical.ga_result.evaluations,
        flat_evaluations=flat.ga_result.evaluations,
    )


def report(result: Sec3cResult) -> str:
    rows = [
        ["hierarchical (S sub-blocks)", f"{result.hierarchical_droop_v * 1e3:.1f} mV",
         result.hierarchical_evaluations],
        ["flat (single block)", f"{result.flat_droop_v * 1e3:.1f} mV",
         result.flat_evaluations],
    ]
    table = format_table(
        ["generation policy", "best droop", "evaluations"],
        rows,
        title="Section III.C — hierarchical vs. flat GA (equal budget)",
    )
    return table + (
        f"\nhierarchical improvement: {result.improvement * 100:.1f} % "
        f"(paper: ~19 % with 6x less time)"
    )
