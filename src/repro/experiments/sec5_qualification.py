"""Section V, qualified: a big droop is not automatically a real threat.

Paper Section V's headline caution is that a single droop measurement is
an untrustworthy verdict — droop magnitude does not order the failure
voltages (Table I), and alignment/jitter effects can manufacture or mask
tens of millivolts.  This experiment runs the qualification pipeline
over the canned stressmarks and sets three numbers side by side for
each: nominal droop, robustness under perturbation (jitter seeds, SMT
offsets, supply span, PDN component tolerances), and the voltage at
failure.  The droop column and the failure column disagree on ordering
— SM2 fails high on a modest droop — while the verdict column shows
which droops survive perturbation and are therefore worth trusting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.core.qualify import QualificationReport, QualifyConfig, StressmarkQualifier
from repro.experiments.setup import program_failure_voltage
from repro.isa.opcodes import OpcodeTable
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

#: Droop order from the paper's Table I (largest droop first).
SEC5_ORDER = ("A-Res", "SM-Res", "SM1", "A-Ex", "SM2")


@dataclass(frozen=True)
class Sec5QualificationResult:
    reports: dict  # name -> QualificationReport
    failure_voltages: dict  # name -> VF in volts
    threads: int

    def report_for(self, name: str) -> QualificationReport:
        return self.reports[name]

    @property
    def droop_order(self) -> tuple:
        return tuple(sorted(
            self.reports,
            key=lambda n: self.reports[n].nominal_droop_v,
            reverse=True,
        ))

    @property
    def failure_order(self) -> tuple:
        return tuple(sorted(
            self.failure_voltages,
            key=lambda n: self.failure_voltages[n],
            reverse=True,
        ))


def run_sec5_qualification(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    config: QualifyConfig | None = None,
) -> Sec5QualificationResult:
    pool = table.supported_on(platform.chip.extensions)
    kernels = {
        "A-Res": a_res_canned(pool),
        "SM-Res": sm_res(pool),
        "SM1": sm1(pool),
        "A-Ex": a_ex_canned(pool),
        "SM2": sm2(pool),
    }
    qualifier = StressmarkQualifier(
        platform,
        threads=threads,
        config=config if config is not None else QualifyConfig(),
    )
    reports = {}
    failure_voltages = {}
    for name in SEC5_ORDER:
        program = stressmark_program(kernels[name])
        reports[name] = qualifier.qualify_program(program, name=name)
        failure_voltages[name] = program_failure_voltage(
            platform, program, threads
        )
    return Sec5QualificationResult(
        reports=reports, failure_voltages=failure_voltages, threads=threads
    )


def report(result: Sec5QualificationResult) -> str:
    rows = []
    for name in SEC5_ORDER:
        qual = result.reports[name]
        rows.append([
            name,
            f"{qual.nominal_droop_v * 1e3:.1f} mV",
            f"{qual.robustness:.2f}",
            qual.verdict,
            f"{result.failure_voltages[name]:.3f} V",
        ])
    table = format_table(
        ["stressmark", "nominal droop", "robustness", "verdict",
         "failure voltage"],
        rows,
        title=f"Sec. V qualified stressmarks @ {result.threads}T",
    )
    droop = " > ".join(result.droop_order)
    failure = " > ".join(result.failure_order)
    droops = [result.reports[n].nominal_droop_v for n in SEC5_ORDER]
    voltages = list(result.failure_voltages.values())
    droop_span = max(droops) / min(droops) if min(droops) > 0 else float("inf")
    vf_span_mv = (max(voltages) - min(voltages)) * 1e3
    lines = [
        table,
        "",
        f"droop order:   {droop}",
        f"failure order: {failure}",
        f"droop spans {droop_span:.1f}x "
        f"({max(droops) * 1e3:.1f} -> {min(droops) * 1e3:.1f} mV) while "
        f"failure voltages span only {vf_span_mv:.0f} mV: droop magnitude "
        "is a poor proxy for failure (paper Sec. V) — qualify the droop, "
        "don't rank by it.",
    ]
    if result.droop_order != result.failure_order:
        lines.append(
            "the droop ranking does not even order the failure voltages "
            "on this testbed."
        )
    return "\n".join(lines)
