"""Ablations of the testbed's design choices (DESIGN.md section 5/6).

Three studies:

* **SMT decoherence magnitude** — the per-repetition phase random walk that
  models shared-FPU loop-length interference at 8T.  Walk step 0 means
  lockstep siblings; the paper's 8T droop loss requires a non-zero walk.
* **GA budget** — droop of the best stressmark as a function of the
  generation budget (convergence curve; the paper runs "less than five
  hours" on hardware, we show the simulated-measurement equivalent).
* **PDN damping (die-decap ESR)** — the first-droop peak impedance drives
  resonant-stressmark droop almost linearly; hand-tuned and generated
  stressmarks track it together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable
from repro.pdn.elements import LadderStage, PdnParameters, bulldozer_pdn
from repro.pdn.impedance import sweep_impedance
from repro.pdn.network import PdnNetwork
from repro.uarch.config import bulldozer_chip
from repro.workloads.stressmarks import a_res_canned, sm_res, stressmark_program


# ----------------------------------------------------------------------
# SMT jitter ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JitterAblationResult:
    droops_8t: dict  # walk step (cycles) -> droop (V)
    droop_4t: float

    @property
    def lockstep_8t(self) -> float:
        return self.droops_8t[0]


def run_jitter_ablation(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    steps: tuple[int, ...] = (0, 1, 2, 4),
) -> JitterAblationResult:
    """8T droop of SM-Res versus the SMT phase-walk magnitude."""
    pool = table.supported_on(platform.chip.extensions)
    program = stressmark_program(sm_res(pool))
    droop_4t = platform.measure_program(program, 4).max_droop_v

    droops = {}
    for step in steps:
        fresh = MeasurementPlatform(
            platform.chip, platform.pdn, jitter_step_cycles=step
        )
        droops[step] = fresh.measure_program(program, 8).max_droop_v
    return JitterAblationResult(droops_8t=droops, droop_4t=droop_4t)


def report_jitter(result: JitterAblationResult) -> str:
    rows = [["4T (reference)", f"{result.droop_4t * 1e3:.1f} mV"]]
    for step, droop in sorted(result.droops_8t.items()):
        rows.append([f"8T, walk step {step} cyc", f"{droop * 1e3:.1f} mV"])
    return format_table(
        ["configuration", "SM-Res max droop"],
        rows,
        title="Ablation — SMT loop-phase random walk vs. 8T droop",
    )


# ----------------------------------------------------------------------
# GA budget ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GaBudgetResult:
    droops: dict        # generations -> best droop (V)
    evaluations: dict   # generations -> GA evaluations


def run_ga_budget_ablation(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    budgets: tuple[int, ...] = (2, 6, 12),
    threads: int = 4,
    seed: int = 4,
) -> GaBudgetResult:
    droops = {}
    evaluations = {}
    for generations in budgets:
        runner = AuditRunner(
            platform,
            table=table,
            config=AuditConfig(
                threads=threads,
                mode=StressmarkMode.RESONANT,
                ga=GaConfig(population_size=12, generations=generations,
                            seed=seed, stagnation_patience=generations + 1),
            ),
        )
        result = runner.run()
        droops[generations] = result.max_droop_v
        evaluations[generations] = result.ga_result.evaluations
    return GaBudgetResult(droops=droops, evaluations=evaluations)


def report_ga_budget(result: GaBudgetResult) -> str:
    rows = [
        [g, result.evaluations[g], f"{result.droops[g] * 1e3:.1f} mV"]
        for g in sorted(result.droops)
    ]
    return format_table(
        ["generations", "evaluations", "best droop"],
        rows,
        title="Ablation — AUDIT droop vs. GA budget",
    )


# ----------------------------------------------------------------------
# PDN damping ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PdnDampingResult:
    rows: tuple  # (esr_ohm, peak_impedance_ohm, a_res_droop_v, sm_res_droop_v)


def run_pdn_damping_ablation(
    table: OpcodeTable,
    *,
    esr_values: tuple[float, ...] = (0.1e-3, 0.2e-3, 0.4e-3, 0.8e-3),
    threads: int = 4,
) -> PdnDampingResult:
    chip = bulldozer_chip()
    base = bulldozer_pdn(vdd=chip.vdd)
    pool = table.supported_on(chip.extensions)
    a_res = stressmark_program(a_res_canned(pool))
    hand = stressmark_program(sm_res(pool))
    rows = []
    for esr in esr_values:
        pdn = PdnParameters(
            vdd_nominal=base.vdd_nominal,
            board=base.board,
            package=base.package,
            die=LadderStage(
                resistance_ohm=base.die.resistance_ohm,
                inductance_h=base.die.inductance_h,
                capacitance_f=base.die.capacitance_f,
                esr_ohm=esr,
            ),
        )
        peak = sweep_impedance(PdnNetwork(pdn)).first_droop.impedance_ohm
        platform = MeasurementPlatform(chip, pdn)
        rows.append((
            esr,
            peak,
            platform.measure_program(a_res, threads).max_droop_v,
            platform.measure_program(hand, threads).max_droop_v,
        ))
    return PdnDampingResult(rows=tuple(rows))


def report_pdn_damping(result: PdnDampingResult) -> str:
    rows = [
        [f"{esr * 1e3:.2f} mOhm", f"{peak * 1e3:.2f} mOhm",
         f"{a * 1e3:.1f} mV", f"{h * 1e3:.1f} mV"]
        for esr, peak, a, h in result.rows
    ]
    return format_table(
        ["die-decap ESR", "first-droop |Z| peak", "A-Res droop", "SM-Res droop"],
        rows,
        title="Ablation — PDN damping vs. resonant stressmark droop",
    )
