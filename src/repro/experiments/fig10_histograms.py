"""Fig. 10: frequency of droop events — Vdd histograms.

Histograms of sampled supply voltage for zeusmp, SM1, and A-Res (the paper
uses 8 M scope samples each).  The three characteristic shapes:

* **zeusmp** — least variation, tight around nominal;
* **SM1** — mass at nominal with a long two-sided tail (occasional
  resonant regions plus excitation events);
* **A-Res** — the opposite: the bulk of samples sits near the worst-case
  droop, because the loop *lives* at the resonance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable
from repro.measure.droop import DroopHistogram
from repro.workloads.runner import run_workload
from repro.workloads.spec import spec_model
from repro.workloads.stressmarks import a_res_canned, sm1, stressmark_program


@dataclass(frozen=True)
class Fig10Result:
    histograms: dict  # name -> DroopHistogram

    def spread(self, name: str) -> float:
        return self.histograms[name].spread_v()

    def modal_offset(self, name: str) -> float:
        """Nominal minus modal voltage: where the probability mass sits."""
        hist = self.histograms[name]
        return hist.vdd_nominal - hist.modal_voltage


def _stressmark_long_capture(
    platform: MeasurementPlatform,
    kernel,
    threads: int,
    total_cycles: int,
) -> np.ndarray:
    """A long Vdd capture of a stressmark by tiling its periodic waveform."""
    measurement = platform.measure_program(stressmark_program(kernel), threads)
    period_samples = measurement.voltage.samples
    reps = max(1, total_cycles // len(period_samples))
    return np.tile(period_samples, reps)


def run_fig10(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    samples: int = 2_000_000,
    bins: int = 120,
    seed: int = 10,
) -> Fig10Result:
    """Histogram Vdd for zeusmp, SM1, and A-Res over *samples* cycles."""
    pool = table.supported_on(platform.chip.extensions)
    vdd = platform.chip.vdd

    zeusmp = run_workload(
        platform, spec_model("zeusmp"), threads,
        duration_cycles=samples, rng=np.random.default_rng(seed),
    )
    captures = {
        "zeusmp": zeusmp.voltage.samples,
        "SM1": _stressmark_long_capture(platform, sm1(pool), threads, samples),
        "A-Res": _stressmark_long_capture(platform, a_res_canned(pool), threads, samples),
    }

    # Shared bin range so the three panels are directly comparable (the
    # paper fixes the x-axis range across all three plots).
    lo = min(c.min() for c in captures.values()) - 0.002
    hi = max(c.max() for c in captures.values()) + 0.002
    histograms = {
        name: DroopHistogram.from_samples(c, vdd, bins=bins, v_range=(lo, hi))
        for name, c in captures.items()
    }
    return Fig10Result(histograms=histograms)


def report(result: Fig10Result) -> str:
    rows = []
    for name, hist in result.histograms.items():
        rows.append([
            name,
            f"{hist.total_samples}",
            f"{result.spread(name) * 1e3:.1f} mV",
            f"{result.modal_offset(name) * 1e3:.1f} mV",
            f"{hist.tail_fraction(hist.vdd_nominal - 0.03):.4f}",
        ])
    return format_table(
        ["workload", "samples", "Vdd spread", "mode below nominal",
         "frac < nominal-30mV"],
        rows,
        title="Fig. 10 — frequency of droop events (Vdd histograms)",
    )
