"""Fig. 4: first-droop excitation vs. first-droop resonance.

A single low→high activity event rings and tapers (left panel); the same
event repeated at the PDN's resonant frequency builds to a much larger
droop (right panel).  Both waveforms are produced with the AUDIT probe
kernels on the real measurement path, not with idealised current steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.platform import Measurement, MeasurementPlatform
from repro.core.resonance import probe_program
from repro.isa.opcodes import OpcodeTable


@dataclass(frozen=True)
class Fig4Result:
    excitation: Measurement
    resonance: Measurement

    @property
    def amplification(self) -> float:
        """Resonant droop over single-event droop (> 1 means build-up)."""
        return self.resonance.max_droop_v / self.excitation.max_droop_v


def run_fig4(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    resonant_period_cycles: int = 32,
    threads: int = 4,
) -> Fig4Result:
    """Measure an isolated burst and the same burst repeated at resonance."""
    pool = table.supported_on(platform.chip.extensions)
    decode = platform.chip.module.decode_width
    fp = platform.chip.module.fp_arith_pipes
    hp_count = (resonant_period_cycles * fp) // 2

    # Excitation: the identical HP burst, but isolated by a 16x longer
    # quiet region so each ring decays before the next event.
    excitation_program = probe_program(
        pool,
        hp_count=hp_count,
        lp_nops=16 * resonant_period_cycles * decode,
    )
    resonant_program = probe_program(
        pool,
        hp_count=hp_count,
        lp_nops=max(0, resonant_period_cycles * decode - hp_count - 1),
    )
    return Fig4Result(
        excitation=platform.measure_program(excitation_program, threads),
        resonance=platform.measure_program(resonant_program, threads),
    )


def report(result: Fig4Result) -> str:
    rows = [
        ["first droop excitation", f"{result.excitation.max_droop_v * 1e3:.1f} mV"],
        ["first droop resonance", f"{result.resonance.max_droop_v * 1e3:.1f} mV"],
        ["amplification", f"{result.amplification:.2f}x"],
    ]
    return format_table(
        ["waveform", "max droop"],
        rows,
        title="Fig. 4 — excitation vs. resonance (AUDIT probe kernels)",
    )
