"""Table III: AUDIT on a different processor (45-nm Phenom II).

The paper swaps the Bulldozer part for a Phenom II X4 925 on the same board
and re-runs AUDIT.  Three findings reproduce here:

* SM1 cannot run at all (FMA4 instructions are not supported);
* AUDIT regenerates a resonant stressmark for the new part's resonance
  (~80 MHz) that is comparable to or better than hand-tuned SM2;
* droop and failure are reported relative to SM2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, vf_delta_label
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.platform import MeasurementPlatform
from repro.errors import SchedulingError
from repro.isa.opcodes import OpcodeTable
from repro.experiments.setup import (
    program_failure_voltage,
    quick_ga,
    workload_failure_voltage,
)
from repro.workloads.spec import spec_model
from repro.workloads.stressmarks import a_res_canned, sm1, sm2, stressmark_program


@dataclass(frozen=True)
class Table3Result:
    droops: dict            # name -> droop (V)
    failure_voltages: dict  # name -> VF (V)
    sm1_rejected: bool
    resonance_hz: float | None

    def relative_droop(self, name: str) -> float:
        return self.droops[name] / self.droops["SM2"]


def run_table3(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    audit_rerun: bool = False,
    audit_seed: int = 33,
) -> Table3Result:
    """Measure zeusmp, SM2, and (re-generated) A-Res on the Phenom testbed."""
    pool = table.supported_on(platform.chip.extensions)
    period = max(
        2, int(round(platform.chip.frequency_hz
                     / platform.pdn.first_droop_frequency_hz))
    )

    # SM1 carries FMA4 code: the testbed must reject it.
    sm1_rejected = False
    try:
        platform.measure_program(stressmark_program(sm1(table)), threads)
    except SchedulingError:
        sm1_rejected = True

    droops = {}
    failure_voltages = {}
    resonance_hz = None

    sm2_kernel = sm2(pool, period_cycles=period)
    sm2_program = stressmark_program(sm2_kernel)
    droops["SM2"] = platform.measure_program(sm2_program, threads).max_droop_v
    failure_voltages["SM2"] = program_failure_voltage(platform, sm2_program, threads)

    if audit_rerun:
        runner = AuditRunner(
            platform,
            config=AuditConfig(threads=threads, mode=StressmarkMode.RESONANT,
                               ga=quick_ga(audit_seed)),
        )
        result = runner.run()
        a_res_kernel = result.kernel
        resonance_hz = result.resonance.resonance_hz
    else:
        a_res_kernel = a_res_canned(
            pool,
            period_cycles=period,
            fp_width=platform.chip.module.fp_arith_pipes,
            decode_width=platform.chip.module.decode_width,
        )
    a_res_program = stressmark_program(a_res_kernel)
    droops["A-Res"] = platform.measure_program(a_res_program, threads).max_droop_v
    failure_voltages["A-Res"] = program_failure_voltage(
        platform, a_res_program, threads
    )

    import numpy as np  # local: zeusmp measurement only

    from repro.workloads.runner import run_workload

    droops["zeusmp"] = run_workload(
        platform, spec_model("zeusmp"), threads,
        rng=np.random.default_rng(3),
    ).max_droop_v
    failure_voltages["zeusmp"] = workload_failure_voltage(
        platform, spec_model("zeusmp"), threads
    )

    return Table3Result(
        droops=droops,
        failure_voltages=failure_voltages,
        sm1_rejected=sm1_rejected,
        resonance_hz=resonance_hz,
    )


def report(result: Table3Result) -> str:
    reference_vf = result.failure_voltages["SM2"]
    rows = []
    for name in ("zeusmp", "SM2", "A-Res"):
        rows.append([
            name,
            f"{result.relative_droop(name):.2f}",
            vf_delta_label(result.failure_voltages[name], reference_vf),
        ])
    table = format_table(
        ["program", "rel. droop (SM2=1)", "failure point"],
        rows,
        title="Table III — 45-nm Phenom II results (relative to SM2)",
    )
    notes = [f"\nSM1 rejected (FMA4 unsupported): {result.sm1_rejected}"]
    if result.resonance_hz is not None:
        notes.append(f"AUDIT-detected resonance: {result.resonance_hz / 1e6:.1f} MHz")
    return table + "; ".join(notes)
