"""Section III: operand data values move the droop by ~10 %.

"We observe that data values used for the stressmark have a measureable
impact on the final droop values, on the order of 10%.  To take data values
into account, we use an alternating set of values that guarantee maximum
toggling between one instruction and the next executing on the same
functional unit."

We measure the same stressmark with max-toggle checkerboard operands,
uncorrelated random data, and all-zero operands, and report the spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.data_patterns import DATA_SWING, DataPattern
from repro.isa.kernels import with_data_pattern
from repro.isa.opcodes import OpcodeTable
from repro.workloads.stressmarks import a_res_canned, stressmark_program


@dataclass(frozen=True)
class DataValueResult:
    droops: dict  # DataPattern -> droop (V)

    @property
    def swing(self) -> float:
        """Relative droop spread between max-toggle and all-zero operands."""
        high = self.droops[DataPattern.MAX_TOGGLE]
        low = self.droops[DataPattern.ZEROS]
        return (high - low) / high


def run_sec3_data_values(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
) -> DataValueResult:
    pool = table.supported_on(platform.chip.extensions)
    base = a_res_canned(pool)
    droops = {}
    for pattern in (DataPattern.MAX_TOGGLE, DataPattern.RANDOM, DataPattern.ZEROS):
        kernel = with_data_pattern(base, pattern)
        droops[pattern] = platform.measure_program(
            stressmark_program(kernel), threads
        ).max_droop_v
    return DataValueResult(droops=droops)


def report(result: DataValueResult) -> str:
    rows = [
        [pattern.value, f"{droop * 1e3:.1f} mV"]
        for pattern, droop in result.droops.items()
    ]
    table = format_table(
        ["operand data", "max droop"],
        rows,
        title="Section III — operand data values vs. droop",
    )
    return table + (
        f"\nmax-toggle vs all-zeros spread: {result.swing * 100:.1f} % "
        f"(paper: on the order of 10 %; model swing parameter: "
        f"{DATA_SWING * 100:.0f} %)"
    )
