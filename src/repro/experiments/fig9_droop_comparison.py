"""Fig. 9: maximum droop of SPEC, PARSEC, and stressmarks × 1T/2T/4T/8T.

All droops reported relative to the 4T SM1 stressmark (the paper's
normalisation), load line disabled, stressmarks dithered to worst-case
alignment, SPEC/PARSEC undithered (they have no regular loop to shift).

``A-Res-8T`` is the stressmark AUDIT generates when *trained at 8 threads*
(two per module): it beats the 4T-trained stressmarks at 8T but loses at
1T–4T (paper Section V.A.2).  The canned variant encodes that training
outcome: a loop whose two-thread-stretched period lands on the resonance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.instruction import make_independent
from repro.isa.kernels import LoopKernel, nop_region
from repro.isa.opcodes import OpcodeTable
from repro.workloads.parsec import PARSEC_MODELS
from repro.workloads.runner import run_workload
from repro.workloads.spec import SPEC_MODELS
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

#: Paper thread configurations.
THREADS = (1, 2, 4, 8)


def a_res_8t_canned(table: OpcodeTable, *, period_cycles: int = 32) -> LoopKernel:
    """The 8T-trained AUDIT stressmark.

    Each thread's solo loop is *half* the resonant period; when two SMT
    siblings share the module front end and FPU, the loop stretches by ~2x
    and the combined activity oscillates at the resonance.  Trained for
    that regime, it underperforms at 1T–4T where its solo period is twice
    the resonant frequency.
    """
    fma = table.get("vfmaddpd") if "vfmaddpd" in table else table.get("mulpd")
    half = max(2, period_cycles // 2)
    hp = make_independent(fma, half)  # half-period of solo FP issue
    lp_nops = max(0, half * 4 - len(hp) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="A-Res-8T")


@dataclass(frozen=True)
class Fig9Result:
    """Droops[name][threads] in volts, plus the normalisation base."""

    droops: dict
    baseline_v: float  # 4T SM1
    suites: dict  # name -> "spec" | "parsec" | "stressmark"

    def relative(self, name: str, threads: int) -> float:
        return self.droops[name][threads] / self.baseline_v


def run_fig9(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: tuple[int, ...] = THREADS,
    workload_duration_cycles: int = 120_000,
    seed: int = 9,
    spec_subset: tuple[str, ...] | None = None,
    parsec_subset: tuple[str, ...] | None = None,
) -> Fig9Result:
    """Measure the full Fig. 9 grid."""
    pool = table.supported_on(platform.chip.extensions)
    droops: dict = {}
    suites: dict = {}

    stressmarks = {
        "SM1": sm1(pool),
        "SM2": sm2(pool),
        "SM-Res": sm_res(pool),
        "A-Ex": a_ex_canned(pool),
        "A-Res": a_res_canned(pool),
        "A-Res-8T": a_res_8t_canned(pool),
    }
    for name, kernel in stressmarks.items():
        program = stressmark_program(kernel)
        droops[name] = {
            t: platform.measure_program(program, t).max_droop_v for t in threads
        }
        suites[name] = "stressmark"

    for model in SPEC_MODELS:
        if spec_subset is not None and model.name not in spec_subset:
            continue
        droops[model.name] = {
            t: run_workload(
                platform, model, t,
                duration_cycles=workload_duration_cycles,
                rng=np.random.default_rng(seed),
            ).max_droop_v
            for t in threads
        }
        suites[model.name] = "spec"

    for model in PARSEC_MODELS:
        if parsec_subset is not None and model.name not in parsec_subset:
            continue
        droops[model.name] = {
            t: run_workload(
                platform, model, t,
                duration_cycles=workload_duration_cycles,
                rng=np.random.default_rng(seed),
            ).max_droop_v
            for t in threads
        }
        suites[model.name] = "parsec"

    return Fig9Result(
        droops=droops,
        baseline_v=droops["SM1"][4],
        suites=suites,
    )


def report(result: Fig9Result) -> str:
    headers = ["workload", "suite"] + [f"{t}T" for t in THREADS if True]
    rows = []
    order = sorted(
        result.droops,
        key=lambda n: (result.suites[n], -result.droops[n][max(result.droops[n])]),
    )
    for name in order:
        per_thread = result.droops[name]
        rows.append(
            [name, result.suites[name]]
            + [f"{per_thread[t] / result.baseline_v:.2f}"
               for t in sorted(per_thread)]
        )
    return format_table(
        headers[: 2 + len(next(iter(result.droops.values())))],
        rows,
        title="Fig. 9 — max droop relative to 4T SM1",
    )
