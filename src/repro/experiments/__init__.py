"""Experiment reproductions: one module per paper table/figure.

See DESIGN.md section 4 for the experiment index.  Every module exposes a
``run_*`` function returning a typed result and a ``report`` function that
renders the same rows/series the paper shows.
"""

from repro.experiments.setup import (
    THREAD_CONFIGS,
    VCRIT_BASE_V,
    bulldozer_testbed,
    failure_model,
    opcode_pool,
    phenom_testbed,
    program_failure_voltage,
    quick_ga,
    workload_failure_voltage,
)

__all__ = [
    "THREAD_CONFIGS",
    "VCRIT_BASE_V",
    "bulldozer_testbed",
    "failure_model",
    "opcode_pool",
    "phenom_testbed",
    "program_failure_voltage",
    "quick_ga",
    "workload_failure_voltage",
]
