"""Section V / conclusions: how simulator-only analysis misleads.

The paper's closing argument: "stress analysis using simulators may lead to
flawed insights about di/dt issues", because

1. **droop measurements do not always correlate to failure points** — a
   droop-ranked simulator study would discard SM2, which actually fails at
   a higher voltage than programs with bigger droops;
2. **OS interference influences how loops align** — a simulator without an
   OS never sees natural dithering, so a misaligned simulation looks
   permanently safe;
3. **alignment that occurs in a simulator may not be repeatable on
   hardware** — a single deterministic alignment is one sample of a
   distribution the hardware actually wanders through.

This experiment runs both analyses side by side on the same programs: the
"simulator path" (droop only, fixed alignment, no OS, no failure model) and
the full "hardware path", and reports where their conclusions diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable
from repro.osmodel.scheduler import OsInterferenceModel
from repro.experiments.setup import (
    WORKLOAD_SEED,
    program_failure_voltage,
    workload_failure_voltage,
)
from repro.workloads.runner import run_workload
from repro.workloads.spec import spec_model
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)


@dataclass(frozen=True)
class SimulatorInsightResult:
    droops: dict              # name -> droop (V): what a simulator reports
    failure_voltages: dict    # name -> VF (V): what hardware shows
    natural_droop_range: tuple[float, float]  # OS-perturbed min/max droop
    fixed_alignment_droop: float              # one deterministic simulation

    def droop_rank(self, name: str) -> int:
        ordered = sorted(self.droops, key=self.droops.get, reverse=True)
        return ordered.index(name) + 1

    def failure_rank(self, name: str) -> int:
        ordered = sorted(self.failure_voltages,
                         key=self.failure_voltages.get, reverse=True)
        return ordered.index(name) + 1

    @property
    def rank_inversions(self) -> list[str]:
        """Programs whose droop rank understates their failure rank."""
        return [name for name in self.droops
                if self.failure_rank(name) < self.droop_rank(name)]


def run_sec5_simulator_insights(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    seed: int = 55,
) -> SimulatorInsightResult:
    pool = table.supported_on(platform.chip.extensions)
    kernels = {
        "A-Res": a_res_canned(pool),
        "SM-Res": sm_res(pool),
        "SM1": sm1(pool),
        "A-Ex": a_ex_canned(pool),
        "SM2": sm2(pool),
    }
    droops = {}
    failure_voltages = {}
    for name, kernel in kernels.items():
        program = stressmark_program(kernel)
        droops[name] = platform.measure_program(program, threads).max_droop_v
        failure_voltages[name] = program_failure_voltage(
            platform, program, threads
        )
    # The benchmark whose droop *beats* SM2's yet fails at a lower voltage —
    # the datapoint a droop-only study gets backwards.
    zeusmp = spec_model("zeusmp")
    droops["zeusmp"] = run_workload(
        platform, zeusmp, threads, rng=np.random.default_rng(WORKLOAD_SEED)
    ).max_droop_v
    failure_voltages["zeusmp"] = workload_failure_voltage(
        platform, zeusmp, threads
    )

    # OS-perturbed alignment distribution vs one deterministic alignment.
    program = stressmark_program(kernels["SM-Res"])
    baseline = platform.measure_program(program, threads)
    period = baseline.period_cycles or 32
    os_model = OsInterferenceModel(seed=seed)
    ticks = os_model.natural_dithering(
        duration_s=0.2, cores=min(threads, platform.chip.module_count),
        loop_period_cycles=period,
    )
    natural = []
    for tick in ticks:
        phases = list(tick.phases)
        while len(phases) < platform.chip.module_count:
            phases.append(0)
        natural.append(
            platform.measure_program(program, threads,
                                     module_phases=phases).max_droop_v
        )
    # "The simulator" runs one fixed, arbitrary alignment forever.
    fixed_phases = [0, period // 3, (2 * period) // 3, period // 2][
        : platform.chip.module_count
    ]
    fixed = platform.measure_program(
        program, threads, module_phases=fixed_phases
    ).max_droop_v

    return SimulatorInsightResult(
        droops=droops,
        failure_voltages=failure_voltages,
        natural_droop_range=(min(natural), max(natural)),
        fixed_alignment_droop=fixed,
    )


def report(result: SimulatorInsightResult) -> str:
    rows = []
    for name in sorted(result.droops, key=result.droops.get, reverse=True):
        rows.append([
            name,
            f"{result.droops[name] * 1e3:.1f} mV",
            result.droop_rank(name),
            f"{result.failure_voltages[name]:.4f} V",
            result.failure_rank(name),
        ])
    table = format_table(
        ["program", "droop", "droop rank", "failure voltage", "failure rank"],
        rows,
        title="Section V — simulator (droop-only) vs hardware (failure) view",
    )
    lo, hi = result.natural_droop_range
    return table + (
        f"\nrank inversions a droop-only study would miss: "
        f"{', '.join(result.rank_inversions) or 'none'}"
        f"\nOS-perturbed droop wanders {lo * 1e3:.1f}-{hi * 1e3:.1f} mV; a "
        f"fixed-alignment simulation reports a single point "
        f"({result.fixed_alignment_droop * 1e3:.1f} mV)"
    )
