"""Section V.A.5: why A-Res sprinkles NOPs — the NOP→ADD substitution.

The paper replaced the NOPs in A-Res's high-power region with independent
integer ADDs and measured a *smaller* droop (by 40 mV), with "the frequency
of the di/dt pattern shifted lower than the ideal resonant frequency,
indicating that the duration of the loop increased".  NOPs consume fetch
and decode resources only; ADDs contend for schedulers, physical registers,
and result buses, stretching the loop off-resonance.

We run the same substitution on the canned A-Res kernel and report both the
droop delta and the activity-fundamental shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analysis.spectrum import amplitude_spectrum
from repro.core.platform import MeasurementPlatform
from repro.isa.instruction import make_independent
from repro.isa.kernels import LoopKernel
from repro.isa.opcodes import OpcodeTable
from repro.workloads.stressmarks import a_res_canned, stressmark_program


def substitute_hp_nops_with_adds(kernel: LoopKernel, table: OpcodeTable) -> LoopKernel:
    """Replace every NOP in the HP region with an independent integer ADD."""
    n_nops = sum(1 for inst in kernel.hp if inst.is_nop)
    adds = iter(make_independent(table.get("add"), max(1, n_nops)))
    new_hp = tuple(
        next(adds) if inst.is_nop else inst for inst in kernel.hp
    )
    return LoopKernel(hp=new_hp, lp=kernel.lp, name=f"{kernel.name}-adds")


@dataclass(frozen=True)
class NopAnalysisResult:
    nop_droop_v: float
    add_droop_v: float
    nop_fundamental_hz: float
    add_fundamental_hz: float

    @property
    def droop_loss_v(self) -> float:
        return self.nop_droop_v - self.add_droop_v

    @property
    def frequency_shift_hz(self) -> float:
        """Negative when the ADD variant runs below the NOP variant."""
        return self.add_fundamental_hz - self.nop_fundamental_hz


def run_sec5a5(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
) -> NopAnalysisResult:
    pool = table.supported_on(platform.chip.extensions)
    original = a_res_canned(pool)
    modified = substitute_hp_nops_with_adds(original, pool)

    m_nop = platform.measure_program(stressmark_program(original), threads)
    m_add = platform.measure_program(stressmark_program(modified), threads)

    dt = platform.chip.cycle_time_s
    f_nop = amplitude_spectrum(m_nop.current.samples, dt).dominant_frequency(
        f_min_hz=5e6
    )
    f_add = amplitude_spectrum(m_add.current.samples, dt).dominant_frequency(
        f_min_hz=5e6
    )
    return NopAnalysisResult(
        nop_droop_v=m_nop.max_droop_v,
        add_droop_v=m_add.max_droop_v,
        nop_fundamental_hz=f_nop,
        add_fundamental_hz=f_add,
    )


def report(result: NopAnalysisResult) -> str:
    rows = [
        ["A-Res (NOPs in HP)", f"{result.nop_droop_v * 1e3:.1f} mV",
         f"{result.nop_fundamental_hz / 1e6:.1f} MHz"],
        ["A-Res (NOPs -> ADDs)", f"{result.add_droop_v * 1e3:.1f} mV",
         f"{result.add_fundamental_hz / 1e6:.1f} MHz"],
    ]
    table = format_table(
        ["variant", "max droop", "pattern fundamental"],
        rows,
        title="Section V.A.5 — NOP vs ADD in the A-Res high-power region",
    )
    return table + (
        f"\ndroop loss from ADD substitution: {result.droop_loss_v * 1e3:.1f} mV "
        f"(paper: 40 mV); frequency shift: "
        f"{result.frequency_shift_hz / 1e6:+.1f} MHz (paper: shifted lower)"
    )
