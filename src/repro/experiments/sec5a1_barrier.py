"""Section V.A.1: the barrier stressmark and release-signal skew.

The paper built a stressmark that repeatedly synchronises all cores on a
barrier and then runs a high-power virus, expecting a large synchronized
first-droop excitation.  It measured almost nothing: "a natural
misalignment occurs between the cores when released from a barrier ... the
signal naturally reaches each core at different times ... This perturbs the
start of activity across the cores by enough cycles to dampen the first
droop excitation."

We reproduce the whole argument: the same barrier+virus program measured
with ideal (zero-skew) release versus realistic per-core release skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.core.platform import MeasurementPlatform
from repro.isa.opcodes import OpcodeTable
from repro.workloads.stressmarks import a_ex_canned, stressmark_program

#: Release skew magnitude observed on the testbed (cycles).
NATURAL_SKEW_CYCLES = 48


@dataclass(frozen=True)
class BarrierResult:
    ideal_droop_v: float      # zero-skew release (the expectation)
    natural_droop_v: float    # realistic skewed release (the measurement)

    @property
    def damping(self) -> float:
        """Fraction of the ideal droop the skew destroys."""
        return 1.0 - self.natural_droop_v / self.ideal_droop_v


def run_sec5a1(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 4,
    skew_cycles: int = NATURAL_SKEW_CYCLES,
    seed: int = 51,
) -> BarrierResult:
    """Measure the barrier stressmark with ideal vs. skewed release.

    The barrier+virus pattern is the excitation kernel (idle wait at the
    barrier, then a burst when released); skew becomes per-module phase
    offsets on the release edge.
    """
    pool = table.supported_on(platform.chip.extensions)
    program = stressmark_program(a_ex_canned(pool))
    rng = np.random.default_rng(seed)

    ideal = platform.measure_program(
        program, threads, module_phases=[0] * platform.chip.module_count
    )
    skews = [int(rng.integers(0, skew_cycles + 1))
             for _ in range(platform.chip.module_count)]
    skews[0] = 0  # reference core
    natural = platform.measure_program(program, threads, module_phases=skews)

    return BarrierResult(
        ideal_droop_v=ideal.max_droop_v,
        natural_droop_v=natural.max_droop_v,
    )


def report(result: BarrierResult) -> str:
    rows = [
        ["ideal release (zero skew)", f"{result.ideal_droop_v * 1e3:.1f} mV"],
        ["natural release skew", f"{result.natural_droop_v * 1e3:.1f} mV"],
        ["damping", f"{result.damping * 100:.1f} %"],
    ]
    return format_table(
        ["barrier release", "max droop"],
        rows,
        title="Section V.A.1 — barrier stressmark vs. release skew",
    )
