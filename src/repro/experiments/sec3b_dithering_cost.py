"""Section III.B: dithering alignment cost and guarantees.

Reproduces the paper's worked example — 4 GHz system, L+H = 24 cycles,
M = 960 cycles:

* exact alignment of 4 cores: 3.3 ms;
* exact alignment of 8 cores: 18.35 minutes (prohibitive);
* approximate alignment of 8 cores with δ = 3: 67 ms.

Also verifies, on a small instance, that the exact schedule really visits
every alignment vector and that the swept worst case equals the aligned
configuration for identical periodic waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.core.dithering import (
    alignment_sweep_cycles,
    alignment_sweep_seconds,
    dither_schedules,
    visited_alignments,
    worst_case_alignment,
)

#: The paper's example parameters.
EXAMPLE_FREQUENCY_HZ = 4e9
EXAMPLE_PERIOD = 24
EXAMPLE_M = 24 * 40  # 960


@dataclass(frozen=True)
class Sec3bResult:
    exact_4core_s: float
    exact_8core_s: float
    approx_8core_delta3_s: float
    small_instance_full_coverage: bool
    aligned_is_worst: bool


def run_sec3b() -> Sec3bResult:
    exact_4 = alignment_sweep_seconds(
        cores=4, period_cycles=EXAMPLE_PERIOD, m_cycles=EXAMPLE_M,
        frequency_hz=EXAMPLE_FREQUENCY_HZ,
    )
    exact_8 = alignment_sweep_seconds(
        cores=8, period_cycles=EXAMPLE_PERIOD, m_cycles=EXAMPLE_M,
        frequency_hz=EXAMPLE_FREQUENCY_HZ,
    )
    approx_8 = alignment_sweep_seconds(
        cores=8, period_cycles=EXAMPLE_PERIOD, m_cycles=EXAMPLE_M,
        frequency_hz=EXAMPLE_FREQUENCY_HZ, delta=3,
    )

    # Coverage check on a small instance (3 cores, period 6).
    period, m = 6, 12
    schedules = dither_schedules(cores=3, period_cycles=period, m_cycles=m)
    total = alignment_sweep_cycles(cores=3, period_cycles=period, m_cycles=m)
    seen = visited_alignments(
        schedules, period_cycles=period, total_cycles=total, sample_every=m
    )
    full_coverage = len(seen) == period ** 2

    # Aligned-is-worst check on a synthetic resonant response.
    t = np.arange(16)
    response = 1.2 - 0.05 * np.cos(2 * np.pi * t / 16)
    offsets, worst = worst_case_alignment(response, cores=3, vdd=1.2)
    aligned_droop = 3 * 0.05
    aligned_is_worst = offsets == (0, 0) and abs(worst - aligned_droop) < 1e-9

    return Sec3bResult(
        exact_4core_s=exact_4,
        exact_8core_s=exact_8,
        approx_8core_delta3_s=approx_8,
        small_instance_full_coverage=full_coverage,
        aligned_is_worst=aligned_is_worst,
    )


def report(result: Sec3bResult) -> str:
    rows = [
        ["exact, 4 cores", f"{result.exact_4core_s * 1e3:.1f} ms", "3.3 ms"],
        ["exact, 8 cores", f"{result.exact_8core_s / 60:.2f} min", "18.35 min"],
        ["approx (δ=3), 8 cores", f"{result.approx_8core_delta3_s * 1e3:.0f} ms", "67 ms"],
    ]
    table = format_table(
        ["sweep", "measured", "paper"],
        rows,
        title="Section III.B — dithering alignment cost (4 GHz, L+H=24, M=960)",
    )
    return (
        table
        + f"\nfull alignment coverage (3 cores, L+H=6): "
          f"{result.small_instance_full_coverage}"
        + f"\naligned configuration is the swept worst case: "
          f"{result.aligned_is_worst}"
    )
