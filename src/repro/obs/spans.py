"""Hierarchical trace spans across processes, pools, and fleet shards.

A campaign is one *trace*: a tree of timed spans rooted at
``audit.campaign`` (or ``fleet.campaign``), with ``ga.generation`` →
``engine.evaluate_batch`` → ``worker.eval`` → ``pipeline.pdn_solve``
nesting below it.  Spans carry monotonic timestamps (CLOCK_MONOTONIC is
system-wide on Linux, so worker- and shard-recorded spans order correctly
against the parent process), structured attributes, and trace/span ids.

The instrumentation points call the module-level :func:`span` helper,
which is a shared no-op singleton until a :class:`Tracer` is installed —
un-instrumented runs (the default for library users and most tests) pay
one dict lookup per call site and allocate nothing.

Cross-process propagation: a :class:`TraceContext` (trace id + parent
span id) is pickled to the worker; the worker builds its own buffering
:class:`Tracer` via :func:`adopt`, records spans locally, and ships the
closed :class:`~repro.core.telemetry.SpanEvent` records back with its
result (``EvalOutcome.spans``, ``ShardResult.timing["spans"]``).  The
parent re-emits them into its own observer chain, so the JSONL trace is a
single file with one coherent tree — even when the pool was SIGKILLed
and respawned in between.  A worker that dies holding open spans never
ships them; the supervisor-side caller closes the loss explicitly with
:meth:`Tracer.lost`, so the tree shows a ``status="lost"`` leaf instead
of a dangling parent id.

Span and trace ids are ``uuid4`` hex prefixes: they exist only inside
telemetry output and must never leak into deterministic artifacts
(reports, registry records, checkpoints).
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass

from repro.core.telemetry import SpanEvent, notify


def new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable coordinates a subprocess needs to join a trace."""

    trace_id: str
    parent_id: str = ""


class _NullSpan:
    """The shared do-nothing span handed out when no tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def close(self, status: str = "ok") -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One open span; closing it emits a SpanEvent through the tracer."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "t0", "attrs", "_closed")

    def __init__(self, tracer: "Tracer", name: str, parent_id: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.span_id = new_id()
        self.parent_id = parent_id
        self.t0 = tracer.clock()
        self.attrs = attrs
        self._closed = False

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def close(self, status: str = "ok") -> None:
        if self._closed:
            return
        self._closed = True
        self.tracer._close(self, status)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close("error" if exc_type is not None else "ok")
        return False


class Tracer:
    """Builds one process's slice of a trace and emits closed spans.

    ``span(...)`` is the structured (context-manager) API — it maintains
    the ambient parent stack, so nested ``with`` blocks nest in the tree.
    ``start(...)``/``Span.close(...)`` is the manual API for spans whose
    lifetime does not follow block structure (a task in flight on a
    worker pool).  Manually started spans do not join the parent stack;
    their children must be created in the process that runs them.
    """

    def __init__(self, observers=(), *, trace_id: str | None = None,
                 root_id: str = "", clock=time.monotonic):
        self.observers = observers
        self.trace_id = trace_id if trace_id else new_id()
        self.root_id = root_id
        """Parent span id adopted from another process ("" for a fresh
        trace): spans opened with an empty stack hang below it."""
        self.clock = clock
        self._stack: list = []

    # -- structured API -------------------------------------------------
    def span(self, name: str, /, **attrs) -> Span:
        opened = Span(self, name, self._parent_id(), attrs)
        self._stack.append(opened)
        return opened

    def start(self, name: str, /, **attrs) -> Span:
        """Open a detached span under the current parent (manual close)."""
        return Span(self, name, self._parent_id(), attrs)

    def lost(self, name: str, /, *, wall_s: float = 0.0, **attrs) -> SpanEvent:
        """Close a span on behalf of a process that died holding it."""
        event = SpanEvent(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=self._parent_id(),
            t0_s=self.clock() - wall_s,
            wall_s=wall_s,
            status="lost",
            attrs=attrs,
            pid=os.getpid(),
        )
        notify(self.observers, event)
        return event

    # -- propagation ----------------------------------------------------
    def context(self) -> TraceContext:
        """The coordinates a subprocess needs to nest under the caller."""
        return TraceContext(trace_id=self.trace_id, parent_id=self._parent_id())

    def emit(self, event: SpanEvent) -> None:
        """Re-emit a span recorded in another process into this chain."""
        notify(self.observers, event)

    # -- internals ------------------------------------------------------
    def _parent_id(self) -> str:
        return self._stack[-1].span_id if self._stack else self.root_id

    def _close(self, span: Span, status: str) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            # Out-of-order close (an exception unwound through several
            # frames): drop it and everything opened after it, closing
            # the abandoned children as errors first.
            index = self._stack.index(span)
            for orphan in reversed(self._stack[index + 1:]):
                self._stack.remove(orphan)
                orphan._closed = True
                self._emit(orphan, "error")
            self._stack.remove(span)
        self._emit(span, status)

    def _emit(self, span: Span, status: str) -> None:
        notify(self.observers, SpanEvent(
            name=span.name,
            trace_id=self.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            t0_s=span.t0,
            wall_s=max(0.0, self.clock() - span.t0),
            status=status,
            attrs=span.attrs,
            pid=os.getpid(),
        ))


def adopt(context: TraceContext, observers=(), *, clock=time.monotonic) -> Tracer:
    """A tracer whose spans nest under *context* from another process."""
    return Tracer(
        observers,
        trace_id=context.trace_id,
        root_id=context.parent_id,
        clock=clock,
    )


class SpanBuffer:
    """An observer that keeps SpanEvents for shipping across a pickle.

    ``cap`` bounds the buffer so a pathological worker cannot inflate its
    result payload without bound; overflow drops the *oldest* records and
    counts them, which the analyzer reports as truncation.
    """

    def __init__(self, cap: int = 512):
        self.cap = cap
        self.records: list = []
        self.dropped = 0

    def on_event(self, event) -> None:
        if isinstance(event, SpanEvent):
            self.records.append(event)
            if len(self.records) > self.cap:
                self.records.pop(0)
                self.dropped += 1


# ----------------------------------------------------------------------
# The ambient (installable) tracer
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install *tracer* as the ambient tracer; returns the previous one.

    Callers must restore the previous tracer when done (see
    :func:`tracing` for the context-manager form).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def current_tracer() -> Tracer | None:
    return _ACTIVE


class tracing:
    """``with tracing(tracer): ...`` — scoped ambient-tracer install."""

    def __init__(self, tracer: Tracer | None):
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        self._previous = install_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        install_tracer(self._previous)


def span(name: str, /, **attrs):
    """Open a span on the ambient tracer (no-op when none is installed)."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


class TracedTask:
    """Wraps a picklable task so its work is traced in the worker.

    The wrapper carries a :class:`TraceContext`; in the worker it builds
    a buffering tracer adopted from that context, runs the task inside a
    ``worker.eval`` span (so every pipeline span the task emits nests
    under it), and attaches the buffered records to the result when the
    result type has a ``spans`` field (``EvalOutcome`` does).  The parent
    re-emits them via :meth:`Tracer.emit`.
    """

    def __init__(self, fn, context: TraceContext, *, span_name: str = "worker.eval"):
        self.fn = fn
        self.context = context
        self.span_name = span_name

    def __call__(self, item):
        buffer = SpanBuffer()
        tracer = adopt(self.context, observers=(buffer,))
        with tracing(tracer):
            with tracer.span(self.span_name, pid=os.getpid()):
                result = self.fn(item)
        if not buffer.records:
            return result
        if "spans" in getattr(result, "__dataclass_fields__", ()):
            import dataclasses

            return dataclasses.replace(result, spans=tuple(buffer.records))
        return result
