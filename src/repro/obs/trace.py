"""Trace analysis: JSONL event stream → span tree → where the time went.

The analysis side of ``repro.obs``: load a ``--telemetry-out`` JSONL
trace, rebuild the span tree across every process that contributed to it,
and reduce it to the numbers an operator steers by — self-time per span
kind, the hottest individual spans, cache-hit and fault rollups.  The
same reduction feeds ``repro telemetry analyze`` (text), ``export``
(markdown, wired into fleet reports), and ``compare`` (two traces → a
regression table for ``check_regression.py``-style gating).

Robustness rules: a span whose parent record never arrived (its process
was SIGKILLed between flushes) is *adopted* — attached under the trace
root, counted in ``orphans``, and marked ``status="lost"`` — rather than
silently dropped or left to corrupt the tree.  The supervisor layers try
to close such spans at run time (:meth:`~repro.obs.spans.Tracer.lost`);
the loader is the backstop for events that never made it to disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.report import format_kv_table, format_table
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry


@dataclass
class SpanNode:
    """One span in the reconstructed tree."""

    name: str
    span_id: str
    parent_id: str
    t0_s: float
    wall_s: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    children: list = field(default_factory=list)
    adopted: bool = False
    """True when the parent record was missing and the loader re-homed
    this span under the trace root."""

    @property
    def self_s(self) -> float:
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))


@dataclass
class SpanTree:
    """The reconstructed span forest of one trace file."""

    roots: list = field(default_factory=list)
    nodes: dict = field(default_factory=dict)
    orphans: int = 0
    """Spans whose parent record never arrived (adopted under a root)."""
    lost: int = 0
    """Spans closed with ``status="lost"`` (including adopted orphans)."""

    def walk(self):
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


def build_tree(span_rows) -> SpanTree:
    """Rebuild the span tree from SpanEvent dicts (any order)."""
    tree = SpanTree()
    for row in span_rows:
        node = SpanNode(
            name=row.get("name", "?"),
            span_id=row.get("span_id", ""),
            parent_id=row.get("parent_id", ""),
            t0_s=float(row.get("t0_s", 0.0)),
            wall_s=float(row.get("wall_s", 0.0)),
            status=row.get("status", "ok"),
            attrs=dict(row.get("attrs", {})),
            pid=int(row.get("pid", 0)),
        )
        tree.nodes[node.span_id] = node
    for node in tree.nodes.values():
        parent = tree.nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        elif not node.parent_id:
            tree.roots.append(node)
        else:
            # Parent record missing: the process holding it died between
            # flushes.  Adopt the span under the root so the tree stays
            # connected, and mark the loss.
            node.adopted = True
            node.status = "lost"
            tree.orphans += 1
            tree.roots.append(node)
    for node in tree.nodes.values():
        node.children.sort(key=lambda n: (n.t0_s, n.span_id))
    tree.roots.sort(key=lambda n: (n.adopted, n.t0_s, n.span_id))
    # Re-home adopted spans under the primary root when one exists, so
    # `analyze` still reports a single rooted tree.
    if tree.roots and tree.orphans:
        primary, rest = tree.roots[0], tree.roots[1:]
        if not primary.adopted:
            for node in [n for n in rest if n.adopted]:
                tree.roots.remove(node)
                primary.children.append(node)
            primary.children.sort(key=lambda n: (n.t0_s, n.span_id))
    tree.lost = sum(1 for node in tree.nodes.values() if node.status == "lost")
    return tree


def load_events(path) -> list:
    """Every event dict in a JSONL trace, in file order.

    Blank lines are skipped; a torn final line (the writer was killed
    mid-write) is tolerated; any other malformed line raises
    :class:`~repro.errors.ConfigurationError` with the line number.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read trace {path}: {error}") from error
    events = []
    lines = raw.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines):
                break  # torn tail from a killed writer
            raise ConfigurationError(
                f"malformed trace line {number} in {path}: {error}"
            ) from error
        if isinstance(row, dict):
            events.append(row)
    return events


@dataclass
class TraceAnalysis:
    """The reduction ``analyze``/``compare``/``export`` all share."""

    path: str
    events_by_kind: dict
    span_counts: dict
    span_wall_s: dict
    span_self_s: dict
    hot_spans: list
    """(name, self_s, wall_s, attrs) for the top individual spans."""
    tree: SpanTree
    evaluations: int = 0
    cache_hits: int = 0
    generations: int = 0
    eval_wall_s: float = 0.0
    stage_cache_hits: dict = field(default_factory=dict)
    platform_stats: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    supervisor_actions: dict = field(default_factory=dict)
    trace_wall_s: float = 0.0

    @property
    def total_events(self) -> int:
        return sum(self.events_by_kind.values())

    @property
    def total_spans(self) -> int:
        return sum(self.span_counts.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.evaluations + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def metrics(self) -> MetricsRegistry:
        """Project the analysis into the shared metrics registry."""
        registry = MetricsRegistry()
        for kind, count in self.events_by_kind.items():
            registry.inc(f"events.{kind}", count)
        for name, count in self.span_counts.items():
            registry.inc(f"spans.{name}", count)
        registry.inc("spans.lost", self.tree.lost)
        registry.inc("engine.evaluations", self.evaluations)
        registry.inc("engine.cache_hits", self.cache_hits)
        for node in self.tree.walk():
            registry.observe(f"span.{node.name}.wall_s", node.wall_s)
        return registry

    def deterministic_counts(self) -> dict:
        """The counts two replays of one seeded campaign must agree on."""
        counts = {
            f"events.{kind}": count
            for kind, count in sorted(self.events_by_kind.items())
        }
        counts.update({
            f"spans.{name}": count
            for name, count in sorted(self.span_counts.items())
        })
        counts["evaluations"] = self.evaluations
        counts["cache_hits"] = self.cache_hits
        counts["generations"] = self.generations
        counts["spans.lost"] = self.tree.lost
        counts["spans.orphaned"] = self.tree.orphans
        return counts


def analyze_trace(path) -> TraceAnalysis:
    """Load one JSONL trace and reduce it (see module docstring)."""
    events = load_events(path)
    events_by_kind: dict = {}
    span_rows = []
    evaluations = cache_hits = generations = 0
    eval_wall_s = 0.0
    stage_cache_hits: dict = {}
    platform_stats: dict = {}
    faults: dict = {}
    supervisor_actions: dict = {}
    for row in events:
        kind = row.get("kind", "?")
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
        if kind == "span":
            span_rows.append(row)
        elif kind == "evaluation":
            if row.get("cached"):
                cache_hits += 1
            else:
                evaluations += 1
                eval_wall_s += float(row.get("wall_s", 0.0))
        elif kind == "generation":
            generations += 1
        elif kind == "stage" and row.get("cache_hit"):
            stage = row.get("stage", "?")
            stage_cache_hits[stage] = stage_cache_hits.get(stage, 0) + 1
        elif kind == "platform-stats":
            for key, value in (row.get("stats") or {}).items():
                if isinstance(value, (int, float)):
                    platform_stats[key] = value
        elif kind == "fault":
            action = row.get("action", "?")
            faults[action] = faults.get(action, 0) + 1
        elif kind == "supervisor":
            action = row.get("action", "?")
            supervisor_actions[action] = supervisor_actions.get(action, 0) + 1
    tree = build_tree(span_rows)
    span_counts: dict = {}
    span_wall_s: dict = {}
    span_self_s: dict = {}
    spans_flat = []
    for node in tree.walk():
        span_counts[node.name] = span_counts.get(node.name, 0) + 1
        span_wall_s[node.name] = span_wall_s.get(node.name, 0.0) + node.wall_s
        span_self_s[node.name] = span_self_s.get(node.name, 0.0) + node.self_s
        spans_flat.append(node)
    spans_flat.sort(key=lambda n: (-n.self_s, n.name, n.span_id))
    hot = [(n.name, n.self_s, n.wall_s, dict(n.attrs)) for n in spans_flat[:10]]
    trace_wall = max((r.wall_s for r in tree.roots), default=0.0)
    return TraceAnalysis(
        path=str(path),
        events_by_kind=dict(sorted(events_by_kind.items())),
        span_counts=dict(sorted(span_counts.items())),
        span_wall_s=dict(sorted(span_wall_s.items())),
        span_self_s=dict(sorted(span_self_s.items())),
        hot_spans=hot,
        tree=tree,
        evaluations=evaluations,
        cache_hits=cache_hits,
        generations=generations,
        eval_wall_s=eval_wall_s,
        stage_cache_hits=stage_cache_hits,
        platform_stats=platform_stats,
        faults=faults,
        supervisor_actions=supervisor_actions,
        trace_wall_s=trace_wall,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _span_rows(analysis: TraceAnalysis) -> list:
    rows = []
    for name in sorted(
        analysis.span_self_s, key=lambda n: -analysis.span_self_s[n]
    ):
        rows.append([
            name,
            analysis.span_counts[name],
            f"{analysis.span_wall_s[name]:.3f}",
            f"{analysis.span_self_s[name]:.3f}",
        ])
    return rows


def render_analysis(analysis: TraceAnalysis, *, top: int = 10) -> str:
    """``repro telemetry analyze``'s text report."""
    parts = [f"trace: {analysis.path}"]
    overview = [
        ("events", analysis.total_events),
        ("spans", analysis.total_spans),
        ("span tree roots", len(analysis.tree.roots)),
        ("orphaned spans", analysis.tree.orphans),
        ("lost spans", analysis.tree.lost),
        ("trace wall time", f"{analysis.trace_wall_s:.2f} s"),
        ("evaluations", analysis.evaluations),
        ("fitness cache hits", analysis.cache_hits),
        ("fitness cache hit rate", f"{analysis.cache_hit_rate * 100:.1f} %"),
        ("generations", analysis.generations),
    ]
    parts.append(format_kv_table(overview, title="trace overview"))
    if analysis.span_counts:
        parts.append(format_table(
            ["span", "count", "total s", "self s"],
            _span_rows(analysis),
            title="self time per span kind",
        ))
        hot = [
            [name, f"{self_s:.3f}", f"{wall_s:.3f}",
             ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) or "—"]
            for name, self_s, wall_s, attrs in analysis.hot_spans[:top]
        ]
        parts.append(format_table(
            ["span", "self s", "wall s", "attrs"], hot,
            title=f"top {min(top, len(hot))} hot spans",
        ))
    cache_rows = [("fitness cache hits", analysis.cache_hits)]
    for stage, hits in sorted(analysis.stage_cache_hits.items()):
        cache_rows.append((f"stage cache hits: {stage}", hits))
    for key in ("module_cache_hits", "profile_cache_hits", "pdn_cache_hits"):
        if key in analysis.platform_stats:
            cache_rows.append((f"platform {key}", analysis.platform_stats[key]))
    parts.append(format_kv_table(cache_rows, title="cache rollup"))
    fault_rows = [
        (f"fault: {action}", count)
        for action, count in sorted(analysis.faults.items())
    ] + [
        (f"supervisor: {action}", count)
        for action, count in sorted(analysis.supervisor_actions.items())
    ]
    if fault_rows:
        parts.append(format_kv_table(fault_rows, title="fault rollup"))
    return "\n\n".join(parts) + "\n"


def render_markdown(analysis: TraceAnalysis, *, title: str = "Telemetry report",
                    top: int = 10) -> str:
    """``repro telemetry export``'s markdown report (fleet-report style)."""
    lines = [
        f"# {title}",
        "",
        f"- trace: `{analysis.path}`",
        f"- events: {analysis.total_events}",
        f"- spans: {analysis.total_spans} "
        f"({analysis.tree.lost} lost, {analysis.tree.orphans} orphaned)",
        f"- trace wall time: {analysis.trace_wall_s:.2f} s",
        f"- evaluations: {analysis.evaluations} "
        f"(+{analysis.cache_hits} cache hits, "
        f"{analysis.cache_hit_rate * 100:.1f} %)",
        f"- generations: {analysis.generations}",
    ]
    if analysis.span_counts:
        lines += [
            "",
            "## Self time per span kind",
            "",
            "| span | count | total (s) | self (s) |",
            "|---|---|---|---|",
        ]
        for row in _span_rows(analysis):
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        lines += [
            "",
            f"## Top {min(top, len(analysis.hot_spans))} hot spans",
            "",
            "| span | self (s) | wall (s) | attrs |",
            "|---|---|---|---|",
        ]
        for name, self_s, wall_s, attrs in analysis.hot_spans[:top]:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
            ) or "—"
            lines.append(
                f"| {name} | {self_s:.3f} | {wall_s:.3f} | {rendered} |"
            )
    if analysis.faults or analysis.supervisor_actions:
        lines += ["", "## Faults", ""]
        for action, count in sorted(analysis.faults.items()):
            lines.append(f"- fault/{action}: {count}")
        for action, count in sorted(analysis.supervisor_actions.items()):
            lines.append(f"- supervisor/{action}: {count}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Compare
# ----------------------------------------------------------------------
@dataclass
class TraceComparison:
    """Two traces, one regression table."""

    baseline: TraceAnalysis
    current: TraceAnalysis
    mismatches: list = field(default_factory=list)
    """Deterministic counts that differ: (key, baseline, current)."""

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def rows(self) -> list:
        """(metric, baseline, current, verdict) — counts then timings."""
        rows = []
        base_counts = self.baseline.deterministic_counts()
        curr_counts = self.current.deterministic_counts()
        for key in sorted(set(base_counts) | set(curr_counts)):
            a, b = base_counts.get(key, 0), curr_counts.get(key, 0)
            rows.append([key, a, b, "ok" if a == b else "MISMATCH"])
        for name in sorted(
            set(self.baseline.span_self_s) | set(self.current.span_self_s)
        ):
            a = self.baseline.span_self_s.get(name, 0.0)
            b = self.current.span_self_s.get(name, 0.0)
            ratio = f"{b / a:.2f}x" if a > 0 else "—"
            rows.append([f"self_s.{name}", f"{a:.3f}", f"{b:.3f}", ratio])
        return rows

    def render(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        table = format_table(
            ["metric", "baseline", "current", "verdict"],
            self.rows(),
            title=f"trace comparison: {verdict}",
        )
        return table + "\n"


def compare_traces(baseline_path, current_path) -> TraceComparison:
    """Compare two traces: deterministic counts gate, timings inform.

    Counts (events per kind, spans per name, evaluations, generations,
    lost/orphaned spans) must match exactly between two replays of the
    same seeded campaign; wall-clock ratios are reported but never fail
    the comparison — CI machines do not share a clock.
    """
    baseline = analyze_trace(baseline_path)
    current = analyze_trace(current_path)
    comparison = TraceComparison(baseline=baseline, current=current)
    base_counts = baseline.deterministic_counts()
    curr_counts = current.deterministic_counts()
    for key in sorted(set(base_counts) | set(curr_counts)):
        a, b = base_counts.get(key, 0), curr_counts.get(key, 0)
        if a != b:
            comparison.mismatches.append((key, a, b))
    return comparison
