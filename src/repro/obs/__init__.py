"""repro.obs: the unified observability layer.

Three pieces, one spine:

* :mod:`repro.obs.spans` — hierarchical trace spans with monotonic
  timing and trace/span ids that survive process-pool workers, fleet
  shard subprocesses, and supervisor respawns;
* :mod:`repro.obs.metrics` — the mergeable, serializable registry of
  counters / gauges / fixed-bucket histograms that every counter path
  (`PipelineCounters`, `MeasurementStats`, `TelemetryCollector`)
  projects into;
* :mod:`repro.obs.trace` — JSONL trace → span tree → self-time /
  cache / fault analysis, backing the ``repro telemetry`` CLI group.

Instrumented code calls :func:`repro.obs.span` — a no-op until a
:class:`Tracer` is installed, so the library stays effectively free when
nobody is watching (the bench baseline gates the watched overhead ≤3 %).
"""

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanBuffer,
    TraceContext,
    TracedTask,
    Tracer,
    adopt,
    current_tracer,
    install_tracer,
    new_id,
    span,
    tracing,
)
from repro.obs.trace import (
    SpanNode,
    SpanTree,
    TraceAnalysis,
    TraceComparison,
    analyze_trace,
    build_tree,
    compare_traces,
    load_events,
    render_analysis,
    render_markdown,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanBuffer",
    "SpanNode",
    "SpanTree",
    "TraceAnalysis",
    "TraceComparison",
    "TraceContext",
    "TracedTask",
    "Tracer",
    "adopt",
    "analyze_trace",
    "build_tree",
    "compare_traces",
    "current_tracer",
    "install_tracer",
    "load_events",
    "new_id",
    "render_analysis",
    "render_markdown",
    "span",
    "tracing",
]
