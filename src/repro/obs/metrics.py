"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Every counter path in the reproduction —
:class:`~repro.pipeline.stages.PipelineCounters`,
:class:`~repro.core.platform.MeasurementStats`, the per-worker deltas the
engine ships back, the per-shard collectors the fleet folds together —
is at heart the same operation: accumulate named numbers in one process
and merge them, order-independently, in another.  :class:`MetricsRegistry`
is that operation made explicit: a single mergeable, JSON-serializable
container the ad-hoc dataclasses project into (``to_metrics``) and out of
(``from_metrics``), so "merge" is written once and the summing semantics
cannot drift between subsystems.

Merging is commutative and associative by construction: counters sum,
gauges keep the maximum (the only order-independent choice short of a
full distribution — use a histogram when the shape matters), histograms
add bucket-wise.  Quantiles (p50/p95/p99) interpolate linearly inside the
winning bucket, clamped to the observed min/max.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: Default histogram bucket upper bounds, in seconds: spans from a
#: sub-millisecond cache hit to a multi-minute shard.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


@dataclass
class Histogram:
    """A fixed-bucket histogram with sum/count/min/max sidecars.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts the overflow above the last bound.  Two histograms merge iff
    their bounds match — mismatched bounds raise rather than silently
    producing a distribution that means nothing.
    """

    bounds: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min_value: float | None = None
    max_value: float | None = None

    def __post_init__(self) -> None:
        self.bounds = tuple(float(b) for b in self.bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} buckets, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1), linearly interpolated within its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = self.bounds[index - 1] if index > 0 else (self.min_value or 0.0)
                hi = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else (self.max_value or lo)
                )
                lo = max(lo, self.min_value or lo)
                hi = min(hi, self.max_value or hi) if self.max_value is not None else hi
                if hi < lo:
                    hi = lo
                fraction = (rank - seen) / bucket_count
                return lo + (hi - lo) * fraction
            seen += bucket_count
        return self.max_value or 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count
        for name in ("min_value", "max_value"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is not None:
                pick = min if name == "min_value" else max
                setattr(self, name, theirs if mine is None else pick(mine, theirs))
        return self

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        return cls(
            bounds=tuple(payload["bounds"]),
            counts=list(payload["counts"]),
            total=float(payload["total"]),
            count=int(payload["count"]),
            min_value=payload.get("min"),
            max_value=payload.get("max"),
        )


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one merge."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- write side ----------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float, *, bounds=DEFAULT_BUCKETS) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds=bounds)
        histogram.observe(value)

    # -- read side -----------------------------------------------------
    def counter(self, name: str, default: float = 0):
        return self._counters.get(name, default)

    def gauge(self, name: str, default: float | None = None):
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def counters(self) -> dict:
        return dict(sorted(self._counters.items()))

    def names(self) -> tuple:
        return tuple(sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        ))

    # -- merge / serialize ---------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry, in place; order-independent."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            mine = self._gauges.get(name)
            self._gauges[name] = value if mine is None else max(mine, value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = Histogram.from_dict(histogram.to_dict())
            else:
                mine.merge(histogram)
        return self

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        registry._counters = dict(payload.get("counters", {}))
        registry._gauges = dict(payload.get("gauges", {}))
        for name, blob in payload.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(blob)
        return registry

    # -- presentation --------------------------------------------------
    def summary_rows(self) -> list:
        """(name, rendered-value) rows for the telemetry report tables."""
        rows = []
        for name, value in sorted(self._counters.items()):
            if isinstance(value, float):
                rows.append((name, f"{value:.4g}"))
            else:
                rows.append((name, value))
        for name, value in sorted(self._gauges.items()):
            rows.append((f"{name} (gauge)", f"{value:.4g}"))
        for name, histogram in sorted(self._histograms.items()):
            if not histogram.count:
                continue
            rows.append((
                name,
                f"n={histogram.count} p50={histogram.quantile(0.50):.4g} "
                f"p95={histogram.quantile(0.95):.4g} "
                f"p99={histogram.quantile(0.99):.4g}",
            ))
        return rows
