"""AUDIT reproduction: automated di/dt stressmark generation.

A full software reproduction of "AUDIT: Stress Testing the Automatic Way"
(Kim, John, Pant, Manne, Schulte, Bircher, Sibi Govindan - MICRO 2012):
closed-loop genetic-algorithm generation of voltage-droop stressmarks for
multi-core processors, evaluated on a software testbed (multi-module
pipeline model + RLC power-distribution network) that stands in for the
paper's AMD Bulldozer / Phenom II boards.

Quick tour::

    from repro.core import AuditRunner, AuditConfig
    from repro.experiments import bulldozer_testbed

    platform = bulldozer_testbed()          # chip model + PDN + scope path
    result = AuditRunner(platform).run()    # resonance sweep + GA loop
    print(result.max_droop_v)

Sub-packages: :mod:`repro.isa` (instruction substrate), :mod:`repro.uarch`
(machine model), :mod:`repro.pdn` (power-delivery network), :mod:`repro.power`
(energy->current), :mod:`repro.measure` (scope + failure model),
:mod:`repro.osmodel` (OS interference), :mod:`repro.core` (AUDIT itself),
:mod:`repro.workloads` (stressmarks + synthetic benchmark suites),
:mod:`repro.analysis` and :mod:`repro.experiments` (paper figures/tables).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
