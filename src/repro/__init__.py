"""AUDIT reproduction: automated di/dt stressmark generation.

A full software reproduction of "AUDIT: Stress Testing the Automatic Way"
(Kim, John, Pant, Manne, Schulte, Bircher, Sibi Govindan - MICRO 2012):
closed-loop genetic-algorithm generation of voltage-droop stressmarks for
multi-core processors, evaluated on a software testbed (multi-module
pipeline model + RLC power-distribution network) that stands in for the
paper's AMD Bulldozer / Phenom II boards.

Quick tour::

    from repro.core import AuditRunner, AuditConfig
    from repro.experiments import bulldozer_testbed

    platform = bulldozer_testbed()          # chip model + PDN + scope path
    result = AuditRunner(platform).run()    # resonance sweep + GA loop
    print(result.max_droop_v)

Sub-packages: :mod:`repro.isa` (instruction substrate), :mod:`repro.uarch`
(machine model), :mod:`repro.pdn` (power-delivery network), :mod:`repro.power`
(energy->current), :mod:`repro.measure` (scope + failure model),
:mod:`repro.osmodel` (OS interference), :mod:`repro.core` (AUDIT itself),
:mod:`repro.workloads` (stressmarks + synthetic benchmark suites),
:mod:`repro.analysis` and :mod:`repro.experiments` (paper figures/tables).
"""

__version__ = "1.0.0"


def package_version() -> str:
    """The installed distribution version, falling back to the source tree's.

    ``importlib.metadata`` reports what ``pip install`` actually put on the
    machine; a source checkout run via ``PYTHONPATH=src`` has no
    distribution, so the in-tree ``__version__`` stands in.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py3.11+ always has it
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__


__all__ = ["__version__", "package_version"]
