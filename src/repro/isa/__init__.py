"""x86-flavoured instruction-set substrate for AUDIT stressmark generation.

Public surface:

* :class:`~repro.isa.opcodes.OpcodeTable` / :func:`~repro.isa.opcodes.default_table`
  — the instruction vocabulary, filterable by ISA extension.
* :class:`~repro.isa.instruction.Instruction` /
  :func:`~repro.isa.instruction.make_instruction` — concrete operations.
* :class:`~repro.isa.kernels.LoopKernel` / :class:`~repro.isa.kernels.ThreadProgram`
  — stressmark loop structure (HP sub-blocks + LP NOPs).
* :func:`~repro.isa.encoder.encode_program` — NASM source emission.
"""

from repro.isa.data_patterns import (
    DATA_SWING,
    DataPattern,
    checkerboard_values,
    toggle_factor,
)
from repro.isa.encoder import encode_kernel_listing, encode_program
from repro.isa.instruction import (
    Instruction,
    make_chain,
    make_independent,
    make_instruction,
    nop,
    used_registers,
)
from repro.isa.kernels import (
    LoopKernel,
    ThreadProgram,
    build_kernel,
    nop_region,
    replicate_subblock,
    with_data_pattern,
)
from repro.isa.opcodes import (
    DEFAULT_OPCODES,
    FP_CLASSES,
    IClass,
    OpcodeSpec,
    OpcodeTable,
    Unit,
    default_table,
)
from repro.isa.registers import (
    GPRS,
    XMMS,
    Register,
    RegClass,
    RegisterAllocator,
    register_pool,
)

__all__ = [
    "DATA_SWING",
    "DEFAULT_OPCODES",
    "FP_CLASSES",
    "DataPattern",
    "GPRS",
    "IClass",
    "Instruction",
    "LoopKernel",
    "OpcodeSpec",
    "OpcodeTable",
    "RegClass",
    "Register",
    "RegisterAllocator",
    "ThreadProgram",
    "Unit",
    "XMMS",
    "build_kernel",
    "checkerboard_values",
    "default_table",
    "encode_kernel_listing",
    "encode_program",
    "make_chain",
    "make_independent",
    "make_instruction",
    "nop",
    "nop_region",
    "register_pool",
    "replicate_subblock",
    "toggle_factor",
    "used_registers",
    "with_data_pattern",
]
