"""Concrete instructions: an opcode bound to register operands.

Instructions are immutable value objects.  The pipeline scheduler consumes
their read/write sets to honour data dependencies; the encoder renders them
to NASM syntax.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IsaError
from repro.isa.data_patterns import DataPattern
from repro.isa.opcodes import IClass, OpcodeSpec, Unit
from repro.isa.registers import Register, RegClass, RegisterAllocator, register_pool


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction instance.

    ``dest`` is ``None`` for instructions without a register result (NOP,
    store).  ``sources`` lists register sources; memory operands are implied
    by the opcode (loads read ``[mem]``, stores write it) and modelled by the
    cache substrate, not by an explicit address operand.
    """

    spec: OpcodeSpec
    dest: Register | None = None
    sources: tuple[Register, ...] = ()
    data: DataPattern = DataPattern.MAX_TOGGLE
    memory_level: str = "l1"
    """Where this op's memory access hits ('l1', 'l2', 'l3', 'memory').

    Ignored for non-memory opcodes.  Deeper levels cost more latency and
    energy — how memory-intensive stressmarks (Joseph & Brooks style) build
    their high-current phases.
    """

    _MEMORY_LEVELS = ("l1", "l2", "l3", "memory")

    def __post_init__(self) -> None:
        if self.memory_level not in self._MEMORY_LEVELS:
            raise IsaError(
                f"memory_level must be one of {self._MEMORY_LEVELS}, "
                f"got {self.memory_level!r}"
            )
        if self.spec.has_dest and self.dest is None:
            raise IsaError(f"{self.spec.mnemonic} requires a destination register")
        if not self.spec.has_dest and self.dest is not None:
            raise IsaError(f"{self.spec.mnemonic} does not write a register")
        if len(self.sources) != self.spec.num_sources:
            raise IsaError(
                f"{self.spec.mnemonic} takes {self.spec.num_sources} sources, "
                f"got {len(self.sources)}"
            )
        expected = self.spec.operand_class
        for reg in self.operands():
            if expected is None or reg.rclass is not expected:
                raise IsaError(
                    f"{self.spec.mnemonic}: operand {reg} has class "
                    f"{reg.rclass.value}, expected "
                    f"{expected.value if expected else 'no operands'}"
                )

    def operands(self) -> tuple[Register, ...]:
        """All register operands (dest first when present)."""
        regs = () if self.dest is None else (self.dest,)
        return regs + self.sources

    @property
    def reads(self) -> frozenset[Register]:
        """Registers read by this instruction."""
        return frozenset(self.sources)

    @property
    def writes(self) -> frozenset[Register]:
        """Registers written by this instruction."""
        return frozenset(() if self.dest is None else (self.dest,))

    @property
    def is_nop(self) -> bool:
        return self.spec.iclass is IClass.NOP

    @property
    def unit(self) -> Unit:
        return self.spec.unit

    def nasm(self) -> str:
        """Render in NASM syntax (may span several lines).

        XMM ops use the three-operand VEX/FMA4 forms they really have.
        Legacy two-operand integer ops are compiled the way a compiler
        lowers three-address code: a register move followed by the
        read-modify-write op.  The machine model executes the abstract
        three-operand instruction; the emitted sequence is the faithful
        x86 encoding of the same dataflow.
        """
        spec = self.spec
        if spec.iclass is IClass.NOP:
            return "nop"
        if spec.iclass is IClass.LOAD:
            return f"mov {self.dest}, [rsp - 64]"
        if spec.iclass is IClass.STORE:
            return f"mov [rsp - 64], {self.sources[0]}"
        if spec.iclass is IClass.LEA:
            return f"lea {self.dest}, [{self.sources[0]} + 8]"
        if spec.iclass is IClass.MOV:
            return f"mov {self.dest}, {self.sources[0]}"
        if spec.iclass is IClass.INT_DIV:
            return (
                f"mov rax, {self.sources[0]}\n"
                f"cqo\n"
                f"idiv {self.sources[1]}\n"
                f"mov {self.dest}, rax"
            )
        if spec.operand_class is RegClass.GPR and spec.num_sources == 2:
            return (
                f"mov {self.dest}, {self.sources[0]}\n"
                f"{spec.mnemonic} {self.dest}, {self.sources[1]}"
            )
        if spec.operand_class is RegClass.GPR and spec.num_sources == 1:
            if spec.iclass is IClass.INT_ALU:  # rotate-style RMW
                return (
                    f"mov {self.dest}, {self.sources[0]}\n"
                    f"{spec.mnemonic} {self.dest}, 5"
                )
        if (spec.operand_class is RegClass.XMM and spec.num_sources == 2
                and not spec.mnemonic.startswith("v")):
            # Legacy SSE ops are destructive two-operand: lower like the
            # integer RMW case, with the class-appropriate register move.
            move = "movdqa" if spec.iclass is IClass.SIMD_INT else "movaps"
            return (
                f"{move} {self.dest}, {self.sources[0]}\n"
                f"{spec.mnemonic} {self.dest}, {self.sources[1]}"
            )
        ops = ", ".join(str(r) for r in self.operands())
        return f"{spec.mnemonic} {ops}"

    def __str__(self) -> str:
        return self.nasm()


def make_instruction(
    spec: OpcodeSpec,
    allocator: RegisterAllocator,
    *,
    dependent: bool = False,
    data: DataPattern = DataPattern.MAX_TOGGLE,
) -> Instruction:
    """Build an instruction for *spec* with allocator-chosen operands.

    With ``dependent=False`` (the default, what a power virus wants) the
    sources are fresh round-robin registers, so consecutive instructions are
    independent and can issue in parallel.  With ``dependent=True`` the first
    source is the most recently written register of the class, forming a
    serial chain (used for long-latency low-power sequences).
    """
    rclass = spec.operand_class
    if rclass is None:
        return Instruction(spec=spec, data=data)

    sources: list[Register] = []
    for i in range(spec.num_sources):
        if dependent and i == 0:
            sources.append(allocator.dependent_source(rclass))
        else:
            sources.append(allocator.fresh(rclass))
    dest = allocator.fresh(rclass) if spec.has_dest else None
    return Instruction(spec=spec, dest=dest, sources=tuple(sources), data=data)


def make_independent(
    spec: OpcodeSpec,
    count: int,
    *,
    data: DataPattern = DataPattern.MAX_TOGGLE,
) -> tuple[Instruction, ...]:
    """*count* copies of *spec* with no data dependencies between them.

    Sources are drawn from the top of the register pool (and never written),
    destinations rotate through the rest — so the ops can issue at the full
    width of their unit pool.  This is what a high-power burst wants: the
    round-robin allocator of :func:`make_instruction` can create accidental
    RAW chains through register reuse, which throttles the burst.
    """
    if count < 1:
        raise IsaError("count must be >= 1")
    rclass = spec.operand_class
    if rclass is None:
        return tuple(Instruction(spec=spec, data=data) for _ in range(count))
    pool = list(register_pool(rclass))
    n_sources = spec.num_sources
    if n_sources >= len(pool):
        raise IsaError("register pool too small for this opcode's sources")
    sources = tuple(pool[-(i + 1)] for i in range(n_sources))
    dest_pool = pool[: len(pool) - n_sources] or pool[:1]
    out = []
    for i in range(count):
        dest = dest_pool[i % len(dest_pool)] if spec.has_dest else None
        out.append(Instruction(spec=spec, dest=dest, sources=sources, data=data))
    return tuple(out)


def make_chain(
    spec: OpcodeSpec,
    length: int,
    *,
    data: DataPattern = DataPattern.MAX_TOGGLE,
) -> tuple[Instruction, ...]:
    """A loop-carried serial dependence chain of *length* copies of *spec*.

    Each instruction's first source is the previous instruction's
    destination, and the first instruction reads the last one's destination —
    so consecutive loop iterations serialise too.  This is the
    "long-latency operations with dependencies" low-power sequence the paper
    evaluates as an LP-region alternative (Section III.C).
    """
    if length < 1:
        raise IsaError("chain length must be >= 1")
    if not spec.has_dest or spec.num_sources < 1:
        raise IsaError("chain ops need a destination and at least one source")
    rclass = spec.operand_class
    if rclass is None:
        raise IsaError("chain ops must take register operands")
    pool = list(register_pool(rclass))
    # Destinations reuse the pool cyclically for long chains; renaming means
    # only the explicit RAW chain below serialises.
    dests = [pool[i % (len(pool) - 1)] for i in range(length)]
    chain = []
    filler = pool[-1]
    for i in range(length):
        prev_dest = dests[(i - 1) % length]
        sources = [prev_dest] + [filler] * (spec.num_sources - 1)
        chain.append(
            Instruction(spec=spec, dest=dests[i], sources=tuple(sources), data=data)
        )
    return tuple(chain)


def nop(spec_table_nop: OpcodeSpec) -> Instruction:
    """A NOP instruction from the given NOP spec."""
    if spec_table_nop.iclass is not IClass.NOP:
        raise IsaError("nop() requires a NOP opcode spec")
    return Instruction(spec=spec_table_nop)


def used_registers(instructions) -> tuple[frozenset[Register], frozenset[Register]]:
    """Return (GPRs, XMMs) referenced anywhere in *instructions*."""
    gprs: set[Register] = set()
    xmms: set[Register] = set()
    for inst in instructions:
        for reg in inst.operands():
            if reg.rclass is RegClass.GPR:
                gprs.add(reg)
            else:
                xmms.add(reg)
    return frozenset(gprs), frozenset(xmms)
