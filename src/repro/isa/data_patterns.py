"""Operand data patterns for maximum switching activity.

Paper Section III observes that the data values used by a stressmark change
the measured droop by about 10 %, and that AUDIT therefore initialises
operands with "an alternating set of values that guarantee maximum toggling
between one instruction and the next executing on the same functional unit".

This module provides those value sets plus the *toggle factor* the power
model applies: a multiplicative scaling of dynamic energy in
[1 - DATA_SWING/2, 1 + DATA_SWING/2] depending on the pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import IsaError

#: Peak-to-peak relative effect of operand data on dynamic energy (paper: ~10 %).
DATA_SWING = 0.10

#: 64-bit checkerboard constants: consecutive ops alternate between these two,
#: so every datapath bit toggles on every execution.
CHECKER_A = 0x5555_5555_5555_5555
CHECKER_B = 0xAAAA_AAAA_AAAA_AAAA


class DataPattern(str, Enum):
    """Named operand-data strategies."""

    MAX_TOGGLE = "max_toggle"
    """Alternating 0x55../0xAA.. checkerboards: every bit flips each op."""

    ZEROS = "zeros"
    """All-zero operands: minimal switching."""

    RANDOM = "random"
    """Uncorrelated random data: average switching."""


_TOGGLE_FACTOR = {
    DataPattern.MAX_TOGGLE: 1.0 + DATA_SWING / 2,
    DataPattern.ZEROS: 1.0 - DATA_SWING / 2,
    DataPattern.RANDOM: 1.0,
}


def toggle_factor(pattern: DataPattern) -> float:
    """Dynamic-energy multiplier for *pattern*.

    ``MAX_TOGGLE`` and ``ZEROS`` differ by :data:`DATA_SWING` (10 %),
    matching the paper's measured data-value effect.
    """
    try:
        return _TOGGLE_FACTOR[pattern]
    except KeyError:
        raise IsaError(f"unknown data pattern: {pattern!r}") from None


@dataclass(frozen=True)
class OperandInit:
    """A register initialisation emitted in the program prologue."""

    register: str
    value: int

    def nasm(self) -> str:
        """NASM line initialising the register (GPRs only)."""
        return f"mov {self.register}, 0x{self.value:016x}"


def checkerboard_values(count: int) -> list[int]:
    """Return *count* values alternating between the two checkerboards.

    Loading consecutive registers with alternating checkerboards means any
    round-robin operand allocation feeds a functional unit inputs whose bits
    all differ from the previous operation's, maximising toggling.
    """
    if count < 0:
        raise IsaError("count must be non-negative")
    return [CHECKER_A if i % 2 == 0 else CHECKER_B for i in range(count)]


def prologue_inits(register_names: list[str] | tuple[str, ...]) -> list[OperandInit]:
    """Alternating checkerboard initialisations for *register_names*."""
    values = checkerboard_values(len(register_names))
    return [OperandInit(r, v) for r, v in zip(register_names, values)]
