"""Architectural register model for the x86-flavoured ISA substrate.

AUDIT's code generator (paper Section IV) uses general-purpose registers and
64-/128-bit media registers as source and destination operands.  This module
provides the register name space plus a small allocator that the code
generator uses to pick operands — either fresh registers (to create
independent instructions that can issue in parallel) or recently written ones
(to create deliberate dependency chains).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

from repro.errors import IsaError


class RegClass(str, Enum):
    """Operand register class."""

    GPR = "gpr"
    """64-bit general purpose register (rax, rbx, ...)."""

    XMM = "xmm"
    """128-bit SSE media register (xmm0 ... xmm15)."""


@dataclass(frozen=True, order=True)
class Register:
    """A single architectural register.

    Registers are value objects: two ``Register`` instances with the same
    name compare equal and hash identically, so they can be used in
    read/write dependency sets.
    """

    name: str
    rclass: RegClass

    def __str__(self) -> str:
        return self.name


#: GPRs available to generated code.  ``rsp``/``rbp`` are reserved for the
#: runtime, ``rcx`` is the loop counter used by the kernel epilogue
#: (``dec rcx; jnz``), and ``rax``/``rdx`` are scratch registers clobbered
#: by the idiv lowering sequence (``mov rax, …; cqo; idiv …``).
GPR_NAMES: tuple[str, ...] = (
    "rbx",
    "rsi",
    "rdi",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: The loop-counter register, excluded from allocation.
LOOP_COUNTER = Register("rcx", RegClass.GPR)

XMM_NAMES: tuple[str, ...] = tuple(f"xmm{i}" for i in range(16))

GPRS: tuple[Register, ...] = tuple(Register(n, RegClass.GPR) for n in GPR_NAMES)
XMMS: tuple[Register, ...] = tuple(Register(n, RegClass.XMM) for n in XMM_NAMES)


def register_pool(rclass: RegClass) -> tuple[Register, ...]:
    """Return every allocatable register of *rclass*."""
    if rclass is RegClass.GPR:
        return GPRS
    if rclass is RegClass.XMM:
        return XMMS
    raise IsaError(f"unknown register class: {rclass!r}")


class RegisterAllocator:
    """Round-robin operand allocator with optional dependency injection.

    The allocator cycles through each register class independently so that
    consecutive instructions get distinct destinations (maximising
    instruction-level parallelism, which is what a power virus wants).  The
    ``dependent_source`` method instead returns the most recently allocated
    destination of a class, letting callers build serial chains (used for the
    long-latency low-power sequences evaluated in paper Section III.C).
    """

    def __init__(self) -> None:
        self._cycles = {
            RegClass.GPR: itertools.cycle(GPRS),
            RegClass.XMM: itertools.cycle(XMMS),
        }
        self._last: dict[RegClass, Register] = {}

    def fresh(self, rclass: RegClass) -> Register:
        """Return the next register of *rclass* in round-robin order."""
        reg = next(self._cycles[rclass])
        self._last[rclass] = reg
        return reg

    def dependent_source(self, rclass: RegClass) -> Register:
        """Return the most recently allocated register of *rclass*.

        Using this as a source operand makes the new instruction depend on
        the previous producer.  Falls back to a fresh register when nothing
        has been allocated yet.
        """
        last = self._last.get(rclass)
        if last is None:
            return self.fresh(rclass)
        return last

    def reset(self) -> None:
        """Restart both round-robin cycles from the beginning."""
        self.__init__()
