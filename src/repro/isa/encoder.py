"""NASM assembly emission.

The paper's AUDIT emits NASM-format x86-64 assembly compiled with NASM
2.09.08 (Section IV).  We reproduce that artifact: :func:`encode_program`
renders a :class:`~repro.isa.kernels.ThreadProgram` as a complete NASM
source file — prologue initialising every used register with max-toggle
checkerboard data, the loop body, and the ``dec rcx / jnz`` loop close.

The emitted text is a faithful, assemblable artifact of the generated
stressmark; the *measured* path in this library runs the same instruction
stream through the machine model instead of real silicon.
"""

from __future__ import annotations

from repro.isa.data_patterns import CHECKER_A, CHECKER_B
from repro.isa.instruction import used_registers
from repro.isa.kernels import LoopKernel, ThreadProgram

_HEADER = """\
; Auto-generated di/dt stressmark (AUDIT reproduction)
; Assemble with: nasm -f elf64 {name}.asm
BITS 64
section .text
global _start
_start:
"""


def _prologue_lines(kernel: LoopKernel) -> list[str]:
    """Register initialisation with alternating checkerboard values."""
    gprs, xmms = used_registers(kernel.body)
    lines: list[str] = []
    for i, reg in enumerate(sorted(gprs)):
        value = CHECKER_A if i % 2 == 0 else CHECKER_B
        lines.append(f"    mov {reg}, 0x{value:016x}")
    if xmms:
        # Stage the two checkerboards in memory once, then load alternately.
        lines.append(f"    mov rax, 0x{CHECKER_A:016x}")
        lines.append("    mov [rsp - 16], rax")
        lines.append("    mov [rsp - 8], rax")
        lines.append(f"    mov rax, 0x{CHECKER_B:016x}")
        lines.append("    mov [rsp - 32], rax")
        lines.append("    mov [rsp - 24], rax")
        for i, reg in enumerate(sorted(xmms)):
            slot = 16 if i % 2 == 0 else 32
            lines.append(f"    movdqu {reg}, [rsp - {slot}]")
    return lines


def encode_program(program: ThreadProgram, *, name: str | None = None) -> str:
    """Render *program* as a complete NASM source string."""
    kernel = program.kernel
    label = name or kernel.name
    lines = [_HEADER.format(name=label)]
    lines.extend(_prologue_lines(kernel))
    lines.append(f"    mov rcx, {program.iterations}")
    lines.append(f"{label}_loop:")
    def emit(inst):
        for line in inst.nasm().splitlines():
            lines.append(f"    {line}")

    for inst in kernel.hp:
        emit(inst)
    if kernel.lp:
        lines.append("    ; --- low-power region ---")
        for inst in kernel.lp:
            emit(inst)
    lines.append("    dec rcx")
    lines.append(f"    jnz {label}_loop")
    lines.append("    ; exit(0)")
    lines.append("    mov rax, 60")
    lines.append("    xor rdi, rdi")
    lines.append("    syscall")
    return "\n".join(lines) + "\n"


def encode_kernel_listing(kernel: LoopKernel) -> str:
    """Render just the loop body (one instruction per line), for reports."""
    lines = [f"; {kernel.name}: {len(kernel.hp)} HP + {len(kernel.lp)} LP instructions"]
    lines.extend(inst.nasm() for inst in kernel.hp)
    if kernel.lp:
        lines.append("; --- low-power region ---")
        lines.extend(inst.nasm() for inst in kernel.lp)
    return "\n".join(lines) + "\n"
