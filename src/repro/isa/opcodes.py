"""Opcode descriptors: the instruction vocabulary AUDIT draws from.

Every opcode carries the microarchitectural and electrical attributes the
rest of the library needs:

* which **execution unit** it occupies and for how long (latency /
  reciprocal throughput), driving the pipeline scheduler;
* its **dynamic energy** per execution, driving the per-cycle current model;
* the **path sensitivity** of the circuit paths it exercises, driving the
  voltage-at-failure model (paper Section V.A.4 — SM2 fails at a high voltage
  despite a modest droop because it exercises sensitive paths);
* the **ISA extensions** it requires, so that older processors reject it
  (paper Section V.C — SM1 could not run on the Phenom II).

The energy numbers are synthetic but *ordered* like real x86 cores: NOPs are
nearly free, integer ALU ops cheap, SIMD floating-point and fused
multiply-add ops the most expensive.  Only the ordering and rough ratios
matter for reproducing the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import IsaError
from repro.isa.registers import RegClass


class IClass(str, Enum):
    """Broad instruction class, used for reporting and cost functions."""

    NOP = "nop"
    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    LEA = "lea"
    MOV = "mov"
    LOAD = "load"
    STORE = "store"
    SIMD_INT = "simd_int"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FMA = "fma"
    BRANCH = "branch"


class Unit(str, Enum):
    """Execution unit pool an instruction occupies.

    ``NONE`` means the instruction is eliminated at the front end (NOPs): it
    consumes a fetch/decode slot and fetch energy but no back-end resources —
    the property that lets AUDIT's NOP-sprinkled loops hold their period at
    the resonant frequency (paper Section V.A.5).

    ``FPU`` and ``FSIMD`` are both pipes of the module-shared floating-point
    unit (Bulldozer: two FMAC pipes plus two SIMD-integer pipes); they share
    the FP register tokens and count against the FPU throttle together.
    """

    NONE = "none"
    IALU = "ialu"
    IMUL = "imul"
    AGU = "agu"
    FPU = "fpu"
    FSIMD = "fsimd"


#: Instruction classes executed by the (module-shared) floating-point unit.
FP_CLASSES: frozenset[IClass] = frozenset(
    {IClass.FP_ADD, IClass.FP_MUL, IClass.FP_DIV, IClass.FMA, IClass.SIMD_INT}
)


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one opcode.

    Parameters
    ----------
    mnemonic:
        NASM mnemonic (``vfmaddpd`` etc.).
    iclass:
        Broad class, see :class:`IClass`.
    unit:
        Execution unit pool occupied, see :class:`Unit`.
    latency:
        Result latency in cycles (dependent ops wait this long).
    issue_interval:
        Cycles the unit stays busy per instruction (reciprocal throughput).
        1 for fully pipelined ops, > 1 for dividers.
    energy_pj:
        Dynamic energy per execution in picojoules at nominal data toggling.
    num_sources:
        Number of register source operands.
    has_dest:
        Whether the instruction writes a register result (consumes a
        physical register and a result-bus slot).
    operand_class:
        Register class of the operands (GPR or XMM); ``None`` for NOP.
    path_sensitivity:
        Relative timing-margin sensitivity of the paths exercised, 1.0 being
        the typical path.  Values above 1.0 mean the op fails at a *higher*
        supply voltage for the same droop.
    extensions:
        ISA extensions required (``frozenset`` of strings such as ``"fma4"``).
        A processor that does not advertise them rejects the instruction.
    memory:
        ``True`` for loads/stores (they also occupy the cache hierarchy).
    """

    mnemonic: str
    iclass: IClass
    unit: Unit
    latency: int
    issue_interval: int
    energy_pj: float
    num_sources: int
    has_dest: bool
    operand_class: RegClass | None
    path_sensitivity: float = 1.0
    extensions: frozenset[str] = field(default_factory=frozenset)
    memory: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1 and self.unit is not Unit.NONE:
            raise IsaError(f"{self.mnemonic}: latency must be >= 1")
        if self.issue_interval < 1 and self.unit is not Unit.NONE:
            raise IsaError(f"{self.mnemonic}: issue_interval must be >= 1")
        if self.energy_pj < 0:
            raise IsaError(f"{self.mnemonic}: energy must be non-negative")
        if self.num_sources < 0:
            raise IsaError(f"{self.mnemonic}: num_sources must be >= 0")

    @property
    def is_fp(self) -> bool:
        """True when the op executes on the shared floating-point unit."""
        return self.unit is Unit.FPU or self.unit is Unit.FSIMD

    def __str__(self) -> str:
        return self.mnemonic


def _spec(
    mnemonic: str,
    iclass: IClass,
    unit: Unit,
    latency: int,
    issue_interval: int,
    energy_pj: float,
    num_sources: int,
    has_dest: bool,
    operand_class: RegClass | None,
    *,
    path_sensitivity: float = 1.0,
    extensions: frozenset[str] = frozenset(),
    memory: bool = False,
) -> OpcodeSpec:
    return OpcodeSpec(
        mnemonic=mnemonic,
        iclass=iclass,
        unit=unit,
        latency=latency,
        issue_interval=issue_interval,
        energy_pj=energy_pj,
        num_sources=num_sources,
        has_dest=has_dest,
        operand_class=operand_class,
        path_sensitivity=path_sensitivity,
        extensions=extensions,
        memory=memory,
    )


#: The default opcode table.  Mnemonics are real x86/SSE/FMA4 instructions;
#: latencies approximate the AMD 15h ("Bulldozer") family optimisation guide.
DEFAULT_OPCODES: tuple[OpcodeSpec, ...] = (
    _spec("nop", IClass.NOP, Unit.NONE, 1, 1, 25.0, 0, False, None),
    # Integer ALU.
    _spec("add", IClass.INT_ALU, Unit.IALU, 1, 1, 100.0, 2, True, RegClass.GPR),
    _spec("sub", IClass.INT_ALU, Unit.IALU, 1, 1, 100.0, 2, True, RegClass.GPR),
    _spec("xor", IClass.INT_ALU, Unit.IALU, 1, 1, 85.0, 2, True, RegClass.GPR),
    _spec("and", IClass.INT_ALU, Unit.IALU, 1, 1, 85.0, 2, True, RegClass.GPR),
    _spec("or", IClass.INT_ALU, Unit.IALU, 1, 1, 85.0, 2, True, RegClass.GPR),
    _spec("rol", IClass.INT_ALU, Unit.IALU, 1, 1, 110.0, 1, True, RegClass.GPR),
    _spec("mov", IClass.MOV, Unit.IALU, 1, 1, 60.0, 1, True, RegClass.GPR),
    _spec("lea", IClass.LEA, Unit.AGU, 1, 1, 95.0, 1, True, RegClass.GPR,
          path_sensitivity=1.01),
    # Integer multiply / divide exercise long carry-chain paths (sensitive).
    _spec("imul", IClass.INT_MUL, Unit.IMUL, 4, 1, 260.0, 2, True, RegClass.GPR,
          path_sensitivity=1.03),
    _spec("idiv", IClass.INT_DIV, Unit.IMUL, 22, 18, 420.0, 2, True, RegClass.GPR,
          path_sensitivity=1.025),
    # Memory: L1-hitting load and store (the power virus working set fits L1).
    _spec("load", IClass.LOAD, Unit.AGU, 4, 1, 210.0, 1, True, RegClass.GPR,
          path_sensitivity=1.025, memory=True),
    _spec("store", IClass.STORE, Unit.AGU, 1, 1, 190.0, 2, False, RegClass.GPR,
          memory=True),
    # SIMD integer (runs on the shared FP unit on Bulldozer).
    _spec("pxor", IClass.SIMD_INT, Unit.FSIMD, 2, 1, 220.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse2"})),
    _spec("paddd", IClass.SIMD_INT, Unit.FSIMD, 2, 1, 270.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse2"})),
    _spec("pmulld", IClass.SIMD_INT, Unit.FSIMD, 5, 1, 470.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse41"})),
    # Packed floating point.
    _spec("addps", IClass.FP_ADD, Unit.FPU, 5, 1, 380.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse"})),
    _spec("addpd", IClass.FP_ADD, Unit.FPU, 5, 1, 400.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse2"})),
    _spec("mulps", IClass.FP_MUL, Unit.FPU, 5, 1, 520.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse"})),
    _spec("mulpd", IClass.FP_MUL, Unit.FPU, 5, 1, 560.0, 2, True, RegClass.XMM,
          extensions=frozenset({"sse2"})),
    _spec("divpd", IClass.FP_DIV, Unit.FPU, 24, 20, 730.0, 2, True, RegClass.XMM,
          path_sensitivity=1.02, extensions=frozenset({"sse2"})),
    # Fused multiply-add: the highest-power op; Bulldozer-only (FMA4).
    _spec("vfmaddpd", IClass.FMA, Unit.FPU, 6, 1, 800.0, 3, True, RegClass.XMM,
          extensions=frozenset({"fma4"})),
    _spec("vfmaddps", IClass.FMA, Unit.FPU, 6, 1, 760.0, 3, True, RegClass.XMM,
          extensions=frozenset({"fma4"})),
)


class OpcodeTable:
    """Lookup and filtering over a set of :class:`OpcodeSpec`.

    AUDIT takes "the instructions used to generate the stressmark" as an
    input (paper Fig. 5); an ``OpcodeTable`` is that input.  ``subset`` and
    ``supported_on`` derive restricted vocabularies, e.g. the integer-only
    pool or the pool legal on a Phenom II (no FMA4).
    """

    def __init__(self, specs: tuple[OpcodeSpec, ...] | list[OpcodeSpec] = DEFAULT_OPCODES):
        specs = tuple(specs)
        if not specs:
            raise IsaError("opcode table may not be empty")
        names = [s.mnemonic for s in specs]
        if len(set(names)) != len(names):
            raise IsaError("duplicate mnemonics in opcode table")
        self._specs = specs
        self._by_name = {s.mnemonic: s for s in specs}

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._by_name

    def get(self, mnemonic: str) -> OpcodeSpec:
        """Return the spec for *mnemonic*, raising :class:`IsaError` if absent."""
        try:
            return self._by_name[mnemonic]
        except KeyError:
            raise IsaError(f"unknown opcode: {mnemonic!r}") from None

    @property
    def mnemonics(self) -> tuple[str, ...]:
        """All mnemonics in table order."""
        return tuple(s.mnemonic for s in self._specs)

    def subset(self, mnemonics) -> "OpcodeTable":
        """Return a new table containing only *mnemonics* (order preserved)."""
        wanted = set(mnemonics)
        missing = wanted - set(self._by_name)
        if missing:
            raise IsaError(f"unknown opcodes: {sorted(missing)}")
        return OpcodeTable(tuple(s for s in self._specs if s.mnemonic in wanted))

    def supported_on(self, extensions) -> "OpcodeTable":
        """Return the sub-table whose extension requirements are met.

        *extensions* is the set of ISA extensions a processor advertises
        (e.g. ``{"sse", "sse2"}`` for a Phenom II).
        """
        available = set(extensions)
        kept = tuple(s for s in self._specs if s.extensions <= available)
        return OpcodeTable(kept)

    def by_unit(self, unit: Unit) -> tuple[OpcodeSpec, ...]:
        """All opcodes executing on *unit*."""
        return tuple(s for s in self._specs if s.unit is unit)

    def by_class(self, iclass: IClass) -> tuple[OpcodeSpec, ...]:
        """All opcodes of class *iclass*."""
        return tuple(s for s in self._specs if s.iclass is iclass)

    @property
    def nop(self) -> OpcodeSpec:
        """The NOP spec (every table must contain one)."""
        for s in self._specs:
            if s.iclass is IClass.NOP:
                return s
        raise IsaError("opcode table has no NOP")


def default_table() -> OpcodeTable:
    """The full default opcode vocabulary."""
    return OpcodeTable(DEFAULT_OPCODES)
