"""Loop kernels: the unit of work AUDIT generates and measures.

A di/dt stressmark (paper Fig. 7) is a loop whose body has a **high-power
region** (H cycles of dense, energetic instructions) followed by a
**low-power region** (L cycles — NOPs on the evaluated processor, see paper
Section III.C).  The loop repeats for M iterations so the periodic current
excites the PDN resonance.

The HP region is structured as S replicated **sub-blocks** of K cycles each
(hierarchical generation, Section III.C): AUDIT's GA only searches the
sub-block, shrinking the solution space.

This module holds the data model only; scheduling (how many cycles the body
*actually* takes on a given machine) lives in :mod:`repro.uarch`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import IsaError
from repro.isa.instruction import Instruction, nop
from repro.isa.opcodes import OpcodeSpec


@dataclass(frozen=True)
class LoopKernel:
    """A loop body: HP instructions followed by LP instructions.

    ``hp`` and ``lp`` are in program order.  The loop-closing ``dec rcx;
    jnz`` pair is implicit: the machine model appends it (macro-fused, one
    slot) unless told otherwise.
    """

    hp: tuple[Instruction, ...]
    lp: tuple[Instruction, ...]
    name: str = "kernel"

    def __post_init__(self) -> None:
        if not self.hp and not self.lp:
            raise IsaError("a loop kernel needs at least one instruction")

    @property
    def body(self) -> tuple[Instruction, ...]:
        """HP followed by LP instructions."""
        return self.hp + self.lp

    def __len__(self) -> int:
        return len(self.hp) + len(self.lp)

    @property
    def fp_fraction(self) -> float:
        """Fraction of body instructions executing on the FP unit."""
        body = self.body
        if not body:
            return 0.0
        return sum(1 for i in body if i.spec.is_fp) / len(body)

    @property
    def nop_fraction(self) -> float:
        """Fraction of body instructions that are NOPs."""
        body = self.body
        return sum(1 for i in body if i.is_nop) / len(body)

    def mnemonic_histogram(self) -> Counter:
        """Counter of mnemonics over the whole body."""
        return Counter(i.spec.mnemonic for i in self.body)

    def with_name(self, name: str) -> "LoopKernel":
        """Copy of this kernel under a different name."""
        return LoopKernel(hp=self.hp, lp=self.lp, name=name)

    def with_lp(self, lp: tuple[Instruction, ...]) -> "LoopKernel":
        """Copy of this kernel with a replaced low-power region."""
        return LoopKernel(hp=self.hp, lp=lp, name=self.name)


def replicate_subblock(sub: tuple[Instruction, ...] | list[Instruction], count: int) -> tuple[Instruction, ...]:
    """Replicate a sub-block *count* times to form an HP region.

    Mirrors paper Section III.C: "AUDIT breaks the HP region into S
    replicated sub-blocks of length K".
    """
    if count < 1:
        raise IsaError("sub-block replication count must be >= 1")
    sub = tuple(sub)
    if not sub:
        raise IsaError("sub-block may not be empty")
    return sub * count


def nop_region(nop_spec: OpcodeSpec, count: int) -> tuple[Instruction, ...]:
    """A run of *count* NOPs (the LP region used throughout the paper)."""
    if count < 0:
        raise IsaError("NOP count must be non-negative")
    return tuple(nop(nop_spec) for _ in range(count))


def build_kernel(
    subblock: tuple[Instruction, ...] | list[Instruction],
    *,
    replications: int,
    lp_nops: int,
    nop_spec: OpcodeSpec,
    name: str = "kernel",
) -> LoopKernel:
    """Assemble the canonical hierarchical stressmark kernel.

    HP = *subblock* replicated *replications* times; LP = *lp_nops* NOPs.
    """
    hp = replicate_subblock(subblock, replications)
    lp = nop_region(nop_spec, lp_nops)
    return LoopKernel(hp=hp, lp=lp, name=name)


def with_data_pattern(kernel: LoopKernel, pattern) -> LoopKernel:
    """Copy of *kernel* with every instruction's operand data re-tagged.

    Used to reproduce the paper's Section III observation that operand data
    values change the measured droop by ~10 %: the same instruction stream
    measured with max-toggle versus all-zeros operands.
    """
    from dataclasses import replace as _replace

    hp = tuple(_replace(inst, data=pattern) for inst in kernel.hp)
    lp = tuple(_replace(inst, data=pattern) for inst in kernel.lp)
    return LoopKernel(hp=hp, lp=lp, name=kernel.name)


@dataclass(frozen=True)
class ThreadProgram:
    """A kernel bound to an iteration count, ready to run on one thread.

    ``iterations`` is M in the paper's notation: the number of loop periods
    executed, chosen large enough to build and sustain resonance.
    ``phase_cycles`` is an initial misalignment relative to the reference
    core, used by the dithering machinery and the OS-interference model.
    """

    kernel: LoopKernel
    iterations: int
    phase_cycles: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise IsaError("iterations must be >= 1")
        if self.phase_cycles < 0:
            raise IsaError("phase_cycles must be non-negative")

    def with_phase(self, phase_cycles: int) -> "ThreadProgram":
        """Copy of this program starting at a different phase offset."""
        return ThreadProgram(self.kernel, self.iterations, phase_cycles)
