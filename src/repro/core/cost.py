"""Cost functions for AUDIT's GA.

Paper Section III (footnote 1): "The cost function provided to AUDIT can
vary.  Although we focus on maximizing voltage droops in this paper, other,
more complex cost functions such as maximizing the droop while minimizing
the average power or maximizing the droop while exercising sensitive paths
in the microarchitecture are also feasible and easy to implement."

All three are implemented here.  A cost function maps a platform
:class:`~repro.core.platform.Measurement` to a scalar where **higher is
better** (the GA maximises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError
from repro.core.platform import Measurement


class MaxDroopCost:
    """The paper's primary cost: the measured maximum voltage droop."""

    def evaluate(self, measurement: Measurement) -> float:
        return measurement.max_droop_v

    def __repr__(self) -> str:
        return "MaxDroopCost()"


@dataclass(frozen=True)
class DroopPerPowerCost:
    """Maximise droop while minimising average power.

    ``cost = droop - power_weight * mean_power`` — finds stressmarks that
    stress the PDN without simply being power viruses.
    """

    power_weight_v_per_w: float = 1e-4

    def __post_init__(self) -> None:
        if self.power_weight_v_per_w < 0:
            raise SearchError("power_weight must be non-negative")

    def evaluate(self, measurement: Measurement) -> float:
        return (
            measurement.max_droop_v
            - self.power_weight_v_per_w * measurement.mean_power_w
        )


@dataclass(frozen=True)
class SensitivePathCost:
    """Maximise droop while rewarding sensitive-path coverage.

    ``cost = droop + sensitivity_weight * (max_sensitivity - 1)`` — steers
    the GA toward instructions whose circuit paths fail at higher voltages
    (the SM2 lesson of paper Section V.A.4).
    """

    sensitivity_weight_v: float = 0.5

    def __post_init__(self) -> None:
        if self.sensitivity_weight_v < 0:
            raise SearchError("sensitivity_weight must be non-negative")

    def evaluate(self, measurement: Measurement) -> float:
        peak_sensitivity = float(measurement.sensitivity.max()) if len(
            measurement.sensitivity
        ) else 0.0
        bonus = max(0.0, peak_sensitivity - 1.0)
        return measurement.max_droop_v + self.sensitivity_weight_v * bonus
