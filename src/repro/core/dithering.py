"""The dithering algorithm: guaranteed worst-case thread alignment.

Paper Section III.B.  A periodic stressmark of period L+H cycles running on
C cores has a (L+H)^(C-1)-point alignment space (core 0 is the reference).
Relying on the OS to stumble into the worst alignment (natural dithering)
is not dependable, so AUDIT sweeps the space deterministically: core c pads
one cycle of NOPs every M*(L+H)^(c-1) cycles, walking every alignment for at
least M cycles each; the exact sweep costs M*(L+H)^(C-1) cycles.

For many cores that is prohibitive (the paper's example: 18.35 minutes for
8 cores), so the **approximate** variant quantises alignment to a mismatch
tolerance of δ cycles: core c pads (δ+1) cycles every M*k^(c-1) cycles with
k=(L+H)/(δ+1), shrinking the sweep to M*k^(C-1) cycles (67 ms in the same
example).

This module provides the cost model, the padding schedules, and sweep
evaluation over measured periodic voltage responses.  For identical
periodic waveforms the fully aligned point is provably the worst case
(min-of-sum >= sum-of-mins, with equality at alignment), which the
exhaustive sweep test verifies — and which lets the measurement platform
use the aligned configuration as the dithering result directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import SearchError


def _validated(cores: int, period_cycles: int, m_cycles: int, delta: int) -> int:
    if cores < 1:
        raise SearchError("cores must be >= 1")
    if period_cycles < 1:
        raise SearchError("period must be >= 1 cycle")
    if m_cycles < 1:
        raise SearchError("M (resonance build/sustain cycles) must be >= 1")
    if delta < 0:
        raise SearchError("delta must be >= 0")
    if delta > 0 and period_cycles % (delta + 1) != 0:
        raise SearchError(
            "the approximate algorithm requires (L+H) to be a multiple of "
            f"(delta+1); got period {period_cycles} with delta {delta}"
        )
    return period_cycles // (delta + 1)


def alignment_sweep_cycles(
    *,
    cores: int,
    period_cycles: int,
    m_cycles: int,
    delta: int = 0,
) -> int:
    """Cycles to traverse the whole alignment space.

    ``delta=0`` is the exact algorithm: M*(L+H)^(C-1).  ``delta>0`` is the
    approximate one: M*((L+H)/(δ+1))^(C-1).
    """
    k = _validated(cores, period_cycles, m_cycles, delta)
    return m_cycles * k ** (cores - 1)


def alignment_sweep_seconds(
    *,
    cores: int,
    period_cycles: int,
    m_cycles: int,
    frequency_hz: float,
    delta: int = 0,
) -> float:
    """Wall-clock time of the alignment sweep at *frequency_hz*."""
    if frequency_hz <= 0:
        raise SearchError("frequency must be positive")
    cycles = alignment_sweep_cycles(
        cores=cores, period_cycles=period_cycles, m_cycles=m_cycles, delta=delta
    )
    return cycles / frequency_hz


@dataclass(frozen=True)
class DitherSchedule:
    """NOP-padding schedule for one core.

    Core *core_index* inserts ``pad_cycles`` cycles of NOPs every
    ``interval_cycles`` cycles; core 0 never pads (the reference).
    """

    core_index: int
    pad_cycles: int
    interval_cycles: int

    def phase_at(self, cycle: int, period_cycles: int) -> int:
        """This core's accumulated misalignment at absolute *cycle*."""
        if self.interval_cycles == 0:
            return 0
        pads = cycle // self.interval_cycles
        return (pads * self.pad_cycles) % period_cycles


def dither_schedules(
    *,
    cores: int,
    period_cycles: int,
    m_cycles: int,
    delta: int = 0,
) -> list[DitherSchedule]:
    """Padding schedules for all cores (paper Section III.B procedure).

    Core 0: no padding.  Core c >= 1: (δ+1) cycles of NOP padding every
    M*k^(c-1) cycles, k = (L+H)/(δ+1).
    """
    k = _validated(cores, period_cycles, m_cycles, delta)
    schedules = [DitherSchedule(core_index=0, pad_cycles=0, interval_cycles=0)]
    for c in range(1, cores):
        schedules.append(
            DitherSchedule(
                core_index=c,
                pad_cycles=delta + 1,
                interval_cycles=m_cycles * k ** (c - 1),
            )
        )
    return schedules


def visited_alignments(
    schedules: list[DitherSchedule],
    *,
    period_cycles: int,
    total_cycles: int,
    sample_every: int,
) -> set[tuple[int, ...]]:
    """Alignment vectors the schedule passes through (for verification).

    Samples the accumulated phases every *sample_every* cycles over
    *total_cycles* and returns the set of visited (x_1 … x_{C-1}) vectors.
    """
    if sample_every < 1:
        raise SearchError("sample_every must be >= 1")
    seen: set[tuple[int, ...]] = set()
    for cycle in range(0, total_cycles, sample_every):
        seen.add(
            tuple(
                s.phase_at(cycle, period_cycles)
                for s in schedules
                if s.core_index > 0
            )
        )
    return seen


def encode_dithered_program(
    program,
    schedule: DitherSchedule,
    *,
    name: str = "dithered",
    outer_iterations: int = 64,
    decode_width: int = 4,
) -> str:
    """Emit NASM for one core of the dithering run.

    The inner loop executes the stressmark for ``M`` iterations (the
    schedule's interval worth of work); after each inner run the core pads
    ``pad_cycles`` cycles of NOPs, advancing its alignment by one step —
    the literal Section III.B procedure.  Core 0 (``pad_cycles == 0``)
    reduces to the plain stressmark loop.

    The outer counter lives in memory (``[rsp - 128]``) because every
    scratch register is owned by the kernel or the inner loop counter.
    """
    from repro.isa.encoder import encode_program
    from repro.isa.kernels import ThreadProgram

    if schedule.pad_cycles == 0:
        return encode_program(program, name=name)
    if outer_iterations < 1:
        raise SearchError("outer_iterations must be >= 1")

    body_len = len(program.kernel.body) + 1  # + loop close
    inner_iterations = max(1, schedule.interval_cycles // max(1, body_len))
    inner = ThreadProgram(program.kernel, inner_iterations)
    base = encode_program(inner, name=name)

    # Wrap the emitted inner loop in the padding outer loop.
    lines = base.splitlines()
    loop_start = next(i for i, l in enumerate(lines)
                      if l.strip().startswith("mov rcx,"))
    end = next(i for i, l in enumerate(lines) if l.strip() == "; exit(0)")
    head, inner_body, tail = lines[:loop_start], lines[loop_start:end], lines[end:]

    padded = head[:]
    padded.append(f"    mov qword [rsp - 128], {outer_iterations}")
    padded.append(f"{name}_outer:")
    padded.extend(inner_body)
    padded.append(f"    ; --- dither padding: {schedule.pad_cycles} cycle(s) ---")
    padded.extend("    nop" for _ in range(schedule.pad_cycles * decode_width))
    padded.append("    dec qword [rsp - 128]")
    padded.append(f"    jnz {name}_outer")
    padded.extend(tail)
    return "\n".join(padded) + ("\n" if not padded[-1].endswith("\n") else "")


def droop_for_alignment(
    response_v: np.ndarray,
    offsets: tuple[int, ...] | list[int],
    *,
    vdd: float,
) -> float:
    """Droop (positive volts) of C identical periodic voltage responses.

    *response_v* is the steady-state voltage waveform one core's periodic
    activity produces (one period, in volts); the supply deviation of C
    superposed cores at circular offsets ``(0, x_1, …, x_{C-1})`` adds
    linearly, so the combined waveform is the sum of rolls.
    """
    response = np.asarray(response_v, dtype=np.float64)
    deviation = response - vdd
    total = deviation.copy()
    for offset in offsets:
        total += np.roll(deviation, offset)
    return float(max(0.0, -(total.min())))


def worst_case_alignment(
    response_v: np.ndarray,
    *,
    cores: int,
    vdd: float,
    delta: int = 0,
) -> tuple[tuple[int, ...], float]:
    """Exhaustively sweep the (quantised) alignment space for the worst droop.

    This is the software analogue of physically running the dithering
    sweep and keeping the scope's worst capture.  Exponential in core
    count — use only for small cores/periods (exactly the regime where the
    paper uses the exact algorithm).
    """
    response = np.asarray(response_v, dtype=np.float64)
    period = len(response)
    _validated(cores, period, 1, delta)
    step = delta + 1
    grid = range(0, period, step)
    worst_offsets: tuple[int, ...] = tuple([0] * (cores - 1))
    worst_droop = -1.0
    for offsets in itertools.product(grid, repeat=cores - 1):
        droop = droop_for_alignment(response, offsets, vdd=vdd)
        if droop > worst_droop:
            worst_droop = droop
            worst_offsets = offsets
    return worst_offsets, worst_droop
