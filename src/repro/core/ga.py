"""Generic genetic-algorithm engine.

The GA of paper Fig. 5: a population of candidates is evaluated by a cost
function (measured droop), and survivors are refined by tournament
selection, uniform crossover, and mutation until the exit condition — a
generation budget or droop stagnation ("the maximum voltage droop produced
by AUDIT does not increase for several generations") — is met.

The engine is genome-agnostic: callers provide ``random_fn``/``mutate_fn``/
``crossover_fn`` plus either a plain fitness callable (higher is better) or
a **batch evaluator** — anything with ``evaluate_many(genomes) ->
list[float]`` and an ``evaluations`` counter, such as
:class:`repro.core.engine.EvaluationEngine`.  Each generation is scored as
one batch, so a parallel evaluator overlaps the population's independent
measurements; fitness values are memoised by genome either way, because on
the paper's testbed every evaluation is a multi-second hardware measurement
and here it is a pipeline + PDN simulation.

Determinism: scoring a population in batch order evaluates exactly the same
genomes to exactly the same values as the previous one-at-a-time loop, so
fixed seeds keep producing identical :class:`GaResult`s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Sequence, TypeVar

import numpy as np

from repro.core.telemetry import GenerationEvent, RunObserver, notify
from repro.errors import CampaignInterrupted, SearchError
from repro.obs.spans import span

G = TypeVar("G", bound=Hashable)


@dataclass(frozen=True)
class GaConfig:
    """GA hyper-parameters and exit conditions."""

    population_size: int = 24
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.08
    elite_count: int = 2
    stagnation_patience: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise SearchError("population_size must be >= 2")
        if self.generations < 1:
            raise SearchError("generations must be >= 1")
        if not 2 <= self.tournament_size <= self.population_size:
            raise SearchError("tournament_size must be in [2, population_size]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise SearchError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise SearchError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elite_count < self.population_size:
            raise SearchError("elite_count must be in [0, population_size)")
        if self.stagnation_patience < 1:
            raise SearchError("stagnation_patience must be >= 1")


@dataclass(frozen=True)
class GenerationStats:
    """Progress record for one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations_so_far: int


@dataclass(frozen=True)
class GaResult(Generic[G]):
    """Outcome of one GA run."""

    best_genome: G
    best_fitness: float
    history: tuple[GenerationStats, ...]
    evaluations: int
    stopped_early: bool


@dataclass(frozen=True)
class GaSnapshot(Generic[G]):
    """Everything needed to continue a run from a generation boundary.

    Captured at the *top* of each generation, before that generation is
    scored: the population about to be evaluated, the full RNG state, and
    the search bookkeeping.  Restoring a snapshot and re-running replays
    the remaining generations exactly — a crash mid-generation re-scores
    that generation from scratch (cache-served for anything already
    measured) and lands on the identical :class:`GaResult`.
    """

    generation: int
    population: tuple[G, ...]
    rng_state: dict
    best_genome: G
    best_fitness: float
    stale: int
    history: tuple[GenerationStats, ...]
    evaluations: int


class _MemoisedFitness(Generic[G]):
    """Adapts a plain fitness callable to the batch-evaluator protocol."""

    def __init__(self, fn: Callable[[G], float]):
        self._fn = fn
        self._cache: dict[G, float] = {}
        self.evaluations = 0

    def evaluate_many(self, genomes: Sequence[G]) -> list[float]:
        out = []
        for genome in genomes:
            value = self._cache.get(genome)
            if value is None:
                value = float(self._fn(genome))
                self._cache[genome] = value
                self.evaluations += 1
            out.append(value)
        return out


class GeneticAlgorithm(Generic[G]):
    """Tournament-selection GA with elitism and fitness memoisation."""

    def __init__(
        self,
        *,
        random_fn: Callable[[np.random.Generator], G],
        mutate_fn: Callable[[G, np.random.Generator, float], G],
        crossover_fn: Callable[[G, G, np.random.Generator], G],
        fitness_fn,
        config: GaConfig,
        observers: Sequence[RunObserver] = (),
    ):
        self._random_fn = random_fn
        self._mutate_fn = mutate_fn
        self._crossover_fn = crossover_fn
        if hasattr(fitness_fn, "evaluate_many"):
            self._evaluator = fitness_fn
        else:
            self._evaluator = _MemoisedFitness(fitness_fn)
        self.config = config
        self.observers = tuple(observers)
        self._scores: dict[G, float] = {}

    # ------------------------------------------------------------------
    def _score_population(self, population: list[G]) -> list[float]:
        """Score a whole generation as one batch (the evaluator dedupes)."""
        scores = [float(s) for s in self._evaluator.evaluate_many(population)]
        for genome, score in zip(population, scores):
            self._scores[genome] = score
        return scores

    def _fitness(self, genome: G) -> float:
        value = self._scores.get(genome)
        if value is None:
            value = float(self._evaluator.evaluate_many([genome])[0])
            self._scores[genome] = value
        return value

    def _tournament(self, population: list[G], rng: np.random.Generator) -> G:
        indices = rng.integers(0, len(population), size=self.config.tournament_size)
        best = max((population[int(i)] for i in indices), key=self._fitness)
        return best

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        seeds: list[G] | None = None,
        resume: GaSnapshot[G] | None = None,
        checkpoint_fn: Callable[[GaSnapshot[G]], None] | None = None,
        stop_fn: Callable[[], str | None] | None = None,
    ) -> GaResult[G]:
        """Run to the generation budget or until droop stagnates.

        ``seeds`` pre-populate the initial generation (paper Fig. 5's
        "Initial Seed Entries" — existing benchmarks or stressmarks that
        speed up convergence).

        ``checkpoint_fn`` is called with a :class:`GaSnapshot` at the top
        of every generation (before it is scored); ``resume`` restores one
        such snapshot and continues from that generation, reproducing the
        uninterrupted run exactly as long as the evaluator is deterministic.

        ``stop_fn`` is polled at each generation boundary, *after* that
        boundary's checkpoint has landed; a non-``None`` reason (SIGTERM,
        wall-clock budget — see
        :class:`~repro.supervision.ShutdownCoordinator`) raises
        :class:`~repro.errors.CampaignInterrupted`, leaving the freshly
        written checkpoint as the resume point.  The in-flight generation
        is therefore always *finished* before a graceful stop.
        """
        cfg = self.config
        if resume is not None:
            # The state dict names its own bit generator; rebuild the same
            # kind so the stream continues bit-exactly.
            bit_generator_name = resume.rng_state.get("bit_generator", "PCG64")
            rng = np.random.Generator(getattr(np.random, bit_generator_name)())
            rng.bit_generator.state = resume.rng_state
            population = list(resume.population)
            history = list(resume.history)
            best_genome = resume.best_genome
            best_fitness = resume.best_fitness
            stale = resume.stale
            start_generation = resume.generation
            if len(population) != cfg.population_size:
                raise SearchError(
                    f"snapshot population has {len(population)} genomes, "
                    f"config wants {cfg.population_size}"
                )
        else:
            rng = np.random.default_rng(cfg.seed)
            population = list(seeds or [])[: cfg.population_size]
            while len(population) < cfg.population_size:
                population.append(self._random_fn(rng))
            history = []
            with span("ga.init-population", population=len(population)):
                self._score_population(population)
            # Python max (not np.argmax): NaN fitness must never win
            # selection.
            best_genome = max(population, key=self._fitness)
            best_fitness = self._fitness(best_genome)
            stale = 0
            start_generation = 0
        stopped_early = False

        for generation in range(start_generation, cfg.generations):
            if checkpoint_fn is not None:
                checkpoint_fn(GaSnapshot(
                    generation=generation,
                    population=tuple(population),
                    rng_state=rng.bit_generator.state,
                    best_genome=best_genome,
                    best_fitness=best_fitness,
                    stale=stale,
                    history=tuple(history),
                    evaluations=self._evaluator.evaluations,
                ))
            if stop_fn is not None:
                reason = stop_fn()
                if reason:
                    raise CampaignInterrupted(reason, generation=generation)
            gen_start = time.perf_counter()
            evals_before = self._evaluator.evaluations
            with span("ga.generation", generation=generation,
                      population=len(population)):
                scores = self._score_population(population)
            gen_best = max(scores)
            if gen_best > best_fitness + 1e-12:
                best_fitness = gen_best
                best_genome = population[int(np.argmax(scores))]
                stale = 0
            else:
                stale += 1
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=best_fitness,
                    mean_fitness=float(np.mean(scores)),
                    evaluations_so_far=self._evaluator.evaluations,
                )
            )
            notify(
                self.observers,
                GenerationEvent(
                    generation=generation,
                    best_fitness=best_fitness,
                    mean_fitness=float(np.mean(scores)),
                    evaluations_so_far=self._evaluator.evaluations,
                    batch_size=len(population),
                    batch_new=self._evaluator.evaluations - evals_before,
                    wall_s=time.perf_counter() - gen_start,
                ),
            )
            if stale >= cfg.stagnation_patience:
                stopped_early = True
                break

            # Breed the next generation.
            elites = sorted(population, key=self._fitness, reverse=True)
            next_population: list[G] = elites[: cfg.elite_count]
            while len(next_population) < cfg.population_size:
                parent_a = self._tournament(population, rng)
                if rng.random() < cfg.crossover_rate:
                    parent_b = self._tournament(population, rng)
                    child = self._crossover_fn(parent_a, parent_b, rng)
                else:
                    child = parent_a
                child = self._mutate_fn(child, rng, cfg.mutation_rate)
                next_population.append(child)
            population = next_population

        return GaResult(
            best_genome=best_genome,
            best_fitness=best_fitness,
            history=tuple(history),
            evaluations=self._evaluator.evaluations,
            stopped_early=stopped_early,
        )
