"""Stressmark genome: what AUDIT's GA actually searches.

Following the paper's hierarchical generation (Section III.C), a candidate
stressmark is:

* a **sub-block** of instruction slots (K cycles × machine issue width),
  each slot holding one mnemonic from the opcode pool (NOP included — the
  GA is free to sprinkle NOPs into the high-power region, and on the
  evaluated machine that is precisely what wins, Section V.A.5);
* a replication count S (fixed per search, not evolved): the HP region is
  the sub-block repeated S times;
* the **LP-region length** in NOPs, evolved so the loop period lands on the
  PDN resonance.

Genomes are immutable and hashable so fitness results can be memoised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SearchError
from repro.isa.opcodes import OpcodeTable


@dataclass(frozen=True)
class StressmarkGenome:
    """One candidate stressmark (sub-block mnemonics + LP length)."""

    subblock: tuple[str, ...]
    lp_nops: int

    def __post_init__(self) -> None:
        if not self.subblock:
            raise SearchError("genome needs at least one sub-block slot")
        if self.lp_nops < 0:
            raise SearchError("lp_nops must be non-negative")


@dataclass(frozen=True)
class GenomeSpace:
    """The search space: opcode pool, sub-block shape, LP bounds.

    ``slots`` is K × issue-width; ``replications`` is S.  The genetic
    operators (random / mutate / crossover) all live here so the GA engine
    can stay genome-agnostic.
    """

    table: OpcodeTable
    slots: int
    replications: int
    lp_nops_min: int
    lp_nops_max: int

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise SearchError("slots must be >= 1")
        if self.replications < 1:
            raise SearchError("replications must be >= 1")
        if not 0 <= self.lp_nops_min <= self.lp_nops_max:
            raise SearchError("need 0 <= lp_nops_min <= lp_nops_max")
        if len(self.table) == 0:
            raise SearchError("opcode pool is empty")

    @property
    def pool(self) -> tuple[str, ...]:
        return self.table.mnemonics

    def validate(self, genome: StressmarkGenome) -> None:
        """Raise unless *genome* belongs to this space."""
        if len(genome.subblock) != self.slots:
            raise SearchError(
                f"genome has {len(genome.subblock)} slots, space wants {self.slots}"
            )
        unknown = set(genome.subblock) - set(self.pool)
        if unknown:
            raise SearchError(f"genome uses opcodes outside the pool: {sorted(unknown)}")
        if not self.lp_nops_min <= genome.lp_nops <= self.lp_nops_max:
            raise SearchError("genome lp_nops outside the space bounds")

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------
    def random_genome(self, rng: np.random.Generator) -> StressmarkGenome:
        """A uniformly random genome (the GA's initial population)."""
        subblock = tuple(
            self.pool[int(i)]
            for i in rng.integers(0, len(self.pool), size=self.slots)
        )
        lp = int(rng.integers(self.lp_nops_min, self.lp_nops_max + 1))
        return StressmarkGenome(subblock=subblock, lp_nops=lp)

    def mutate(
        self,
        genome: StressmarkGenome,
        rng: np.random.Generator,
        *,
        rate: float = 0.08,
    ) -> StressmarkGenome:
        """Per-slot mutation plus a random walk on the LP length."""
        if not 0.0 <= rate <= 1.0:
            raise SearchError("mutation rate must be in [0, 1]")
        slots = list(genome.subblock)
        for i in range(len(slots)):
            if rng.random() < rate:
                slots[i] = self.pool[int(rng.integers(0, len(self.pool)))]
        lp = genome.lp_nops
        if rng.random() < rate * 4:
            span = max(1, (self.lp_nops_max - self.lp_nops_min) // 8)
            lp = int(np.clip(
                lp + rng.integers(-span, span + 1),
                self.lp_nops_min,
                self.lp_nops_max,
            ))
        return StressmarkGenome(subblock=tuple(slots), lp_nops=lp)

    def crossover(
        self,
        a: StressmarkGenome,
        b: StressmarkGenome,
        rng: np.random.Generator,
    ) -> StressmarkGenome:
        """Uniform crossover of slots; LP length from a random parent."""
        self.validate(a)
        self.validate(b)
        mask = rng.random(self.slots) < 0.5
        slots = tuple(
            a.subblock[i] if mask[i] else b.subblock[i] for i in range(self.slots)
        )
        lp = a.lp_nops if rng.random() < 0.5 else b.lp_nops
        return StressmarkGenome(subblock=slots, lp_nops=lp)
