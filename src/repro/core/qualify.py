"""Stressmark qualification: is a measured droop real, or an artifact?

Paper Section V shows that one droop number is an untrustworthy verdict:
droop magnitude does not predict the failure voltage, OS-tick dithering
shifts alignment between runs, and SMT skew damps expected droops.  A GA
winner tuned to one exact measurement configuration can therefore be a
*measurement artifact* rather than a robust worst-case stressmark.

:class:`StressmarkQualifier` re-measures a candidate under controlled
perturbations along four axes —

* **jitter** — different seeds of the SMT loop-phase random walk,
* **smt** — explicit SMT sibling phase offsets instead of the natural
  half-period misalignment,
* **supply** — a span of supply voltages around nominal,
* **pdn** — ±tolerance scaling of individual PDN R/L/C/ESR parameters
  (component tolerances: the same stressmark on the next board),

— and condenses the per-axis droop distributions into a *robustness*
score (worst-axis droop retention relative to nominal) and a
``PASS`` / ``FRAGILE`` / ``ARTIFACT`` verdict.  All perturbed
re-measurements are batched through the
:class:`~repro.core.engine.EvaluationEngine`, so they run in parallel
under any executor, hit the fitness cache (the nominal point of every
axis is one shared cache entry), and inherit fault-policy retries.  The
whole run is deterministic under ``QualifyConfig.seed`` and resumable
through :class:`QualificationCheckpoint`.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.core.atomicio import atomic_write_json
from repro.core.cost import MaxDroopCost
from repro.core.engine import (
    _WORKER_PLATFORMS,
    EvaluationEngine,
    FitnessExecutor,
    SerialExecutor,
    _as_platform,
)
from repro.core.faults import EvalOutcome, FaultPolicy
from repro.core.platform import MeasurementPlatform, SimulatorBackend
from repro.core.telemetry import (
    MeasurementStatsEvent,
    QualificationEvent,
    RunObserver,
    notify,
)
from repro.errors import CheckpointError, ConfigurationError
from repro.isa.kernels import ThreadProgram
from repro.obs.spans import span
from repro.pipeline.artifacts import MeasureRequest
from repro.pipeline.batch import BatchMeasurementBackend

#: Verdicts, strongest first.
PASS = "PASS"
FRAGILE = "FRAGILE"
ARTIFACT = "ARTIFACT"
VERDICTS = (PASS, FRAGILE, ARTIFACT)

#: PDN stage / field names a perturbation may scale.
PDN_STAGES = ("board", "package", "die")
PDN_FIELDS = ("resistance_ohm", "inductance_h", "capacitance_f", "esr_ohm")


# ----------------------------------------------------------------------
# Perturbations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Perturbation:
    """One controlled deviation from the nominal measurement setup.

    ``axis`` and ``label`` are presentation-only (``compare=False``), so
    two perturbations describing the same *physical* point — e.g. the
    nominal anchor that every axis includes — hash equal and share one
    engine cache entry.
    """

    axis: str = field(default="nominal", compare=False)
    label: str = field(default="nominal", compare=False)
    jitter_seed: int | None = None
    smt_phase_cycles: int | None = None
    supply_v: float | None = None
    pdn_stage: str | None = None
    pdn_field: str | None = None
    pdn_scale: float | None = None

    def __post_init__(self) -> None:
        pdn_knobs = (self.pdn_stage, self.pdn_field, self.pdn_scale)
        if any(k is not None for k in pdn_knobs) and None in pdn_knobs:
            raise ConfigurationError(
                "pdn_stage, pdn_field, and pdn_scale must be set together"
            )
        if self.pdn_stage is not None and self.pdn_stage not in PDN_STAGES:
            raise ConfigurationError(
                f"pdn_stage must be one of {PDN_STAGES}, got {self.pdn_stage!r}"
            )
        if self.pdn_field is not None and self.pdn_field not in PDN_FIELDS:
            raise ConfigurationError(
                f"pdn_field must be one of {PDN_FIELDS}, got {self.pdn_field!r}"
            )
        if self.pdn_scale is not None and self.pdn_scale <= 0:
            raise ConfigurationError("pdn_scale must be positive")
        if self.supply_v is not None and self.supply_v <= 0:
            raise ConfigurationError("supply_v must be positive")


#: The unperturbed measurement (each axis re-uses it as its anchor).
NOMINAL = Perturbation()


def encode_perturbation(perturbation: Perturbation) -> dict:
    return asdict(perturbation)


def decode_perturbation(payload: dict) -> Perturbation:
    return Perturbation(**payload)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualifyConfig:
    """Shape and thresholds of a qualification run.

    Verdict rule (on *robustness* = worst-axis droop retention relative
    to nominal): ``>= pass_retention`` → PASS, ``>= artifact_retention``
    → FRAGILE, below → ARTIFACT.  A nominal droop under ``min_droop_v``
    is ARTIFACT outright — there is no droop to qualify.
    """

    seed: int = 0
    jitter_repeats: int = 4
    smt_offsets: tuple = (0, 2, 5, 9, 13)
    supply_span_v: float = 0.05
    supply_points: int = 5
    pdn_tolerance: float = 0.10
    pdn_stages: tuple = ("die",)
    pdn_fields: tuple = PDN_FIELDS
    pass_retention: float = 0.60
    artifact_retention: float = 0.30
    min_droop_v: float = 1e-6
    max_fallbacks: int = 3

    def __post_init__(self) -> None:
        if self.jitter_repeats < 1:
            raise ConfigurationError("jitter_repeats must be >= 1")
        if self.supply_points < 1:
            raise ConfigurationError("supply_points must be >= 1")
        if not 0.0 < self.supply_span_v:
            raise ConfigurationError("supply_span_v must be positive")
        if not 0.0 < self.pdn_tolerance < 1.0:
            raise ConfigurationError("pdn_tolerance must be in (0, 1)")
        if not 0.0 <= self.artifact_retention <= self.pass_retention <= 1.0:
            raise ConfigurationError(
                "need 0 <= artifact_retention <= pass_retention <= 1"
            )
        for stage in self.pdn_stages:
            if stage not in PDN_STAGES:
                raise ConfigurationError(f"unknown pdn stage {stage!r}")
        for name in self.pdn_fields:
            if name not in PDN_FIELDS:
                raise ConfigurationError(f"unknown pdn field {name!r}")
        if self.max_fallbacks < 0:
            raise ConfigurationError("max_fallbacks must be >= 0")


# ----------------------------------------------------------------------
# Perturbation -> droop, ready for any executor
# ----------------------------------------------------------------------
class QualificationFitness:
    """Measure one program under a :class:`Perturbation`, return its droop.

    The same picklable-callable contract as
    :class:`~repro.core.engine.StressmarkFitness`: in-process calls use
    the live platform, workers rebuild one from ``platform_factory``.
    Supply and SMT knobs are plain ``measure_program`` arguments; jitter
    and PDN knobs need a rebuilt backend, which is cached per physical
    configuration and **shares the base chip simulator** — a PDN
    tolerance sweep re-solves only the network, never the pipeline.
    """

    requires_platform_factory = True

    def __init__(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        cost=None,
        platform: MeasurementPlatform | None = None,
        platform_factory: Callable[[], MeasurementPlatform] | None = None,
    ):
        if platform is None and platform_factory is None:
            raise ConfigurationError(
                "QualificationFitness needs a platform or a platform_factory"
            )
        self.program = program
        self.threads = threads
        self.cost = cost if cost is not None else MaxDroopCost()
        self.platform_factory = platform_factory
        self._platform = platform
        self._perturbed: dict[tuple, MeasurementPlatform] = {}

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_platform"] = None
        state["_perturbed"] = {}
        return state

    def _base_platform(self) -> MeasurementPlatform:
        if self._platform is None:
            key = pickle.dumps(self.platform_factory)
            platform = _WORKER_PLATFORMS.get(key)
            if platform is None:
                platform = _as_platform(self.platform_factory())
                _WORKER_PLATFORMS[key] = platform
            self._platform = platform
        return self._platform

    def _platform_for(self, p: Perturbation) -> MeasurementPlatform:
        key = (p.jitter_seed, p.pdn_stage, p.pdn_field, p.pdn_scale)
        if all(k is None for k in key):
            return self._base_platform()
        platform = self._perturbed.get(key)
        if platform is None:
            base = self._base_platform()
            pdn = base.pdn
            if p.pdn_stage is not None:
                stage = getattr(pdn, p.pdn_stage)
                stage = dataclasses.replace(
                    stage,
                    **{p.pdn_field: getattr(stage, p.pdn_field) * p.pdn_scale},
                )
                pdn = dataclasses.replace(pdn, **{p.pdn_stage: stage})
            # The chip model is untouched by every perturbation axis, so
            # perturbed backends share the base activity stage — module
            # simulator, trace cache, profile cache, and counter ledger: a
            # full PDN sweep costs only PDN re-solves, and the base
            # platform's stats() reports the whole qualification's work.
            backend = SimulatorBackend(
                base.chip,
                pdn,
                warmup_iterations=base.warmup_iterations,
                jitter_seed=(
                    base.jitter_seed if p.jitter_seed is None else p.jitter_seed
                ),
                share_stages_with=base,
            )
            if base.supports_batch_measure:
                backend = BatchMeasurementBackend(backend)
            platform = MeasurementPlatform(backend=backend)
            # Perturbed pipelines narrate to the same observers as the base
            # (stage fallbacks under a perturbation are worth surfacing).
            platform.attach_observers(base.pipeline.observers)
            self._perturbed[key] = platform
        return platform

    def _request_for(self, perturbation: Perturbation) -> MeasureRequest:
        return MeasureRequest(
            program=self.program,
            threads=self.threads,
            supply_v=perturbation.supply_v,
            smt_phase_cycles=perturbation.smt_phase_cycles,
        )

    def __call__(self, perturbation: Perturbation) -> float:
        platform = self._platform_for(perturbation)
        measurement = platform.measure_program(
            self.program,
            self.threads,
            supply_v=perturbation.supply_v,
            smt_phase_cycles=perturbation.smt_phase_cycles,
        )
        return float(self.cost.evaluate(measurement))

    def stats_probe(self):
        """Current platform counters (perturbed backends share the ledger)."""
        platform = self._base_platform()
        stats_fn = getattr(platform, "stats", None)
        return stats_fn() if stats_fn is not None else None

    def evaluate_batch(self, perturbations) -> list[EvalOutcome] | None:
        """Batch perturbation measurements per physical platform.

        Only used when the base platform routes through a batch-capable
        backend; perturbations sharing a platform (one jitter seed, one PDN
        variant, the whole supply/SMT grid) solve as one matrix.  Returns
        ``None`` when batching is unavailable so the engine falls back to
        the per-perturbation executor map.
        """
        if not getattr(self._base_platform(), "supports_batch_measure", False):
            return None
        perturbations = list(perturbations)
        start = time.perf_counter()
        groups: dict[int, list[int]] = {}
        platforms: dict[int, MeasurementPlatform] = {}
        for idx, perturbation in enumerate(perturbations):
            platform = self._platform_for(perturbation)
            platforms[id(platform)] = platform
            groups.setdefault(id(platform), []).append(idx)
        values: list[float] = [float("nan")] * len(perturbations)
        for platform_id, indices in groups.items():
            platform = platforms[platform_id]
            requests = [self._request_for(perturbations[i]) for i in indices]
            measurements = platform.measure_programs(requests)
            for i, measurement in zip(indices, measurements):
                values[i] = float(self.cost.evaluate(measurement))
        wall = time.perf_counter() - start
        per_item = wall / max(1, len(perturbations))
        return [
            EvalOutcome(value=value, wall_s=per_item, attempts=1)
            for value in values
        ]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AxisDistribution:
    """Droop distribution along one perturbation axis."""

    axis: str
    labels: tuple
    droops: tuple
    nominal_droop_v: float

    @property
    def valid_droops(self) -> tuple:
        """Droops from measurements that produced a finite value."""
        return tuple(d for d in self.droops if np.isfinite(d))

    @property
    def failed(self) -> int:
        """Perturbed measurements that never produced a finite droop."""
        return len(self.droops) - len(self.valid_droops)

    @property
    def min_droop_v(self) -> float:
        valid = self.valid_droops
        return min(valid) if valid else float("nan")

    @property
    def max_droop_v(self) -> float:
        valid = self.valid_droops
        return max(valid) if valid else float("nan")

    @property
    def mean_droop_v(self) -> float:
        valid = self.valid_droops
        return float(np.mean(valid)) if valid else float("nan")

    @property
    def retention(self) -> float:
        """Worst droop on this axis relative to nominal (1.0 = unmoved).

        An axis with no valid measurement retains nothing (0.0): if the
        droop cannot even be measured under the perturbation it cannot
        be trusted.
        """
        if not self.valid_droops:
            return 0.0
        if self.nominal_droop_v <= 0:
            return 1.0
        return self.min_droop_v / self.nominal_droop_v


@dataclass(frozen=True)
class QualificationReport:
    """Everything a qualification run concluded about one stressmark."""

    stressmark: str
    threads: int
    nominal_droop_v: float
    axes: tuple
    robustness: float
    verdict: str
    evaluations: int
    cache_hits: int
    wall_s: float
    config: QualifyConfig

    def axis(self, name: str) -> AxisDistribution:
        for dist in self.axes:
            if dist.axis == name:
                return dist
        raise KeyError(name)

    def to_payload(self) -> dict:
        """A JSON-ready summary of the verdict and per-axis distributions.

        Deterministic for a given run configuration — ``wall_s`` is
        deliberately excluded so the payload can take part in
        content-addressed registry records.
        """
        return {
            "stressmark": self.stressmark,
            "threads": self.threads,
            "nominal_droop_v": self.nominal_droop_v,
            "robustness": self.robustness,
            "verdict": self.verdict,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "axes": [
                {
                    "axis": dist.axis,
                    "samples": len(dist.droops),
                    "min_droop_v": dist.min_droop_v,
                    "max_droop_v": dist.max_droop_v,
                    "mean_droop_v": dist.mean_droop_v,
                    "retention": dist.retention,
                    "failed": dist.failed,
                }
                for dist in self.axes
            ],
        }

    def summary_table(self) -> str:
        rows = []
        for dist in self.axes:
            rows.append([
                dist.axis,
                str(len(dist.droops)),
                f"{dist.min_droop_v * 1e3:.2f} mV",
                f"{dist.max_droop_v * 1e3:.2f} mV",
                f"{dist.retention:.2f}",
                str(dist.failed) if dist.failed else "-",
            ])
        rows.append([
            "=> " + self.verdict,
            str(self.evaluations),
            f"{self.nominal_droop_v * 1e3:.2f} mV",
            "(nominal)",
            f"{self.robustness:.2f}",
            "-",
        ])
        return format_table(
            ["axis", "samples", "min droop", "max droop", "retention", "failed"],
            rows,
            title=f"qualification — {self.stressmark} @ {self.threads}T",
        )


# ----------------------------------------------------------------------
# Resumable qualification state
# ----------------------------------------------------------------------
class QualificationCheckpoint:
    """Atomic store for in-progress qualification runs.

    One ``qualify_<stressmark>.json`` file per qualified candidate, so a
    campaign's winner and its fallback runner-ups each resume
    independently — and the file names are disjoint from
    :class:`~repro.core.checkpoint.CampaignCheckpoint`'s, so a
    qualification can live in the same ``--checkpoint-dir`` as the
    campaign that produced the candidate.
    """

    STATE_VERSION = 1

    def __init__(self, directory):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {error}"
            ) from error

    def state_path(self, stressmark: str) -> Path:
        slug = "".join(
            c if c.isalnum() else "-" for c in stressmark.lower()
        ).strip("-") or "stressmark"
        return self.directory / f"qualify_{slug}.json"

    def save(self, *, stressmark: str, seed: int, measured: dict) -> Path:
        path = self.state_path(stressmark)
        atomic_write_json(path, {
            "kind": "qualification",
            "version": self.STATE_VERSION,
            "stressmark": stressmark,
            "seed": seed,
            "measured": [
                [encode_perturbation(p), value] for p, value in measured.items()
            ],
        })
        return path

    def load(self, *, stressmark: str, seed: int) -> dict:
        """Measured perturbation → droop pairs, or ``{}`` when fresh.

        A checkpoint written for a different stressmark or seed is a
        hard error: silently mixing measurements would corrupt verdicts.
        """
        path = self.state_path(stressmark)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return {}
        except OSError as error:
            raise CheckpointError(
                f"unreadable qualification state {path}: {error}"
            ) from error
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(
                f"corrupt qualification state {path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"malformed qualification checkpoint {path}: "
                "expected a JSON object"
            )
        if payload.get("version") != self.STATE_VERSION:
            raise CheckpointError(
                f"qualification checkpoint version {payload.get('version')!r} "
                f"in {path} is not supported (expected {self.STATE_VERSION})"
            )
        if (payload.get("stressmark") != stressmark
                or payload.get("seed") != seed):
            raise CheckpointError(
                f"qualification checkpoint {path} belongs to "
                f"{payload.get('stressmark')!r} "
                f"(seed {payload.get('seed')!r}), "
                f"not {stressmark!r} (seed {seed!r})"
            )
        measured = payload.get("measured")
        if not isinstance(measured, list):
            raise CheckpointError(
                f"malformed qualification state {path}: "
                "'measured' must be a list"
            )
        out = {}
        try:
            for entry, value in measured:
                out[decode_perturbation(entry)] = float(value)
        except (TypeError, ValueError, KeyError) as error:
            raise CheckpointError(
                f"malformed qualification state {path}: {error}"
            ) from error
        return out


# ----------------------------------------------------------------------
# The qualifier
# ----------------------------------------------------------------------
class StressmarkQualifier:
    """Re-measure a candidate under perturbations and render a verdict."""

    def __init__(
        self,
        platform: MeasurementPlatform,
        *,
        threads: int,
        config: QualifyConfig | None = None,
        cost=None,
        executor: FitnessExecutor | None = None,
        observers: Sequence[RunObserver] = (),
        platform_factory: Callable[[], MeasurementPlatform] | None = None,
        fault_policy: FaultPolicy | None = None,
        checkpoint: QualificationCheckpoint | None = None,
    ):
        self.platform = platform
        self.threads = threads
        self.config = config if config is not None else QualifyConfig()
        self.cost = cost
        self.executor = executor if executor is not None else SerialExecutor()
        self.observers = tuple(observers)
        self.platform_factory = platform_factory
        self.fault_policy = fault_policy
        self.checkpoint = checkpoint

    # ------------------------------------------------------------------
    def perturbation_axes(self) -> list[tuple[str, list[Perturbation]]]:
        """The deterministic perturbation grid, one entry per axis.

        Every axis leads with the nominal anchor — physically equal to
        :data:`NOMINAL`, so the engine serves it from cache after the
        first measurement.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        vdd = self.platform.chip.vdd

        jitter = [Perturbation(axis="jitter", label="nominal")]
        for seed in rng.integers(0, 2**31, size=cfg.jitter_repeats):
            jitter.append(Perturbation(
                axis="jitter", label=f"seed={int(seed)}",
                jitter_seed=int(seed),
            ))

        smt = [Perturbation(axis="smt", label="nominal")]
        for offset in cfg.smt_offsets:
            smt.append(Perturbation(
                axis="smt", label=f"offset={int(offset)}",
                smt_phase_cycles=int(offset),
            ))

        supply = [Perturbation(axis="supply", label="nominal")]
        for volts in np.linspace(
            vdd - cfg.supply_span_v, vdd + cfg.supply_span_v,
            cfg.supply_points,
        ):
            supply.append(Perturbation(
                axis="supply", label=f"vdd={volts:.4f}",
                supply_v=float(volts),
            ))

        pdn = [Perturbation(axis="pdn", label="nominal")]
        for stage in cfg.pdn_stages:
            for name in cfg.pdn_fields:
                for scale in (1.0 - cfg.pdn_tolerance, 1.0 + cfg.pdn_tolerance):
                    pdn.append(Perturbation(
                        axis="pdn",
                        label=f"{stage}.{name} x{scale:.2f}",
                        pdn_stage=stage,
                        pdn_field=name,
                        pdn_scale=float(scale),
                    ))

        return [("jitter", jitter), ("smt", smt), ("supply", supply),
                ("pdn", pdn)]

    # ------------------------------------------------------------------
    def _verdict(self, nominal: float, robustness: float) -> str:
        cfg = self.config
        if not np.isfinite(nominal) or nominal < cfg.min_droop_v:
            return ARTIFACT
        if robustness >= cfg.pass_retention:
            return PASS
        if robustness >= cfg.artifact_retention:
            return FRAGILE
        return ARTIFACT

    def qualify_program(
        self, program: ThreadProgram, *, name: str = "stressmark"
    ) -> QualificationReport:
        """Measure *program* across every axis and render the verdict."""
        with span("qualify.stressmark", stressmark=name, threads=self.threads):
            return self._qualify_program(program, name=name)

    def _qualify_program(
        self, program: ThreadProgram, *, name: str
    ) -> QualificationReport:
        start = time.perf_counter()
        attach = getattr(self.platform, "attach_observers", None)
        if attach is not None:
            attach(self.observers)
        fitness = QualificationFitness(
            program,
            self.threads,
            cost=self.cost,
            platform=self.platform,
            platform_factory=self.platform_factory,
        )
        engine = EvaluationEngine(
            fitness,
            executor=self.executor,
            observers=self.observers,
            platform=self.platform,
            fault_policy=self.fault_policy,
        )
        if self.checkpoint is not None:
            engine.restore_cache(self.checkpoint.load(
                stressmark=name, seed=self.config.seed,
            ))
        nominal = engine.evaluate(NOMINAL)

        axes = []
        for axis_name, perturbations in self.perturbation_axes():
            axis_start = time.perf_counter()
            with span("qualify.axis", axis=axis_name,
                      samples=len(perturbations)):
                droops = engine.evaluate_many(perturbations)
            dist = AxisDistribution(
                axis=axis_name,
                labels=tuple(p.label for p in perturbations),
                droops=tuple(droops),
                nominal_droop_v=nominal,
            )
            axes.append(dist)
            notify(self.observers, QualificationEvent(
                stressmark=name,
                axis=axis_name,
                samples=len(droops),
                min_droop_v=dist.min_droop_v,
                max_droop_v=dist.max_droop_v,
                retention=dist.retention,
                wall_s=time.perf_counter() - axis_start,
            ))
            if self.checkpoint is not None:
                self.checkpoint.save(
                    stressmark=name,
                    seed=self.config.seed,
                    measured=engine.cache_snapshot(),
                )

        robustness = min(dist.retention for dist in axes)
        verdict = self._verdict(nominal, robustness)
        wall = time.perf_counter() - start
        notify(self.observers, QualificationEvent(
            stressmark=name,
            axis="verdict",
            samples=engine.evaluations + engine.cache_hits,
            min_droop_v=nominal,
            max_droop_v=nominal,
            retention=robustness,
            verdict=verdict,
            wall_s=wall,
        ))
        stats_fn = getattr(self.platform, "stats", None)
        if stats_fn is not None:
            notify(self.observers, MeasurementStatsEvent(
                stats=stats_fn().to_dict(), source="qualify",
            ))
        return QualificationReport(
            stressmark=name,
            threads=self.threads,
            nominal_droop_v=nominal,
            axes=tuple(axes),
            robustness=robustness,
            verdict=verdict,
            evaluations=engine.evaluations,
            cache_hits=engine.cache_hits,
            wall_s=wall,
            config=self.config,
        )
