"""Code generation: genome → loop kernel → thread program.

The CodeGen box of paper Fig. 5: expands a genome's sub-block mnemonics into
concrete instructions (round-robin operand allocation, max-toggle data
values), replicates the sub-block S times for the HP region, and appends the
NOP LP region.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.isa.data_patterns import DataPattern
from repro.isa.instruction import make_instruction
from repro.isa.kernels import LoopKernel, ThreadProgram, build_kernel
from repro.isa.opcodes import IClass
from repro.isa.registers import RegisterAllocator
from repro.core.genome import GenomeSpace, StressmarkGenome

#: Default loop-trip count for generated programs (M is large; the platform
#: only simulates to steady state anyway).
DEFAULT_ITERATIONS = 4096


def genome_to_kernel(
    genome: StressmarkGenome,
    space: GenomeSpace,
    *,
    name: str = "audit",
    data: DataPattern = DataPattern.MAX_TOGGLE,
) -> LoopKernel:
    """Expand *genome* into a concrete loop kernel."""
    space.validate(genome)
    allocator = RegisterAllocator()
    subblock = []
    for mnemonic in genome.subblock:
        spec = space.table.get(mnemonic)
        if spec.iclass is IClass.NOP:
            subblock.append(make_instruction(spec, allocator, data=data))
        else:
            subblock.append(make_instruction(spec, allocator, data=data))
    nop_spec = space.table.nop
    return build_kernel(
        tuple(subblock),
        replications=space.replications,
        lp_nops=genome.lp_nops,
        nop_spec=nop_spec,
        name=name,
    )


def genome_to_program(
    genome: StressmarkGenome,
    space: GenomeSpace,
    *,
    name: str = "audit",
    iterations: int = DEFAULT_ITERATIONS,
) -> ThreadProgram:
    """Expand *genome* into a runnable thread program."""
    if iterations < 1:
        raise SearchError("iterations must be >= 1")
    return ThreadProgram(genome_to_kernel(genome, space, name=name), iterations)
