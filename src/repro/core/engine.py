"""The evaluation engine: AUDIT's batched, backend-pluggable fitness service.

On hardware every fitness call is a multi-second scope capture, so the
measurement box is *the* bottleneck of the closed loop (paper Fig. 5).
FIRESTARTER and MicroGrad-style generators pay off exactly when that box
becomes an instrumented service instead of an inline call — which is what
this module provides:

* :class:`EvaluationEngine` owns the genome → program → measurement → cost
  pipeline, memoises fitness by genome, evaluates whole batches
  (``evaluate_many``), and emits :class:`~repro.core.telemetry.EvaluationEvent`
  telemetry through any registered observers.
* Executors are pluggable: :class:`SerialExecutor` (default — deterministic,
  shares the in-process platform and all its caches) and
  :class:`ParallelExecutor` (a ``concurrent.futures.ProcessPoolExecutor``
  fan-out — one GA generation's unevaluated genomes are independent, so a
  24-genome generation scales near-linearly with workers).
* :class:`StressmarkFitness` is the pipeline itself as a *picklable*
  callable: workers rebuild the measurement platform from a
  ``platform_factory`` exactly once per process and keep it (and its
  module-trace cache) warm across generations.

Determinism: both executors evaluate the same genomes with the same seeds
and return results in request order, so serial and parallel runs produce
identical ``GaResult``s.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Protocol, Sequence, TypeVar

from repro.core.codegen import DEFAULT_ITERATIONS, genome_to_program
from repro.core.cost import MaxDroopCost
from repro.core.faults import EvalOutcome, FaultPolicy, FaultRecord, GuardedFitness
from repro.core.platform import MeasurementPlatform
from repro.obs.spans import TracedTask, current_tracer, span
from repro.pipeline.artifacts import MeasureRequest
from repro.core.telemetry import (
    EvaluationEvent,
    FaultEvent,
    InvariantEvent,
    RunObserver,
    notify,
)
from repro.errors import ConfigurationError
from repro.supervision.executor import (
    DEFAULT_MAX_POOL_REBUILDS,
    SupervisedExecutor,
    SupervisorFault,
    WorkerCrashError,
    WorkerHangError,
)

G = TypeVar("G", bound=Hashable)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class FitnessExecutor(Protocol):
    """How a batch of independent fitness evaluations actually runs."""

    name: str
    workers: int

    def map(self, fn: Callable, items: Sequence) -> list: ...

    def close(self) -> None: ...


class SerialExecutor:
    """In-process evaluation: the default, cache-warm and dependency-free."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass


class ParallelExecutor:
    """Process-pool evaluation via ``concurrent.futures``.

    The mapped callable and its items must be picklable — for stressmark
    fitness that means constructing the engine with a ``platform_factory``
    (a module-level function such as
    :func:`repro.experiments.setup.bulldozer_testbed`).  The pool is created
    lazily on first use and reused across batches so workers keep their
    rebuilt platforms (and module-trace caches) warm.
    """

    name = "parallel"

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if not items:
            return []
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        # One chunk per worker per batch: amortises the per-chunk pickle of
        # ``fn`` (which carries the platform spec) without starving workers.
        chunksize = max(1, -(-len(items) // self.workers))
        try:
            return list(self._pool.map(fn, items, chunksize=chunksize))
        except BaseException:
            # A worker exception mid-batch must not leak the pool: cancel
            # what has not started and shut the processes down before the
            # error propagates (callers rarely get to call close() on the
            # exception path).
            self._abort()
            raise

    def _abort(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    workers: int | None,
    *,
    hard_timeout_s: float | None = None,
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
    observers: Sequence[RunObserver] = (),
) -> SerialExecutor | SupervisedExecutor:
    """`workers` <= 1 (or None) → serial; otherwise a supervised pool.

    Parallel evaluation always goes through the
    :class:`~repro.supervision.executor.SupervisedExecutor` so worker
    crashes are recovered (pool respawn + crash isolation) even without a
    hard deadline; pass ``hard_timeout_s`` to also kill evaluations that
    hang past it.  The bare :class:`ParallelExecutor` remains available
    for callers that explicitly want unsupervised ``pool.map`` semantics.
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return SupervisedExecutor(
        workers,
        task_timeout_s=hard_timeout_s,
        max_pool_rebuilds=max_pool_rebuilds,
        observers=observers,
    )


# ----------------------------------------------------------------------
# The genome -> fitness pipeline as a picklable callable
# ----------------------------------------------------------------------
#: Worker-side platforms, keyed by the pickled factory so every task in a
#: process reuses one platform (and its module-trace cache).
_WORKER_PLATFORMS: dict[bytes, MeasurementPlatform] = {}


def _as_platform(built) -> MeasurementPlatform:
    if isinstance(built, MeasurementPlatform):
        return built
    return MeasurementPlatform(backend=built)


class StressmarkFitness(Generic[G]):
    """genome → program → measurement → cost, ready for any executor.

    In-process calls use the live *platform*; when pickled to a worker the
    platform is dropped and rebuilt from *platform_factory* (once per
    process), so the callable ships only the genome space, thread count,
    and cost function.
    """

    #: Parallel executors need the factory (see ``_check_executor``); any
    #: platform-bound fitness class sets this marker.
    requires_platform_factory = True

    def __init__(
        self,
        space,
        threads: int,
        *,
        cost=None,
        platform: MeasurementPlatform | None = None,
        platform_factory: Callable[[], MeasurementPlatform] | None = None,
        iterations: int = DEFAULT_ITERATIONS,
    ):
        if platform is None and platform_factory is None:
            raise ConfigurationError(
                "StressmarkFitness needs a platform or a platform_factory"
            )
        self.space = space
        self.threads = threads
        self.cost = cost if cost is not None else MaxDroopCost()
        self.platform_factory = platform_factory
        self.iterations = iterations
        self._platform = platform

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_platform"] = None
        return state

    def _resolve_platform(self) -> MeasurementPlatform:
        if self._platform is None:
            key = pickle.dumps(self.platform_factory)
            platform = _WORKER_PLATFORMS.get(key)
            if platform is None:
                platform = _as_platform(self.platform_factory())
                _WORKER_PLATFORMS[key] = platform
            self._platform = platform
        return self._platform

    def __call__(self, genome: G) -> float:
        program = genome_to_program(genome, self.space, iterations=self.iterations)
        measurement = self._resolve_platform().measure_program(
            program, self.threads
        )
        return float(self.cost.evaluate(measurement))

    def stats_probe(self):
        """Current platform counters (for worker-side stats deltas)."""
        platform = self._resolve_platform()
        stats_fn = getattr(platform, "stats", None)
        return stats_fn() if stats_fn is not None else None

    def evaluate_batch(self, genomes: Sequence[G]) -> list[EvalOutcome] | None:
        """Score a batch through the platform's vectorized measure path.

        Returns ``None`` when the platform has no batch support, so the
        engine falls back to the per-genome executor map.  Results are
        bit-identical to serial calls (the batch backend guarantees it);
        per-genome wall time is the batch wall split evenly.
        """
        platform = self._resolve_platform()
        if not getattr(platform, "supports_batch_measure", False):
            return None
        start = time.perf_counter()
        requests = [
            MeasureRequest(
                program=genome_to_program(
                    genome, self.space, iterations=self.iterations
                ),
                threads=self.threads,
            )
            for genome in genomes
        ]
        measurements = platform.measure_programs(requests)
        wall = time.perf_counter() - start
        per_genome = wall / max(1, len(genomes))
        return [
            EvalOutcome(
                value=float(self.cost.evaluate(measurement)),
                wall_s=per_genome,
                attempts=1,
            )
            for measurement in measurements
        ]


@dataclass(frozen=True)
class _TimedFitness:
    """Wraps a fitness callable into a stats-carrying :class:`EvalOutcome`."""

    fitness: Callable

    def __call__(self, genome) -> EvalOutcome:
        probe = getattr(self.fitness, "stats_probe", None)
        stats_before = probe() if probe is not None else None
        start = time.perf_counter()
        value = float(self.fitness(genome))
        wall_s = time.perf_counter() - start
        stats = None
        if stats_before is not None:
            stats_after = probe()
            if stats_after is not None:
                stats = stats_after.delta(stats_before)
        return EvalOutcome(value=value, wall_s=wall_s, attempts=1, stats=stats)


def _genome_label(genome) -> str:
    label = repr(genome)
    return label if len(label) <= 120 else label[:117] + "..."


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class EvaluationEngine(Generic[G]):
    """Batched, cached, observable fitness evaluation.

    Implements the batch-evaluator protocol the GA consumes
    (``evaluate_many`` + ``evaluations``), so an engine drops in wherever a
    plain fitness callable was accepted.  Fitness values are memoised by
    genome; cache hits are free and reported as telemetry, exactly like the
    measurement reuse that matters on the paper's hardware testbed.

    With a :class:`~repro.core.faults.FaultPolicy`, evaluation faults are
    retried (with backoff, worker-side) and genomes whose measurements keep
    failing are **quarantined** — assigned the policy's exhausted fitness
    instead of killing the campaign — with every retry and quarantine
    surfaced as :class:`~repro.core.telemetry.FaultEvent` telemetry.
    """

    def __init__(
        self,
        fitness: Callable[[G], float],
        *,
        executor: FitnessExecutor | None = None,
        observers: Sequence[RunObserver] = (),
        platform: MeasurementPlatform | None = None,
        fault_policy: FaultPolicy | None = None,
    ):
        self.fitness = fitness
        self.executor = executor if executor is not None else SerialExecutor()
        self.observers = tuple(observers)
        self.platform = platform
        self.fault_policy = fault_policy
        self._cache: dict[G, float] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.retries = 0
        self.quarantines = 0
        self.timeouts = 0
        self.quarantined: set[G] = set()
        self._check_executor()

    @classmethod
    def for_stressmarks(
        cls,
        platform: MeasurementPlatform,
        space,
        *,
        threads: int,
        cost=None,
        executor: FitnessExecutor | None = None,
        observers: Sequence[RunObserver] = (),
        platform_factory: Callable[[], MeasurementPlatform] | None = None,
        iterations: int = DEFAULT_ITERATIONS,
        fault_policy: FaultPolicy | None = None,
    ) -> "EvaluationEngine":
        """The full AUDIT pipeline over *platform* for genomes in *space*."""
        fitness = StressmarkFitness(
            space,
            threads,
            cost=cost,
            platform=platform,
            platform_factory=platform_factory,
            iterations=iterations,
        )
        return cls(
            fitness, executor=executor, observers=observers, platform=platform,
            fault_policy=fault_policy,
        )

    def _check_executor(self) -> None:
        if (
            getattr(self.executor, "workers", 1) > 1
            and getattr(self.fitness, "requires_platform_factory", False)
            and getattr(self.fitness, "platform_factory", None) is None
        ):
            raise ConfigurationError(
                "parallel evaluation needs a picklable platform_factory "
                "(pass platform_factory= to EvaluationEngine.for_stressmarks)"
            )

    # ------------------------------------------------------------------
    def evaluate(self, genome: G) -> float:
        return self.evaluate_many([genome])[0]

    def evaluate_many(self, genomes: Sequence[G]) -> list[float]:
        """Fitness for each genome, in request order.

        Unseen genomes are deduplicated and dispatched to the executor as
        one batch; everything else is served from the genome cache.
        """
        genomes = list(genomes)
        fresh: list[G] = []
        seen: set[G] = set()
        for genome in genomes:
            if genome not in self._cache and genome not in seen:
                fresh.append(genome)
                seen.add(genome)
        if fresh:
            with span("engine.evaluate_batch", size=len(fresh),
                      backend=self.executor.name):
                outcomes = self._evaluate_fresh(fresh)
            self._absorb_worker_stats(outcomes)
            for genome, outcome in zip(fresh, outcomes):
                value = self._record_outcome(genome, outcome)
                self._cache[genome] = value
                self.evaluations += 1
                notify(
                    self.observers,
                    EvaluationEvent(
                        genome=_genome_label(genome),
                        fitness=value,
                        wall_s=outcome.wall_s,
                        cached=False,
                        backend=self.executor.name,
                    ),
                )
        out: list[float] = []
        for genome in genomes:
            value = self._cache[genome]
            if genome in seen:
                seen.discard(genome)  # the one request that paid for it
            else:
                self.cache_hits += 1
                notify(
                    self.observers,
                    EvaluationEvent(
                        genome=_genome_label(genome),
                        fitness=value,
                        wall_s=0.0,
                        cached=True,
                        backend=self.executor.name,
                    ),
                )
            out.append(value)
        return out

    # ------------------------------------------------------------------
    def _evaluate_fresh(self, fresh: Sequence[G]) -> list:
        """Dispatch the deduplicated batch and resolve supervisor faults.

        Under an active tracer and a parallel executor the task callable
        is wrapped in :class:`~repro.obs.spans.TracedTask`, so each
        worker records its own ``worker.eval`` (+ pipeline) spans and
        ships them back on the outcome; they are re-emitted here, in the
        parent, into the ordinary observer chain.
        """
        outcomes = None
        if (
            self.fault_policy is None
            and getattr(self.executor, "workers", 1) <= 1
        ):
            batch_eval = getattr(self.fitness, "evaluate_batch", None)
            if batch_eval is not None:
                outcomes = batch_eval(fresh)
        if outcomes is None:
            if self.fault_policy is None:
                task = _TimedFitness(self.fitness)
            else:
                task = GuardedFitness(self.fitness, self.fault_policy)
            tracer = current_tracer()
            if tracer is not None and getattr(self.executor, "workers", 1) > 1:
                task = TracedTask(task, tracer.context())
            outcomes = self.executor.map(task, fresh)
        outcomes = [
            self._resolve_supervised(genome, outcome)
            for genome, outcome in zip(fresh, outcomes)
        ]
        tracer = current_tracer()
        if tracer is not None:
            for outcome in outcomes:
                for event in getattr(outcome, "spans", ()):
                    tracer.emit(event)
        return outcomes

    # ------------------------------------------------------------------
    def _absorb_worker_stats(self, outcomes: Sequence[EvalOutcome]) -> None:
        """Merge per-worker measurement stats into the engine's platform.

        Worker processes accumulate :class:`MeasurementStats` in their own
        rebuilt platforms, which die with the pool; each outcome carries the
        per-evaluation delta so the run summary reports the true sim/PDN
        split.  Serial evaluations already hit the live platform directly, so
        merging there would double-count.
        """
        if getattr(self.executor, "workers", 1) <= 1:
            return
        absorb = getattr(self.platform, "absorb_worker_stats", None)
        if absorb is None:
            return
        for outcome in outcomes:
            if outcome.stats is not None:
                absorb(outcome.stats)

    # ------------------------------------------------------------------
    def _resolve_supervised(self, genome: G, outcome) -> EvalOutcome:
        """Fold a :class:`SupervisorFault` sentinel into the fault taxonomy.

        The supervised executor hands back a sentinel for a task whose
        *worker* misbehaved (hang past the hard deadline, process death) —
        failures the in-worker :class:`~repro.core.faults.GuardedFitness`
        cannot see.  With a quarantining fault policy the genome is
        quarantined like any fault-exhausted one; with no policy (or
        ``on_exhaust="raise"``) the failure surfaces as a
        :class:`~repro.supervision.executor.WorkerHangError` /
        :class:`~repro.supervision.executor.WorkerCrashError`.
        """
        if not isinstance(outcome, SupervisorFault):
            return outcome
        label = _genome_label(genome)
        tracer = current_tracer()
        if tracer is not None:
            # The worker died holding its spans; close the loss in the
            # parent so the trace tree shows a "lost" leaf instead of a
            # silently missing subtree.
            tracer.lost(
                "worker.eval", wall_s=outcome.wall_s,
                genome=label, fault=outcome.kind,
            )
        if self.fault_policy is None or self.fault_policy.on_exhaust == "raise":
            error = WorkerHangError if outcome.kind == "hang" else WorkerCrashError
            raise error(f"{label}: {outcome.error}")
        record = FaultRecord(error=outcome.error, timeout=outcome.kind == "hang")
        return EvalOutcome(
            value=None,
            wall_s=outcome.wall_s,
            attempts=max(1, outcome.attempts),
            faults=(record,),
        )

    # ------------------------------------------------------------------
    def _record_outcome(self, genome: G, outcome: EvalOutcome) -> float:
        """Fold one evaluation outcome into counters + fault telemetry."""
        self.retries += max(0, outcome.attempts - 1)
        self.timeouts += sum(1 for fault in outcome.faults if fault.timeout)
        label = _genome_label(genome)
        for i, fault in enumerate(outcome.faults):
            final_failure = outcome.exhausted and i == len(outcome.faults) - 1
            if fault.invariant:
                notify(
                    self.observers,
                    InvariantEvent(
                        guard=fault.invariant,
                        layer=fault.layer,
                        error=fault.error,
                        genome=label,
                    ),
                )
            notify(
                self.observers,
                FaultEvent(
                    genome=label,
                    error=fault.error,
                    attempt=i + 1,
                    action="quarantine" if final_failure else "retry",
                    timeout=fault.timeout,
                ),
            )
        if outcome.exhausted:
            self.quarantines += 1
            self.quarantined.add(genome)
            return self.fault_policy.exhausted_fitness()
        return float(outcome.value)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> dict[G, float]:
        """A copy of the genome → fitness cache (for campaign checkpoints)."""
        return dict(self._cache)

    def restore_cache(
        self,
        cache: dict[G, float],
        *,
        cache_hits: int = 0,
        evaluations: int = 0,
    ) -> None:
        """Restore a checkpointed fitness cache and its counters."""
        self._cache.update(cache)
        self.cache_hits = cache_hits
        self.evaluations = evaluations

    def seed_cache(self, cache: dict[G, float]) -> None:
        """Pre-populate the fitness cache from another campaign's bank.

        The fleet orchestrator seeds a shard's engine with the caches of
        sibling shards that measured on an identical platform (same chip,
        PDN variant, thread count, mode), so genomes the sibling already
        scored are free here.  Unlike :meth:`restore_cache` this touches
        no counters and never overwrites an existing entry — it only adds
        known-good measurements the campaign has not requested yet.
        """
        for genome, value in cache.items():
            self._cache.setdefault(genome, value)

    # ------------------------------------------------------------------
    def platform_stats(self):
        """The platform's MeasurementStats (None without an instrumented one)."""
        if self.platform is None:
            return None
        return self.platform.stats()
