"""Run telemetry: structured events from the AUDIT closed loop.

On the paper's testbed every fitness call is a multi-second oscilloscope
capture, so knowing *where the time goes* is the difference between an
overnight run and a week.  The reproduction keeps the same discipline: the
evaluation engine and the GA emit structured events (per evaluation, per
generation, per loop phase) through the :class:`RunObserver` protocol, and
the measurement platform keeps aggregate counters (simulator vs. PDN-solve
time, cache hits, measurement path taken).

Observers are deliberately dumb sinks: :class:`ConsoleObserver` narrates
progress, :class:`JsonlObserver` appends machine-readable lines, and
:class:`TelemetryCollector` aggregates counters for the end-of-run summary
printed by ``repro bench-evals``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from typing import IO, Protocol, runtime_checkable

from repro.analysis.report import format_kv_table


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationEvent:
    """One genome scored by the evaluation engine."""

    genome: str
    fitness: float
    wall_s: float
    cached: bool
    backend: str

    kind = "evaluation"


@dataclass(frozen=True)
class GenerationEvent:
    """One GA generation scored as a batch."""

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations_so_far: int
    batch_size: int
    batch_new: int
    wall_s: float

    kind = "generation"


@dataclass(frozen=True)
class PhaseEvent:
    """One phase of the closed loop (resonance sweep, GA, final measure)."""

    name: str
    wall_s: float
    detail: str = ""

    kind = "phase"


@dataclass(frozen=True)
class FaultEvent:
    """One failed evaluation attempt (retried or quarantined)."""

    genome: str
    error: str
    attempt: int
    action: str
    """``"retry"`` when another attempt follows, ``"quarantine"`` when the
    policy gave up on the genome."""
    timeout: bool = False

    kind = "fault"


@dataclass(frozen=True)
class CheckpointEvent:
    """One campaign snapshot written to the checkpoint store."""

    generation: int
    path: str
    wall_s: float

    kind = "checkpoint"


@dataclass(frozen=True)
class InvariantEvent:
    """One runtime invariant guard fired on corrupt numerics."""

    guard: str
    layer: str
    error: str
    genome: str = ""

    kind = "invariant"


@dataclass(frozen=True)
class StageEvent:
    """One measurement-pipeline stage executed for a candidate.

    The pipeline (``repro.pipeline``) emits one of these per stage per
    measurement: ``compile`` → ``activity`` → ``pdn`` → ``analyze``.  The
    activity event carries the dispatch ``path`` (periodic / jittered /
    transient) and, when the transient fallback fired, the reason in
    ``detail`` — a fallback is a modelling event worth narrating, not a
    silent counter bump.
    """

    stage: str
    wall_s: float
    cache_hit: bool = False
    batched: bool = False
    path: str = ""
    detail: str = ""

    kind = "stage"


@dataclass(frozen=True)
class MeasurementStatsEvent:
    """End-of-run platform counters, merged across worker processes.

    Parallel executors evaluate on per-worker platforms whose counters
    used to die with the pool; the engine now ships each evaluation's
    stats delta back to the parent and the runner emits the merged totals
    here, so ``--workers N`` telemetry reports the true sim/PDN split.
    """

    stats: dict
    source: str = ""

    kind = "platform-stats"


@dataclass(frozen=True)
class SupervisorEvent:
    """One action taken by the process-supervision layer.

    ``action`` is one of ``"hang-kill"`` (a task blew its hard deadline
    and its worker pool was killed), ``"crash"`` (a worker process died —
    segfault, ``os._exit`` — under a task), ``"respawn"`` (the pool was
    rebuilt), ``"requeue"`` (an innocent in-flight task was rescheduled
    after a kill), ``"give-up"`` (a task exhausted its supervision
    retries and was handed to the fault policy), ``"salvage"`` (a corrupt
    checkpoint was recovered from the previous verified snapshot), or
    ``"shutdown"`` (a graceful stop was requested).  ``task`` labels the
    genome / shard involved, ``detail`` carries the error or reason.
    """

    action: str
    task: str = ""
    detail: str = ""
    respawns: int = 0
    wall_s: float = 0.0

    kind = "supervisor"


@dataclass(frozen=True)
class ShardEvent:
    """One fleet shard changing state.

    ``status`` is ``"started"`` when a shard is dispatched to a worker,
    ``"banked"`` when a resumed fleet finds its completed result on disk,
    ``"ok"`` / ``"failed"`` when it finishes.  Failures carry the error
    string and the exit-code taxonomy entry the shard mapped to
    (3 fault-exhaustion / 4 invariant / 70 crash).
    """

    scenario: str
    status: str
    droop_v: float = 0.0
    evaluations: int = 0
    wall_s: float = 0.0
    error: str = ""
    exit_code: int = 0

    kind = "shard"


@dataclass(frozen=True)
class FleetEvent:
    """Fleet progress after a shard event: the live status line."""

    total: int
    done: int
    failed: int
    running: int
    wall_s: float
    detail: str = ""

    kind = "fleet"


@dataclass(frozen=True)
class QualificationEvent:
    """One qualification step: a perturbation axis scored, or the verdict."""

    stressmark: str
    axis: str
    """Perturbation axis (``jitter``/``smt``/``supply``/``pdn``) or
    ``"verdict"`` for the final summary event."""
    samples: int
    min_droop_v: float
    max_droop_v: float
    retention: float
    """Worst droop retention on this axis relative to nominal (1.0 = the
    droop survives the perturbation unchanged)."""
    verdict: str = ""
    wall_s: float = 0.0

    kind = "qualification"


@dataclass(frozen=True)
class RegistryEvent:
    """One stressmark-registry operation.

    ``action`` is ``"publish"`` (a record landed in the store — or was
    already there, ``deduped=True``), ``"verify"`` (a stored record was
    replayed through the measurement pipeline; ``detail`` carries the
    verdict), ``"export"`` / ``"import"`` (tarball round-trips, ``detail``
    counts the records), or ``"salvage"`` (a damaged index was rebuilt
    from the object store).  ``record_id`` is the content hash involved
    (empty for whole-store actions).
    """

    action: str
    record_id: str = ""
    path: str = ""
    detail: str = ""
    deduped: bool = False
    wall_s: float = 0.0

    kind = "registry"


@dataclass(frozen=True)
class SpanEvent:
    """One closed trace span: a timed, nested slice of the closed loop.

    Spans form a tree: ``trace_id`` names the campaign-wide trace,
    ``span_id`` this span, and ``parent_id`` the enclosing span (empty
    for the root).  ``t0_s`` is ``time.monotonic()`` at open —
    CLOCK_MONOTONIC is system-wide on Linux, so spans recorded in pool
    workers and fleet shard subprocesses order correctly against their
    parent.  ``status`` is ``"ok"``, ``"error"`` (the span body raised),
    or ``"lost"`` (the process holding the open span was SIGKILLed and a
    supervisor closed it on its behalf).  ``attrs`` carries structured
    attributes (genome label, pipeline path, batch size, ...).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str
    t0_s: float
    wall_s: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    pid: int = 0

    kind = "span"


TelemetryEvent = (
    EvaluationEvent | GenerationEvent | PhaseEvent | FaultEvent | CheckpointEvent
    | InvariantEvent | QualificationEvent | StageEvent | MeasurementStatsEvent
    | ShardEvent | FleetEvent | SupervisorEvent | RegistryEvent | SpanEvent
)

#: Every concrete event class, keyed by its ``kind`` tag.  The telemetry
#: conformance suite iterates this registry so a new event kind cannot
#: ship without a golden schema, and the trace loader uses it to rebuild
#: typed events from JSONL rows.
EVENT_TYPES: dict = {
    cls.kind: cls
    for cls in (
        EvaluationEvent, GenerationEvent, PhaseEvent, FaultEvent,
        CheckpointEvent, InvariantEvent, QualificationEvent, StageEvent,
        MeasurementStatsEvent, ShardEvent, FleetEvent, SupervisorEvent,
        RegistryEvent, SpanEvent,
    )
}


def event_to_dict(event: TelemetryEvent) -> dict:
    payload = asdict(event)
    payload["kind"] = event.kind
    return payload


def event_from_dict(payload: dict) -> TelemetryEvent:
    """Rebuild the typed event a JSONL row was rendered from.

    Unknown keys are dropped (forward compatibility); an unknown
    ``kind`` raises ``KeyError`` — the caller decides whether to skip.
    """
    payload = dict(payload)
    cls = EVENT_TYPES[payload.pop("kind")]
    names = {f.name for f in dataclass_fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in names})


# ----------------------------------------------------------------------
# Observer protocol + sinks
# ----------------------------------------------------------------------
@runtime_checkable
class RunObserver(Protocol):
    """Anything that wants to watch a closed-loop run."""

    def on_event(self, event: TelemetryEvent) -> None: ...


class ConsoleObserver:
    """Narrates generations and phases to a stream (evaluations if verbose)."""

    def __init__(self, stream: IO[str] | None = None, *, verbose: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose

    def on_event(self, event: TelemetryEvent) -> None:
        if isinstance(event, GenerationEvent):
            self.stream.write(
                f"[gen {event.generation:3d}] best {event.best_fitness:.5f}  "
                f"mean {event.mean_fitness:.5f}  "
                f"new {event.batch_new}/{event.batch_size}  "
                f"{event.wall_s:.2f}s\n"
            )
        elif isinstance(event, PhaseEvent):
            detail = f" ({event.detail})" if event.detail else ""
            self.stream.write(f"[phase] {event.name}{detail}  {event.wall_s:.2f}s\n")
        elif isinstance(event, FaultEvent):
            # Quarantines always narrate (a genome just lost its fitness);
            # transient retried faults only in verbose mode.
            if event.action == "quarantine" or self.verbose:
                self.stream.write(
                    f"[fault/{event.action}] attempt {event.attempt}: "
                    f"{event.error}\n"
                )
        elif isinstance(event, CheckpointEvent):
            self.stream.write(
                f"[checkpoint] gen {event.generation:3d} -> {event.path}  "
                f"{event.wall_s * 1e3:.1f}ms\n"
            )
        elif isinstance(event, InvariantEvent):
            self.stream.write(
                f"[invariant/{event.layer}] {event.guard}: {event.error}\n"
            )
        elif isinstance(event, QualificationEvent):
            if event.axis == "verdict":
                self.stream.write(
                    f"[qualify] {event.stressmark}: {event.verdict} "
                    f"(robustness {event.retention:.2f})  {event.wall_s:.2f}s\n"
                )
            else:
                self.stream.write(
                    f"[qualify/{event.axis}] {event.samples} samples  droop "
                    f"[{event.min_droop_v * 1e3:.2f}, "
                    f"{event.max_droop_v * 1e3:.2f}] mV  "
                    f"retention {event.retention:.2f}\n"
                )
        elif isinstance(event, StageEvent):
            # Fallbacks (non-empty detail) always narrate; routine stage
            # timings only in verbose mode.
            if event.detail or self.verbose:
                path = f"/{event.path}" if event.path else ""
                batched = " (batched)" if event.batched else ""
                cached = " (cached)" if event.cache_hit else ""
                detail = f": {event.detail}" if event.detail else ""
                self.stream.write(
                    f"[stage/{event.stage}{path}]{batched}{cached} "
                    f"{event.wall_s * 1e3:.1f}ms{detail}\n"
                )
        elif isinstance(event, SupervisorEvent):
            # Supervision actions always narrate: a killed worker or a
            # salvaged checkpoint is exactly what an unattended-run log
            # must explain.
            task = f" {event.task}" if event.task else ""
            detail = f": {event.detail}" if event.detail else ""
            self.stream.write(
                f"[supervisor/{event.action}]{task}{detail}\n"
            )
        elif isinstance(event, RegistryEvent):
            # Publishes and salvages always narrate — a record entering
            # the library (or an index being rebuilt) is the registry's
            # whole story; dedups only in verbose mode.
            if event.deduped and not self.verbose:
                pass
            else:
                record = f" {event.record_id[:12]}" if event.record_id else ""
                dup = " (already published)" if event.deduped else ""
                detail = f": {event.detail}" if event.detail else ""
                self.stream.write(
                    f"[registry/{event.action}]{record}{dup}{detail}\n"
                )
        elif isinstance(event, ShardEvent):
            if event.status == "failed":
                self.stream.write(
                    f"[shard] {event.scenario}: FAILED (exit "
                    f"{event.exit_code}) {event.error}\n"
                )
            elif event.status == "ok":
                self.stream.write(
                    f"[shard] {event.scenario}: "
                    f"{event.droop_v * 1e3:.1f} mV  "
                    f"{event.evaluations} evals  {event.wall_s:.1f}s\n"
                )
            elif event.status == "banked":
                self.stream.write(
                    f"[shard] {event.scenario}: banked "
                    f"({event.droop_v * 1e3:.1f} mV)\n"
                )
            elif self.verbose:
                self.stream.write(f"[shard] {event.scenario}: started\n")
        elif isinstance(event, FleetEvent):
            failed = f", {event.failed} failed" if event.failed else ""
            detail = f"  ({event.detail})" if event.detail else ""
            self.stream.write(
                f"[fleet] {event.done}/{event.total} shards done{failed}, "
                f"{event.running} running  {event.wall_s:.1f}s{detail}\n"
            )
        elif isinstance(event, MeasurementStatsEvent):
            if self.verbose:
                source = f" ({event.source})" if event.source else ""
                self.stream.write(
                    f"[platform-stats]{source} "
                    f"{event.stats.get('measurements', 0)} measurements\n"
                )
        elif self.verbose and isinstance(event, EvaluationEvent):
            tag = "cache" if event.cached else event.backend
            self.stream.write(
                f"[eval/{tag}] {event.fitness:.5f}  {event.wall_s * 1e3:.1f}ms\n"
            )
        elif isinstance(event, SpanEvent):
            # Lost spans always narrate (a worker died holding them);
            # routine span closures only in verbose mode.
            if event.status == "lost" or self.verbose:
                self.stream.write(
                    f"[span/{event.status}] {event.name}  "
                    f"{event.wall_s * 1e3:.1f}ms\n"
                )
        self.stream.flush()


class RecentEventsObserver:
    """Keeps the last *limit* events (as dicts) for crash reports.

    The CLI installs one of these alongside the user-requested observers
    so an unhandled exception can dump the tail of the event stream into
    ``crash_report.json`` — the flight recorder of a failed run.
    """

    def __init__(self, limit: int = 100):
        from collections import deque

        self._events: deque = deque(maxlen=limit)

    def on_event(self, event: TelemetryEvent) -> None:
        self._events.append(event_to_dict(event))

    def tail(self) -> list[dict]:
        return list(self._events)


class JsonlObserver:
    """Appends one JSON object per event to a file (or open stream).

    ``flush_every`` batches writes: lines are buffered and flushed to the
    stream every N events (span-instrumented campaigns emit hundreds of
    events per generation, and a write+fsync per event is the single
    biggest observer cost).  The buffer is drained by :meth:`flush`,
    :meth:`close`, and — critically — by :class:`~repro.supervision
    .ShutdownCoordinator` when a SIGTERM / wall-clock drain begins, so
    the last generation's events survive a ``--max-wall-clock`` stop
    even if the process is killed before the CLI's ``finally`` runs.
    """

    def __init__(self, path_or_stream, *, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
        else:
            self._stream = open(path_or_stream, "a")
            self._owns = True
        self._flush_every = flush_every
        self._buffer: list[str] = []

    def on_event(self, event: TelemetryEvent) -> None:
        self._buffer.append(json.dumps(event_to_dict(event)) + "\n")
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._stream.write("".join(self._buffer))
            self._buffer.clear()
        self._stream.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JsonlObserver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class TelemetryCollector:
    """Aggregates events into the counters the summary table reports."""

    evaluations: int = 0
    cache_hits: int = 0
    eval_wall_s: float = 0.0
    generations: int = 0
    phases: dict = field(default_factory=dict)
    fault_retries: int = 0
    quarantines: int = 0
    timeouts: int = 0
    checkpoints: int = 0
    checkpoint_wall_s: float = 0.0
    invariant_violations: int = 0
    invariant_guards: dict = field(default_factory=dict)
    qualification_axes: int = 0
    qualification_wall_s: float = 0.0
    qualification_verdicts: dict = field(default_factory=dict)
    stage_wall_s: dict = field(default_factory=dict)
    stage_cache_hits: dict = field(default_factory=dict)
    stage_fallbacks: int = 0
    batched_solves: int = 0
    platform_stats: dict = field(default_factory=dict)
    shards_done: int = 0
    shards_failed: int = 0
    shards_banked: int = 0
    shard_wall_s: float = 0.0
    supervisor_hangs: int = 0
    supervisor_crashes: int = 0
    supervisor_respawns: int = 0
    supervisor_requeues: int = 0
    supervisor_give_ups: int = 0
    supervisor_salvages: int = 0
    shutdown_reason: str = ""
    registry_published: int = 0
    registry_deduped: int = 0
    registry_verified: int = 0
    registry_salvages: int = 0
    registry_wall_s: float = 0.0
    span_counts: dict = field(default_factory=dict)
    span_wall_s: dict = field(default_factory=dict)
    spans_lost: int = 0

    def on_event(self, event: TelemetryEvent) -> None:
        if isinstance(event, EvaluationEvent):
            if event.cached:
                self.cache_hits += 1
            else:
                self.evaluations += 1
                self.eval_wall_s += event.wall_s
        elif isinstance(event, GenerationEvent):
            self.generations += 1
        elif isinstance(event, PhaseEvent):
            self.phases[event.name] = self.phases.get(event.name, 0.0) + event.wall_s
        elif isinstance(event, FaultEvent):
            if event.action == "quarantine":
                self.quarantines += 1
            else:
                self.fault_retries += 1
            if event.timeout:
                self.timeouts += 1
        elif isinstance(event, CheckpointEvent):
            self.checkpoints += 1
            self.checkpoint_wall_s += event.wall_s
        elif isinstance(event, InvariantEvent):
            self.invariant_violations += 1
            key = f"{event.layer}/{event.guard}"
            self.invariant_guards[key] = self.invariant_guards.get(key, 0) + 1
        elif isinstance(event, QualificationEvent):
            if event.axis == "verdict":
                self.qualification_wall_s += event.wall_s
                self.qualification_verdicts[event.verdict] = (
                    self.qualification_verdicts.get(event.verdict, 0) + 1
                )
            else:
                self.qualification_axes += 1
        elif isinstance(event, StageEvent):
            self.stage_wall_s[event.stage] = (
                self.stage_wall_s.get(event.stage, 0.0) + event.wall_s
            )
            if event.cache_hit:
                self.stage_cache_hits[event.stage] = (
                    self.stage_cache_hits.get(event.stage, 0) + 1
                )
            if event.path == "transient" and event.detail:
                self.stage_fallbacks += 1
            if event.batched and event.stage == "pdn":
                self.batched_solves += 1
        elif isinstance(event, ShardEvent):
            if event.status == "ok":
                self.shards_done += 1
                self.shard_wall_s += event.wall_s
            elif event.status == "failed":
                self.shards_failed += 1
                self.shard_wall_s += event.wall_s
            elif event.status == "banked":
                self.shards_banked += 1
        elif isinstance(event, SupervisorEvent):
            if event.action == "hang-kill":
                self.supervisor_hangs += 1
            elif event.action == "crash":
                self.supervisor_crashes += 1
            elif event.action == "respawn":
                self.supervisor_respawns += 1
            elif event.action == "requeue":
                self.supervisor_requeues += 1
            elif event.action == "give-up":
                self.supervisor_give_ups += 1
            elif event.action == "salvage":
                self.supervisor_salvages += 1
            elif event.action == "shutdown":
                self.shutdown_reason = event.detail or event.action
        elif isinstance(event, RegistryEvent):
            self.registry_wall_s += event.wall_s
            if event.action == "publish":
                if event.deduped:
                    self.registry_deduped += 1
                else:
                    self.registry_published += 1
            elif event.action == "verify":
                self.registry_verified += 1
            elif event.action == "salvage":
                self.registry_salvages += 1
        elif isinstance(event, MeasurementStatsEvent):
            self.platform_stats = dict(event.stats)
        elif isinstance(event, SpanEvent):
            self.span_counts[event.name] = self.span_counts.get(event.name, 0) + 1
            self.span_wall_s[event.name] = (
                self.span_wall_s.get(event.name, 0.0) + event.wall_s
            )
            if event.status == "lost":
                self.spans_lost += 1

    # ------------------------------------------------------------------
    def merge(self, other: "TelemetryCollector") -> "TelemetryCollector":
        """Fold *other*'s counters into this collector, in place.

        The merge is commutative and associative over the counter fields
        (ints and wall-times sum, per-key dicts sum) so aggregating
        per-worker or per-shard collectors in any completion order yields
        the same totals.  ``shutdown_reason`` keeps the lexicographically
        smallest non-empty reason and ``platform_stats`` sums per key —
        both order-independent by construction.
        """
        for spec in dataclass_fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, bool) or isinstance(theirs, bool):
                continue
            if isinstance(mine, (int, float)):
                setattr(self, spec.name, mine + theirs)
            elif isinstance(mine, dict):
                for key, value in theirs.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        mine[key] = mine.get(key, 0) + value
                    elif key not in mine:
                        mine[key] = value
        reasons = sorted(r for r in (self.shutdown_reason, other.shutdown_reason) if r)
        self.shutdown_reason = reasons[0] if reasons else ""
        return self

    def counter_snapshot(self) -> dict:
        """The deterministic counters only — no wall-clock, no rates.

        A seeded campaign must produce an identical snapshot whether it
        ran serially or under ``--workers N``; the telemetry-merge tests
        assert exactly this.
        """
        snapshot: dict = {}
        for spec in dataclass_fields(self):
            if spec.name.endswith("_wall_s") or spec.name in (
                "phases", "platform_stats", "shutdown_reason",
            ):
                continue
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                snapshot[spec.name] = {
                    key: value[key] for key in sorted(value)
                    if not str(key).endswith("_s")
                }
            else:
                snapshot[spec.name] = value
        return snapshot

    # ------------------------------------------------------------------
    @property
    def fitness_requests(self) -> int:
        return self.evaluations + self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        total = self.fitness_requests
        return self.cache_hits / total if total else 0.0

    @property
    def evals_per_second(self) -> float:
        return self.evaluations / self.eval_wall_s if self.eval_wall_s > 0 else 0.0

    def summary_table(self, platform_stats=None) -> str:
        """The ``repro bench-evals`` report: throughput, caches, time split.

        ``platform_stats`` is a :class:`repro.core.platform.MeasurementStats`
        (or None when the run used a non-instrumented backend).
        """
        rows: list[tuple] = [
            ("fitness evaluations", self.evaluations),
            ("fitness cache hits", self.cache_hits),
            ("fitness cache hit rate", f"{self.cache_hit_rate * 100:.1f} %"),
            ("evaluation wall time", f"{self.eval_wall_s:.2f} s"),
            ("evaluations / second", f"{self.evals_per_second:.1f}"),
            ("generations", self.generations),
            ("fault retries", self.fault_retries),
            ("quarantined genomes", self.quarantines),
        ]
        if self.timeouts:
            rows.append(("evaluation timeouts", self.timeouts))
        if self.invariant_violations:
            rows.append(("invariant violations", self.invariant_violations))
            for key, count in sorted(self.invariant_guards.items()):
                rows.append((f"  guard {key}", count))
        if self.qualification_verdicts:
            verdicts = ", ".join(
                f"{v}: {n}" for v, n in sorted(self.qualification_verdicts.items())
            )
            rows.append(("qualification verdicts", verdicts))
            rows.append(("qualification axes", self.qualification_axes))
            rows.append(
                ("qualification wall time", f"{self.qualification_wall_s:.2f} s")
            )
        if self.shards_done or self.shards_failed or self.shards_banked:
            rows.append(("fleet shards completed", self.shards_done))
            if self.shards_banked:
                rows.append(("fleet shards banked", self.shards_banked))
            if self.shards_failed:
                rows.append(("fleet shards failed", self.shards_failed))
            rows.append(("fleet shard wall time", f"{self.shard_wall_s:.2f} s"))
        supervised = (self.supervisor_hangs + self.supervisor_crashes
                      + self.supervisor_respawns + self.supervisor_salvages
                      + self.supervisor_give_ups)
        if supervised or self.shutdown_reason:
            rows.append(("supervisor: hung tasks killed", self.supervisor_hangs))
            rows.append(("supervisor: worker crashes", self.supervisor_crashes))
            rows.append(("supervisor: pool respawns", self.supervisor_respawns))
            if self.supervisor_requeues:
                rows.append(("supervisor: tasks requeued", self.supervisor_requeues))
            if self.supervisor_give_ups:
                rows.append(("supervisor: tasks given up", self.supervisor_give_ups))
            if self.supervisor_salvages:
                rows.append(("supervisor: checkpoints salvaged",
                             self.supervisor_salvages))
            if self.shutdown_reason:
                rows.append(("graceful shutdown", self.shutdown_reason))
        if (self.registry_published or self.registry_deduped
                or self.registry_verified or self.registry_salvages):
            rows.append(("registry records published", self.registry_published))
            if self.registry_deduped:
                rows.append(("registry records deduplicated", self.registry_deduped))
            if self.registry_verified:
                rows.append(("registry records verified", self.registry_verified))
            if self.registry_salvages:
                rows.append(("registry indexes salvaged", self.registry_salvages))
            rows.append(("registry wall time", f"{self.registry_wall_s:.2f} s"))
        if self.checkpoints:
            rows.append(("checkpoints written", self.checkpoints))
            rows.append(
                ("checkpoint wall time", f"{self.checkpoint_wall_s:.2f} s")
            )
        for name, wall in sorted(self.phases.items()):
            rows.append((f"phase: {name}", f"{wall:.2f} s"))
        for name, wall in sorted(self.stage_wall_s.items()):
            hits = self.stage_cache_hits.get(name, 0)
            cached = f" ({hits} cached)" if hits else ""
            rows.append((f"stage: {name}", f"{wall:.2f} s{cached}"))
        if self.span_counts:
            rows.append(("trace spans", sum(self.span_counts.values())))
            if self.spans_lost:
                rows.append(("trace spans lost", self.spans_lost))
        if self.stage_fallbacks:
            rows.append(("transient fallbacks", self.stage_fallbacks))
        if self.batched_solves:
            rows.append(("batched PDN solves", self.batched_solves))
        if platform_stats is not None:
            s = platform_stats
            module_total = s.module_runs + s.module_cache_hits
            trace_rate = s.module_cache_hits / module_total if module_total else 0.0
            rows += [
                ("platform measurements", s.measurements),
                ("module-simulator runs", s.module_runs),
                ("module-trace cache hits", s.module_cache_hits),
                ("module-trace hit rate", f"{trace_rate * 100:.1f} %"),
                ("module-simulator time", f"{s.sim_time_s:.2f} s"),
                ("PDN-solve time", f"{s.pdn_time_s:.2f} s"),
                ("path: periodic", s.periodic_measurements),
                ("path: jittered (SMT)", s.jittered_measurements),
                ("path: transient", s.transient_measurements),
            ]
            if s.profile_cache_hits or s.pdn_cache_hits:
                rows.append(("activity-profile cache hits", s.profile_cache_hits))
                rows.append(("PDN-response cache hits", s.pdn_cache_hits))
            if s.batched_solves:
                rows.append(
                    ("batched PDN rows",
                     f"{s.batched_rows} in {s.batched_solves} solves")
                )
        return format_kv_table(rows, title="run telemetry")


def notify(observers, event: TelemetryEvent) -> None:
    """Fan one event out to every observer (helper shared by emitters)."""
    for observer in observers:
        observer.on_event(event)
