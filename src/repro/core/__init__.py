"""AUDIT core: the paper's contribution — closed-loop stressmark generation.

* :class:`~repro.core.platform.MeasurementPlatform` — the "Measure HW" box.
* :class:`~repro.core.audit.AuditRunner` — the full Fig. 5 loop.
* :mod:`~repro.core.dithering` — exact/approximate thread alignment.
* :mod:`~repro.core.resonance` — automatic resonance detection.
"""

from repro.core.audit import AuditConfig, AuditResult, AuditRunner, StressmarkMode
from repro.core.codegen import genome_to_kernel, genome_to_program
from repro.core.cost import DroopPerPowerCost, MaxDroopCost, SensitivePathCost
from repro.core.dithering import (
    DitherSchedule,
    alignment_sweep_cycles,
    alignment_sweep_seconds,
    dither_schedules,
    droop_for_alignment,
    encode_dithered_program,
    visited_alignments,
    worst_case_alignment,
)
from repro.core.ga import GaConfig, GaResult, GenerationStats, GeneticAlgorithm
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.core.platform import Measurement, MeasurementPlatform
from repro.core.resonance import (
    ResonancePoint,
    ResonanceSweepResult,
    find_resonance,
    probe_program,
)

__all__ = [
    "AuditConfig",
    "AuditResult",
    "AuditRunner",
    "DitherSchedule",
    "DroopPerPowerCost",
    "GaConfig",
    "GaResult",
    "GenerationStats",
    "GeneticAlgorithm",
    "GenomeSpace",
    "MaxDroopCost",
    "Measurement",
    "MeasurementPlatform",
    "ResonancePoint",
    "ResonanceSweepResult",
    "SensitivePathCost",
    "StressmarkGenome",
    "StressmarkMode",
    "alignment_sweep_cycles",
    "alignment_sweep_seconds",
    "dither_schedules",
    "droop_for_alignment",
    "encode_dithered_program",
    "find_resonance",
    "genome_to_kernel",
    "genome_to_program",
    "probe_program",
    "visited_alignments",
    "worst_case_alignment",
]
