"""AUDIT core: the paper's contribution — closed-loop stressmark generation.

* :class:`~repro.core.platform.MeasurementPlatform` — the "Measure HW" box
  over a pluggable :class:`~repro.core.platform.MeasurementBackend`.
* :class:`~repro.core.engine.EvaluationEngine` — batched, cached, observable
  genome fitness with serial/process-pool executors.
* :class:`~repro.core.audit.AuditRunner` — the full Fig. 5 loop.
* :mod:`~repro.core.telemetry` — run observers (console/JSONL/collector).
* :mod:`~repro.core.dithering` — exact/approximate thread alignment.
* :mod:`~repro.core.resonance` — automatic resonance detection.
"""

from repro.core.audit import (
    AuditConfig,
    AuditResult,
    AuditRunner,
    CampaignQualification,
    StressmarkMode,
)
from repro.core.checkpoint import (
    CampaignCheckpoint,
    CampaignState,
    rng_from_state,
    rng_state_to_jsonable,
    validate_campaign_meta,
)
from repro.core.codegen import genome_to_kernel, genome_to_program
from repro.core.cost import DroopPerPowerCost, MaxDroopCost, SensitivePathCost
from repro.core.dithering import (
    DitherSchedule,
    alignment_sweep_cycles,
    alignment_sweep_seconds,
    dither_schedules,
    droop_for_alignment,
    encode_dithered_program,
    visited_alignments,
    worst_case_alignment,
)
from repro.core.engine import (
    EvaluationEngine,
    ParallelExecutor,
    SerialExecutor,
    StressmarkFitness,
    make_executor,
)
from repro.core.faults import (
    EvalOutcome,
    FaultInjectingBackend,
    FaultInjectionConfig,
    FaultPolicy,
    GuardedFitness,
    fault_record_from,
)
from repro.core.ga import GaConfig, GaResult, GaSnapshot, GenerationStats, GeneticAlgorithm
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.core.platform import (
    Measurement,
    MeasurementBackend,
    MeasurementPlatform,
    MeasurementStats,
    SimulatorBackend,
)
from repro.core.qualify import (
    ARTIFACT,
    FRAGILE,
    NOMINAL,
    PASS,
    AxisDistribution,
    Perturbation,
    QualificationCheckpoint,
    QualificationFitness,
    QualificationReport,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.core.resonance import (
    ResonancePoint,
    ResonanceSweepResult,
    find_resonance,
    probe_program,
)
from repro.core.telemetry import (
    CheckpointEvent,
    ConsoleObserver,
    EvaluationEvent,
    FaultEvent,
    GenerationEvent,
    InvariantEvent,
    JsonlObserver,
    PhaseEvent,
    QualificationEvent,
    RecentEventsObserver,
    RunObserver,
    TelemetryCollector,
)

__all__ = [
    "ARTIFACT",
    "AuditConfig",
    "AuditResult",
    "AuditRunner",
    "AxisDistribution",
    "CampaignCheckpoint",
    "CampaignQualification",
    "CampaignState",
    "CheckpointEvent",
    "ConsoleObserver",
    "EvalOutcome",
    "FRAGILE",
    "FaultEvent",
    "FaultInjectingBackend",
    "FaultInjectionConfig",
    "FaultPolicy",
    "GaSnapshot",
    "GuardedFitness",
    "DitherSchedule",
    "DroopPerPowerCost",
    "EvaluationEngine",
    "EvaluationEvent",
    "GaConfig",
    "GaResult",
    "GenerationEvent",
    "GenerationStats",
    "GeneticAlgorithm",
    "GenomeSpace",
    "InvariantEvent",
    "JsonlObserver",
    "MaxDroopCost",
    "Measurement",
    "MeasurementBackend",
    "MeasurementPlatform",
    "MeasurementStats",
    "NOMINAL",
    "PASS",
    "ParallelExecutor",
    "Perturbation",
    "PhaseEvent",
    "QualificationCheckpoint",
    "QualificationEvent",
    "QualificationFitness",
    "QualificationReport",
    "QualifyConfig",
    "RecentEventsObserver",
    "ResonancePoint",
    "ResonanceSweepResult",
    "RunObserver",
    "SensitivePathCost",
    "SerialExecutor",
    "SimulatorBackend",
    "StressmarkFitness",
    "StressmarkGenome",
    "StressmarkMode",
    "StressmarkQualifier",
    "TelemetryCollector",
    "fault_record_from",
    "make_executor",
    "rng_from_state",
    "rng_state_to_jsonable",
    "validate_campaign_meta",
    "alignment_sweep_cycles",
    "alignment_sweep_seconds",
    "dither_schedules",
    "droop_for_alignment",
    "encode_dithered_program",
    "find_resonance",
    "genome_to_kernel",
    "genome_to_program",
    "probe_program",
    "visited_alignments",
    "worst_case_alignment",
]
