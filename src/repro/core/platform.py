"""The measurement platform: AUDIT's closed-loop "Measure HW" box.

This is the only place where AUDIT touches the machine (paper Fig. 5): a
candidate stressmark goes in, a voltage measurement comes out.  On the
paper's testbed that box is a processor board plus an oscilloscope; here it
is the chip model (:mod:`repro.uarch`) feeding the PDN solver
(:mod:`repro.pdn`).  The seam is explicit: anything implementing the
:class:`MeasurementBackend` protocol — including one that runs NASM output
on real silicon — drops into :class:`MeasurementPlatform` unchanged, and
nothing above this layer knows which backend it is talking to.

The measurement itself runs as the staged pipeline in
:mod:`repro.pipeline`: compile (thread placement) → activity (module
simulation + periodicity verification) → pdn (steady-state/transient
solve) → analyze (droop/sensitivity assembly), with per-stage caches
keyed by artifact content hashes and per-stage timing telemetry.
:class:`SimulatorBackend` remains the compatibility facade over that
pipeline — its public surface (``chip_sim``, ``solver_at``, ``stats`` …)
is unchanged, so existing tests, checkpoints, and experiment harnesses
keep working.

Measurement strategy
--------------------

Stressmark loops reach a steady periodic state; the activity stage
extracts the verified per-period profile from the module simulator and
the PDN stage evaluates the *exact periodic steady state* — the droop
after the resonance has fully built up (M iterations in the paper's
notation).  Thread/module phase offsets are applied by rolling the
periodic profiles, which is what makes dithering sweeps and GA fitness
cheap.  Runs that never become periodic (e.g. heterogeneous threads
fighting over the shared FPU) fall back to a long time-domain transient,
and the pipeline emits a ``StageEvent`` naming the reason.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.kernels import ThreadProgram
from repro.pdn.elements import PdnParameters
from repro.pipeline.artifacts import Measurement, MeasureRequest
from repro.pipeline.pipeline import MeasurementPipeline
from repro.pipeline.stages import (
    DEFAULT_JITTER_SEED,
    DEFAULT_WARMUP_ITERATIONS,
    FALLBACK_TILE_CYCLES,
    IDLE_PAD_CYCLES,
    PdnStage,
)
from repro.power.trace import CurrentTrace
from repro.uarch.config import ChipConfig
from repro.validation.invariants import check_measurement

__all__ = [
    "DEFAULT_JITTER_SEED",
    "DEFAULT_WARMUP_ITERATIONS",
    "FALLBACK_TILE_CYCLES",
    "IDLE_PAD_CYCLES",
    "Measurement",
    "MeasurementBackend",
    "MeasurementPlatform",
    "MeasurementStats",
    "SimulatorBackend",
]


@dataclass(frozen=True)
class MeasurementStats:
    """Aggregate counters a platform accumulates over its lifetime."""

    measurements: int = 0
    module_runs: int = 0
    module_cache_hits: int = 0
    sim_time_s: float = 0.0
    pdn_time_s: float = 0.0
    periodic_measurements: int = 0
    jittered_measurements: int = 0
    transient_measurements: int = 0
    profile_cache_hits: int = 0
    pdn_cache_hits: int = 0
    batched_solves: int = 0
    batched_rows: int = 0
    stage_compile_s: float = 0.0
    stage_activity_s: float = 0.0
    stage_pdn_s: float = 0.0
    stage_analyze_s: float = 0.0

    def merge(self, other: "MeasurementStats") -> "MeasurementStats":
        """Sum of two platforms' counters, routed through the shared
        :class:`~repro.obs.metrics.MetricsRegistry` so every counter path
        in the codebase merges with one (order-independent) semantics."""
        merged = self.to_metrics().merge(other.to_metrics())
        return MeasurementStats.from_metrics(merged)

    def delta(self, baseline: "MeasurementStats") -> "MeasurementStats":
        """Field-wise difference — the work done since *baseline*."""
        return MeasurementStats(**{
            f.name: getattr(self, f.name) - getattr(baseline, f.name)
            for f in fields(self)
        })

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_metrics(self):
        """Project into the shared metrics registry (``platform.*``)."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for spec in fields(self):
            registry.inc(f"platform.{spec.name}", getattr(self, spec.name))
        return registry

    @classmethod
    def from_metrics(cls, registry) -> "MeasurementStats":
        """Rebuild from a registry produced by :meth:`to_metrics`."""
        values = {}
        for spec in fields(cls):
            value = registry.counter(f"platform.{spec.name}", 0)
            values[spec.name] = int(value) if str(spec.type) == "int" else float(value)
        return cls(**values)


@runtime_checkable
class MeasurementBackend(Protocol):
    """The swap-in-real-silicon seam of paper Fig. 5.

    A backend knows *how* to turn a program into a voltage measurement —
    cycle-level simulation here, a board plus oscilloscope on the paper's
    testbed.  It must describe the machine it measures (``chip``) so the
    layers above can size genomes, place threads, and filter opcodes, but
    nothing above the platform may assume a simulator is underneath.
    """

    chip: ChipConfig

    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement: ...

    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement: ...


class SimulatorBackend:
    """The software testbed: chip model + PDN solver (the default backend).

    A thin facade over :class:`~repro.pipeline.pipeline.MeasurementPipeline`.
    Pass ``share_stages_with=`` another simulator backend to reuse its
    activity stage (chip simulator + profile cache) and counter ledger —
    the qualifier's perturbed-PDN platforms do this so chip-simulation
    work is performed and counted exactly once.
    """

    JITTER_REPETITIONS = PdnStage.JITTER_REPETITIONS
    JITTER_STEP_CYCLES = PdnStage.JITTER_STEP_CYCLES

    def __init__(
        self,
        chip: ChipConfig,
        pdn: PdnParameters,
        *,
        warmup_iterations: int = DEFAULT_WARMUP_ITERATIONS,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        jitter_step_cycles: int | None = None,
        share_stages_with: "SimulatorBackend | None" = None,
    ):
        activity = counters = None
        if share_stages_with is not None:
            activity = share_stages_with.pipeline.activity
            counters = share_stages_with.pipeline.counters
        self.chip = chip
        self.pipeline = MeasurementPipeline(
            chip, pdn,
            warmup_iterations=warmup_iterations,
            jitter_seed=jitter_seed,
            jitter_step_cycles=jitter_step_cycles,
            activity=activity,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Simulator surface (stable across the pipeline refactor)
    # ------------------------------------------------------------------
    @property
    def pdn(self) -> PdnParameters:
        return self.pipeline.pdn_stage.pdn

    @property
    def warmup_iterations(self) -> int:
        return self.pipeline.activity.warmup_iterations

    @property
    def jitter_seed(self) -> int:
        return self.pipeline.pdn_stage.jitter_seed

    @property
    def jitter_step_cycles(self) -> int:
        return self.pipeline.pdn_stage.jitter_step_cycles

    @property
    def chip_sim(self):
        return self.pipeline.activity.chip_sim

    @chip_sim.setter
    def chip_sim(self, value) -> None:
        self.pipeline.activity.chip_sim = value

    def solver_at(self, supply_v: float):
        return self.pipeline.pdn_stage.solver_at(supply_v)

    def _current_from_energy(self, energy_pj, *, active_threads, supply_v):
        return self.pipeline.pdn_stage.current_from_energy(
            energy_pj, active_threads=active_threads, supply_v=supply_v
        )

    def _idle_module_current(self) -> float:
        return self.pipeline.pdn_stage.idle_module_current()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> MeasurementStats:
        sim = self.chip_sim
        c = self.pipeline.counters
        return MeasurementStats(
            measurements=c.measurements,
            module_runs=sim.module_runs,
            module_cache_hits=sim.module_cache_hits,
            sim_time_s=sim.sim_time_s,
            pdn_time_s=c.pdn_time_s,
            periodic_measurements=c.path_counts["periodic"],
            jittered_measurements=c.path_counts["jittered"],
            transient_measurements=c.path_counts["transient"],
            profile_cache_hits=c.profile_cache_hits,
            pdn_cache_hits=c.pdn_cache_hits,
            batched_solves=c.batched_solves,
            batched_rows=c.batched_rows,
            stage_compile_s=c.stage_wall_s.get("compile", 0.0),
            stage_activity_s=c.stage_wall_s.get("activity", 0.0),
            stage_pdn_s=c.stage_wall_s.get("pdn", 0.0),
            stage_analyze_s=c.stage_wall_s.get("analyze", 0.0),
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement:
        """Measure a homogeneous *threads*-way run of *program*.

        Threads are placed by the paper's spread-first policy.
        ``module_phases`` circularly shifts each module's periodic activity
        (the dithering alignment vector; default all-aligned, which is the
        dithering algorithm's guaranteed worst case for identical modules).
        ``supply_v`` re-measures at a reduced supply for failure sweeps.

        When a module runs **two** SMT threads, the second starts
        ``smt_phase_cycles`` after the first (default: half the thread's
        solo loop period).  Dithering aligns *modules*, not SMT siblings —
        the paper's 8T runs show exactly this: shared-FPU interference
        "shifts the loop lengths, making it difficult to align the first
        droop excitation across the threads" (Section V.A.2).  Pass 0 to
        force lockstep siblings.
        """
        return self.pipeline.measure(MeasureRequest(
            program=program,
            threads=threads,
            module_phases=(
                tuple(module_phases) if module_phases is not None else None
            ),
            supply_v=supply_v,
            smt_phase_cycles=smt_phase_cycles,
        ))

    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement:
        """Measure an externally generated chip-current waveform.

        Used by the synthetic benchmark models, whose activity is produced
        statistically rather than by the pipeline scheduler.
        """
        return self.pipeline.measure_current(
            current,
            sensitivity=sensitivity,
            supply_v=supply_v,
            baseline_current_a=baseline_current_a,
        )


class MeasurementPlatform:
    """Closed-loop measurement of programs on a pluggable backend.

    The two-argument form ``MeasurementPlatform(chip, pdn)`` builds the
    default :class:`SimulatorBackend` (the software testbed).  Passing
    ``backend=`` instead plugs in any :class:`MeasurementBackend` — the
    paper's real-silicon path.  The facade validates arguments and keeps
    the run-telemetry counters; simulator internals (``chip_sim``,
    ``solver_at``, ``pdn``) remain reachable for the experiment harnesses
    that introspect the software testbed.
    """

    def __init__(
        self,
        chip: ChipConfig | None = None,
        pdn: PdnParameters | None = None,
        *,
        warmup_iterations: int = DEFAULT_WARMUP_ITERATIONS,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        jitter_step_cycles: int | None = None,
        backend: MeasurementBackend | None = None,
    ):
        if backend is None:
            if chip is None or pdn is None:
                raise ConfigurationError(
                    "MeasurementPlatform needs either (chip, pdn) or backend="
                )
            backend = SimulatorBackend(
                chip, pdn,
                warmup_iterations=warmup_iterations,
                jitter_seed=jitter_seed,
                jitter_step_cycles=jitter_step_cycles,
            )
        elif chip is not None or pdn is not None:
            raise ConfigurationError(
                "pass either (chip, pdn) or backend=, not both"
            )
        self.backend = backend
        self._worker_stats: MeasurementStats | None = None

    # ------------------------------------------------------------------
    # Machine description + simulator internals (when present)
    # ------------------------------------------------------------------
    @property
    def chip(self) -> ChipConfig:
        return self.backend.chip

    def _simulator_attr(self, name: str):
        # Walk wrapper backends (fault injection, instrumentation shims):
        # anything exposing ``inner`` delegates what it does not override,
        # so the experiment harnesses keep working on a wrapped simulator.
        backend = self.backend
        while backend is not None:
            try:
                return getattr(backend, name)
            except AttributeError:
                backend = getattr(backend, "inner", None)
        raise ConfigurationError(
            f"{name!r} requires the simulator backend; "
            f"{type(self.backend).__name__} does not provide it"
        )

    @property
    def pdn(self):
        return self._simulator_attr("pdn")

    @property
    def chip_sim(self):
        return self._simulator_attr("chip_sim")

    @property
    def pipeline(self) -> MeasurementPipeline:
        return self._simulator_attr("pipeline")

    @property
    def warmup_iterations(self) -> int:
        return self._simulator_attr("warmup_iterations")

    @property
    def jitter_seed(self) -> int:
        return self._simulator_attr("jitter_seed")

    def solver_at(self, supply_v: float):
        return self._simulator_attr("solver_at")(supply_v)

    def _current_from_energy(self, energy_pj, *, active_threads, supply_v):
        return self._simulator_attr("_current_from_energy")(
            energy_pj, active_threads=active_threads, supply_v=supply_v
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> MeasurementStats:
        stats_fn = getattr(self.backend, "stats", None)
        if stats_fn is None:
            stats = MeasurementStats(measurements=self._fallback_measurements)
        else:
            stats = stats_fn()
        if self._worker_stats is not None:
            stats = stats.merge(self._worker_stats)
        return stats

    _fallback_measurements = 0

    def absorb_worker_stats(self, delta: MeasurementStats) -> None:
        """Bank a stats delta measured on a worker-process platform.

        Parallel executors evaluate on per-worker platform replicas whose
        counters die with the pool; the engine ships each evaluation's
        delta back here so :meth:`stats` reports campaign-wide totals.
        """
        if not isinstance(delta, MeasurementStats):
            return
        if self._worker_stats is None:
            self._worker_stats = delta
        else:
            self._worker_stats = self._worker_stats.merge(delta)

    def attach_observers(self, observers) -> None:
        """Route pipeline stage telemetry to *observers* (no-op for
        backends without a pipeline)."""
        try:
            pipeline = self._simulator_attr("pipeline")
        except ConfigurationError:
            return
        pipeline.observers = tuple(observers)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def supports_batch_measure(self) -> bool:
        return getattr(self.backend, "measure_programs", None) is not None

    def _validate_program_args(self, threads: int, supply_v: float | None):
        chip = self.backend.chip
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if threads > chip.total_threads:
            raise ConfigurationError(
                f"threads must be <= {chip.total_threads} "
                f"({chip.module.threads} per module x {chip.module_count} "
                f"modules on {chip.name})"
            )
        if supply_v is not None and supply_v <= 0:
            raise ConfigurationError("supply voltage must be positive")

    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement:
        """Measure a homogeneous *threads*-way run of *program*.

        See :meth:`SimulatorBackend.measure_program` for parameter
        semantics; validation happens here so every backend gets the same
        contract.
        """
        self._validate_program_args(threads, supply_v)
        if not hasattr(self.backend, "stats"):
            self._fallback_measurements += 1
        measurement = self.backend.measure_program(
            program,
            threads,
            module_phases=module_phases,
            supply_v=supply_v,
            smt_phase_cycles=smt_phase_cycles,
        )
        check_measurement(measurement)
        return measurement

    def measure_programs(self, requests) -> list[Measurement]:
        """Measure a batch of :class:`MeasureRequest`\\ s.

        Dispatches to the backend's vectorized ``measure_programs`` when
        it has one (see :class:`repro.pipeline.batch.BatchMeasurementBackend`),
        else falls back to a serial loop — either way the results match
        per-request :meth:`measure_program` calls bit for bit.
        """
        requests = list(requests)
        for request in requests:
            self._validate_program_args(request.threads, request.supply_v)
        batch_fn = getattr(self.backend, "measure_programs", None)
        if batch_fn is not None:
            measurements = batch_fn(requests)
        else:
            if not hasattr(self.backend, "stats"):
                self._fallback_measurements += len(requests)
            measurements = [
                self.backend.measure_program(
                    request.program,
                    request.threads,
                    module_phases=(
                        list(request.module_phases)
                        if request.module_phases is not None else None
                    ),
                    supply_v=request.supply_v,
                    smt_phase_cycles=request.smt_phase_cycles,
                )
                for request in requests
            ]
        for measurement in measurements:
            check_measurement(measurement)
        return measurements

    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement:
        """Measure an externally generated chip-current waveform."""
        if supply_v is not None and supply_v <= 0:
            raise ConfigurationError("supply voltage must be positive")
        if not hasattr(self.backend, "stats"):
            self._fallback_measurements += 1
        measurement = self.backend.measure_current(
            current,
            sensitivity=sensitivity,
            supply_v=supply_v,
            baseline_current_a=baseline_current_a,
        )
        check_measurement(measurement)
        return measurement
