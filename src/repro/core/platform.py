"""The measurement platform: AUDIT's closed-loop "Measure HW" box.

This is the only place where AUDIT touches the machine (paper Fig. 5): a
candidate stressmark goes in, a voltage measurement comes out.  On the
paper's testbed that box is a processor board plus an oscilloscope; here it
is the chip model (:mod:`repro.uarch`) feeding the PDN solver
(:mod:`repro.pdn`).  The seam is now explicit: anything implementing the
:class:`MeasurementBackend` protocol — including one that runs NASM output
on real silicon — drops into :class:`MeasurementPlatform` unchanged, and
nothing above this layer knows which backend it is talking to.

The platform facade adds what every backend needs regardless of substrate:
argument validation (thread counts, supply voltages), measurement counting,
and aggregate :class:`MeasurementStats` for run telemetry.  The default
:class:`SimulatorBackend` additionally reuses module-simulator traces across
measurements (failure sweeps at many ``supply_v`` values and dithering/phase
scans re-solve only the PDN, never the pipeline) and accounts its time split
between the module simulator and the PDN solve.

Measurement strategy
--------------------

Stressmark loops reach a steady periodic state; the backend extracts the
verified per-period activity profile from the module simulator and evaluates
the PDN's *exact periodic steady state* — the droop after the resonance has
fully built up (M iterations in the paper's notation).  Thread/module phase
offsets are applied by rolling the periodic profiles, which is what makes
dithering sweeps and GA fitness cheap.  Runs that never become periodic
(e.g. heterogeneous threads fighting over the shared FPU) fall back to a
long time-domain transient.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.isa.kernels import ThreadProgram
from repro.osmodel.affinity import spread_placement
from repro.pdn.elements import PdnParameters
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver, VoltageTrace
from repro.power.trace import CurrentTrace
from repro.uarch.chip import ChipSimulator
from repro.uarch.config import ChipConfig
from repro.validation.invariants import check_measurement

#: Iterations simulated per module run: enough for any kernel that will
#: stabilise to do so and leave >= 3 repetitions for verification.
DEFAULT_WARMUP_ITERATIONS = 48

#: Cycles of idle machine prepended on the transient fallback path.
IDLE_PAD_CYCLES = 512

#: Periods of steady activity tiled on the transient fallback path.
FALLBACK_TILE_CYCLES = 20_000

#: Default seed of the SMT loop-phase random walk (kept stable so seed
#: benches reproduce; configurable via ``MeasurementPlatform(jitter_seed=)``).
DEFAULT_JITTER_SEED = 0xD17D7


@dataclass(frozen=True)
class Measurement:
    """One platform measurement of a running program or workload."""

    voltage: VoltageTrace
    sensitivity: np.ndarray
    current: CurrentTrace
    period_cycles: int | None
    supply_v: float
    iteration_cycles: float | None = None
    """Average cycles per loop iteration (may be fractional); the loop's
    fundamental repetition rate.  ``period_cycles`` is the exactly-repeating
    activity window, which can span several iterations."""

    @property
    def max_droop_v(self) -> float:
        return self.voltage.max_droop_v

    @property
    def max_overshoot_v(self) -> float:
        return self.voltage.max_overshoot_v

    @property
    def mean_current_a(self) -> float:
        return self.current.mean_a

    @property
    def mean_power_w(self) -> float:
        return self.mean_current_a * self.supply_v

    @property
    def steady_frequency_hz(self) -> float | None:
        """Fundamental (per-iteration) frequency of the activity, if periodic."""
        if self.iteration_cycles is not None:
            return 1.0 / (self.iteration_cycles * self.current.dt)
        if self.period_cycles is None:
            return None
        return 1.0 / (self.period_cycles * self.current.dt)


@dataclass(frozen=True)
class MeasurementStats:
    """Aggregate counters a platform accumulates over its lifetime."""

    measurements: int = 0
    module_runs: int = 0
    module_cache_hits: int = 0
    sim_time_s: float = 0.0
    pdn_time_s: float = 0.0
    periodic_measurements: int = 0
    jittered_measurements: int = 0
    transient_measurements: int = 0


@runtime_checkable
class MeasurementBackend(Protocol):
    """The swap-in-real-silicon seam of paper Fig. 5.

    A backend knows *how* to turn a program into a voltage measurement —
    cycle-level simulation here, a board plus oscilloscope on the paper's
    testbed.  It must describe the machine it measures (``chip``) so the
    layers above can size genomes, place threads, and filter opcodes, but
    nothing above the platform may assume a simulator is underneath.
    """

    chip: ChipConfig

    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement: ...

    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement: ...


class SimulatorBackend:
    """The software testbed: chip model + PDN solver (the default backend)."""

    def __init__(
        self,
        chip: ChipConfig,
        pdn: PdnParameters,
        *,
        warmup_iterations: int = DEFAULT_WARMUP_ITERATIONS,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        jitter_step_cycles: int | None = None,
    ):
        if abs(pdn.vdd_nominal - chip.vdd) > 1e-9:
            raise ConfigurationError(
                "PDN nominal voltage must match the chip supply "
                f"({pdn.vdd_nominal} != {chip.vdd})"
            )
        if warmup_iterations < 8:
            raise ConfigurationError("warmup_iterations must be >= 8")
        self.chip = chip
        self.pdn = pdn
        self.warmup_iterations = warmup_iterations
        self.jitter_seed = jitter_seed
        if jitter_step_cycles is None:
            jitter_step_cycles = self.JITTER_STEP_CYCLES
        if jitter_step_cycles < 0:
            raise ConfigurationError("jitter_step_cycles must be >= 0")
        self.jitter_step_cycles = jitter_step_cycles
        self.chip_sim = ChipSimulator(chip)
        self._solvers: dict[float, TransientSolver] = {}
        self._pdn_time_s = 0.0
        self._path_counts = {"periodic": 0, "jittered": 0, "transient": 0}
        self._measurements = 0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> MeasurementStats:
        sim = self.chip_sim
        return MeasurementStats(
            measurements=self._measurements,
            module_runs=sim.module_runs,
            module_cache_hits=sim.module_cache_hits,
            sim_time_s=sim.sim_time_s,
            pdn_time_s=self._pdn_time_s,
            periodic_measurements=self._path_counts["periodic"],
            jittered_measurements=self._path_counts["jittered"],
            transient_measurements=self._path_counts["transient"],
        )

    def _solve(self, solve_fn, *args, **kwargs) -> VoltageTrace:
        start = time.perf_counter()
        voltage = solve_fn(*args, **kwargs)
        self._pdn_time_s += time.perf_counter() - start
        return voltage

    # ------------------------------------------------------------------
    # Solvers per supply voltage (failure sweeps reuse module simulations)
    # ------------------------------------------------------------------
    def solver_at(self, supply_v: float) -> TransientSolver:
        solver = self._solvers.get(supply_v)
        if solver is None:
            params = PdnParameters(
                vdd_nominal=supply_v,
                board=self.pdn.board,
                package=self.pdn.package,
                die=self.pdn.die,
                load_line_ohm=self.pdn.load_line_ohm,
            )
            solver = TransientSolver(PdnNetwork(params), self.chip.cycle_time_s)
            self._solvers[supply_v] = solver
        return solver

    def _current_from_energy(
        self, energy_pj: np.ndarray, *, active_threads: int, supply_v: float
    ) -> np.ndarray:
        """Per-cycle module current at an arbitrary supply voltage.

        Lower supply means more current for the same switching energy —
        the feedback that deepens droops as the failure sweep descends.
        """
        p = self.chip.power
        dynamic = (
            np.asarray(energy_pj, dtype=np.float64)
            * 1e-12
            / (supply_v * self.chip.cycle_time_s)
        )
        clock = np.full_like(dynamic, active_threads * p.idle_clock_a)
        gated = active_threads * p.idle_clock_a * (1.0 - p.clock_gating_efficiency)
        clock[dynamic == 0.0] = gated
        return active_threads * p.leakage_a + clock + dynamic

    def _idle_module_current(self) -> float:
        return self.chip_sim.idle_module_current()

    # ------------------------------------------------------------------
    # Program measurement
    # ------------------------------------------------------------------
    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement:
        """Measure a homogeneous *threads*-way run of *program*.

        Threads are placed by the paper's spread-first policy.
        ``module_phases`` circularly shifts each module's periodic activity
        (the dithering alignment vector; default all-aligned, which is the
        dithering algorithm's guaranteed worst case for identical modules).
        ``supply_v`` re-measures at a reduced supply for failure sweeps.

        When a module runs **two** SMT threads, the second starts
        ``smt_phase_cycles`` after the first (default: half the thread's
        solo loop period).  Dithering aligns *modules*, not SMT siblings —
        the paper's 8T runs show exactly this: shared-FPU interference
        "shifts the loop lengths, making it difficult to align the first
        droop excitation across the threads" (Section V.A.2).  Pass 0 to
        force lockstep siblings.
        """
        supply = self.chip.vdd if supply_v is None else supply_v
        if supply <= 0:
            raise ConfigurationError("supply voltage must be positive")
        self._measurements += 1
        counts = spread_placement(self.chip, threads)
        traces = []
        for count in counts:
            if count == 0:
                traces.append(None)
            else:
                programs = self._module_programs(program, count, smt_phase_cycles)
                traces.append(
                    self.chip_sim.run_module(
                        programs, max_iterations=self.warmup_iterations
                    )
                )
        phases = module_phases or [0] * self.chip.module_count
        if len(phases) != self.chip.module_count:
            raise MeasurementError("one phase per module required")

        profiles = []
        for trace in traces:
            if trace is None:
                profiles.append(None)
                continue
            profiles.append(trace.periodic_profile())

        active = [
            (trace, profile, counts[i], phases[i])
            for i, (trace, profile) in enumerate(zip(traces, profiles))
            if trace is not None
        ]
        periods = {p[1][2] for p in active if p[1] is not None}
        all_periodic = all(p[1] is not None for p in active) and len(periods) == 1
        iteration_cycles = active[0][0].steady_period(0) if active else None
        smt = any(count == 2 for count in counts)
        if all_periodic and not smt:
            self._path_counts["periodic"] += 1
            return self._measure_periodic(active, supply, iteration_cycles)
        if all_periodic and smt:
            self._path_counts["jittered"] += 1
            return self._measure_jittered(active, supply, iteration_cycles)
        self._path_counts["transient"] += 1
        return self._measure_transient(active, supply)

    def _module_programs(
        self,
        program: ThreadProgram,
        count: int,
        smt_phase_cycles: int | None,
    ) -> tuple[ThreadProgram, ...]:
        """Programs for one module, applying the natural SMT phase offset."""
        if count == 1:
            return (program,)
        if smt_phase_cycles is None:
            # The natural misalignment of SMT siblings: half the period the
            # loop actually runs at when both threads share the module
            # (probed with a lockstep pair; memoised, so this costs one
            # extra simulation per distinct kernel).
            pair = self.chip_sim.run_module(
                (program, program), max_iterations=self.warmup_iterations
            )
            period = pair.steady_period(0)
            smt_phase_cycles = int(round(period / 2)) if period else 0
        return (program,) + tuple(
            program.with_phase(program.phase_cycles + smt_phase_cycles)
            for _ in range(count - 1)
        )

    def _measure_periodic(self, active, supply: float,
                          iteration_cycles: float | None) -> Measurement:
        period = active[0][1][2]
        idle_count = self.chip.module_count - len(active)
        total_current = np.full(period, idle_count * self._idle_module_current())
        total_sens = np.zeros(period)
        for _trace, (energy, sens, _p), count, phase in active:
            current = self._current_from_energy(
                energy, active_threads=count, supply_v=supply
            )
            total_current += np.roll(current, phase)
            np.maximum(total_sens, np.roll(sens, phase), out=total_sens)
        trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self._solve(self.solver_at(supply).steady_state_periodic, trace)
        return Measurement(
            voltage=voltage,
            sensitivity=total_sens,
            current=trace,
            period_cycles=period,
            supply_v=supply,
            iteration_cycles=iteration_cycles,
        )

    #: Loop repetitions simulated on the jittered (SMT-interference) path.
    JITTER_REPETITIONS = 80

    #: Per-repetition phase random-walk step bound (cycles), the modelled
    #: magnitude of shared-FPU loop-length perturbation.
    JITTER_STEP_CYCLES = 2

    def _measure_jittered(self, active, supply: float,
                          iteration_cycles: float | None) -> Measurement:
        """SMT-pair measurement: loop phase wanders, resonance decoheres.

        Paper Section V.A.2: with two threads per module the shared FPU
        "shifts the loop lengths, making it difficult ... to oscillate at
        the resonant frequency".  Each module's periodic profile is tiled
        with a per-repetition phase random walk (independent per module)
        and the result is integrated in the time domain — spectral energy
        spreads off the resonance peak exactly as on hardware.
        """
        period = active[0][1][2]
        reps = self.JITTER_REPETITIONS
        idle_count = self.chip.module_count - len(active)
        idle_level = idle_count * self._idle_module_current()
        length = reps * period
        total_current = np.full(length, idle_level)
        total_sens = np.zeros(length)
        rng = np.random.default_rng(self.jitter_seed)
        for _trace, (energy, sens, _p), count, phase in active:
            current = self._current_from_energy(
                energy, active_threads=count, supply_v=supply
            )
            steps = rng.integers(
                -self.jitter_step_cycles, self.jitter_step_cycles + 1, size=reps
            )
            offsets = phase + np.cumsum(steps)
            module_current = np.concatenate(
                [np.roll(current, int(off)) for off in offsets]
            )
            module_sens = np.concatenate(
                [np.roll(sens, int(off)) for off in offsets]
            )
            total_current += module_current
            np.maximum(total_sens, module_sens, out=total_sens)
        trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self._solve(
            self.solver_at(supply).simulate,
            trace, baseline_current_a=float(total_current.mean()),
        )
        return Measurement(
            voltage=voltage,
            sensitivity=total_sens,
            current=trace,
            period_cycles=period,
            supply_v=supply,
            iteration_cycles=iteration_cycles,
        )

    def _measure_transient(self, active, supply: float) -> Measurement:
        idle_count = self.chip.module_count - len(active)
        idle_level = idle_count * self._idle_module_current()
        length = IDLE_PAD_CYCLES + max(
            min(FALLBACK_TILE_CYCLES, trace.cycles * 4) for trace, *_ in active
        )
        total_current = np.full(length, idle_level)
        total_sens = np.zeros(length)
        per_module_idle = self._idle_module_current()
        for trace, _profile, count, phase in active:
            current = self._current_from_energy(
                trace.energy_pj, active_threads=count, supply_v=supply
            )
            sens = trace.sensitivity
            start = IDLE_PAD_CYCLES + phase
            # Tile the raw run (it may not be periodic) to fill the window.
            filled = 0
            while start + filled < length:
                take = min(len(current), length - start - filled)
                total_current[start + filled : start + filled + take] += current[:take]
                window = total_sens[start + filled : start + filled + take]
                np.maximum(window, sens[:take], out=window)
                filled += take
            total_current[:start] += per_module_idle
        current_trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self._solve(
            self.solver_at(supply).simulate,
            current_trace,
            baseline_current_a=self.chip.module_count * per_module_idle,
        )
        return Measurement(
            voltage=voltage,
            sensitivity=total_sens,
            current=current_trace,
            period_cycles=None,
            supply_v=supply,
        )

    # ------------------------------------------------------------------
    # Raw-trace measurement (synthetic workloads)
    # ------------------------------------------------------------------
    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement:
        """Measure an externally generated chip-current waveform.

        Used by the synthetic benchmark models, whose activity is produced
        statistically rather than by the pipeline scheduler.
        """
        supply = self.chip.vdd if supply_v is None else supply_v
        if abs(current.dt - self.chip.cycle_time_s) > 1e-18:
            raise MeasurementError("current trace dt must match the chip clock")
        self._measurements += 1
        baseline = (
            current.samples[0] if baseline_current_a is None else baseline_current_a
        )
        voltage = self._solve(
            self.solver_at(supply).simulate,
            current, baseline_current_a=baseline,
        )
        sens = (
            np.ones(len(current)) if sensitivity is None else
            np.asarray(sensitivity, dtype=np.float64)
        )
        if len(sens) != len(current):
            raise MeasurementError("sensitivity length must match the current trace")
        return Measurement(
            voltage=voltage,
            sensitivity=sens,
            current=current,
            period_cycles=None,
            supply_v=supply,
        )


class MeasurementPlatform:
    """Closed-loop measurement of programs on a pluggable backend.

    The two-argument form ``MeasurementPlatform(chip, pdn)`` builds the
    default :class:`SimulatorBackend` (the software testbed).  Passing
    ``backend=`` instead plugs in any :class:`MeasurementBackend` — the
    paper's real-silicon path.  The facade validates arguments and keeps
    the run-telemetry counters; simulator internals (``chip_sim``,
    ``solver_at``, ``pdn``) remain reachable for the experiment harnesses
    that introspect the software testbed.
    """

    def __init__(
        self,
        chip: ChipConfig | None = None,
        pdn: PdnParameters | None = None,
        *,
        warmup_iterations: int = DEFAULT_WARMUP_ITERATIONS,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        jitter_step_cycles: int | None = None,
        backend: MeasurementBackend | None = None,
    ):
        if backend is None:
            if chip is None or pdn is None:
                raise ConfigurationError(
                    "MeasurementPlatform needs either (chip, pdn) or backend="
                )
            backend = SimulatorBackend(
                chip, pdn,
                warmup_iterations=warmup_iterations,
                jitter_seed=jitter_seed,
                jitter_step_cycles=jitter_step_cycles,
            )
        elif chip is not None or pdn is not None:
            raise ConfigurationError(
                "pass either (chip, pdn) or backend=, not both"
            )
        self.backend = backend

    # ------------------------------------------------------------------
    # Machine description + simulator internals (when present)
    # ------------------------------------------------------------------
    @property
    def chip(self) -> ChipConfig:
        return self.backend.chip

    def _simulator_attr(self, name: str):
        # Walk wrapper backends (fault injection, instrumentation shims):
        # anything exposing ``inner`` delegates what it does not override,
        # so the experiment harnesses keep working on a wrapped simulator.
        backend = self.backend
        while backend is not None:
            try:
                return getattr(backend, name)
            except AttributeError:
                backend = getattr(backend, "inner", None)
        raise ConfigurationError(
            f"{name!r} requires the simulator backend; "
            f"{type(self.backend).__name__} does not provide it"
        )

    @property
    def pdn(self):
        return self._simulator_attr("pdn")

    @property
    def chip_sim(self):
        return self._simulator_attr("chip_sim")

    @property
    def warmup_iterations(self) -> int:
        return self._simulator_attr("warmup_iterations")

    @property
    def jitter_seed(self) -> int:
        return self._simulator_attr("jitter_seed")

    def solver_at(self, supply_v: float):
        return self._simulator_attr("solver_at")(supply_v)

    def _current_from_energy(self, energy_pj, *, active_threads, supply_v):
        return self._simulator_attr("_current_from_energy")(
            energy_pj, active_threads=active_threads, supply_v=supply_v
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> MeasurementStats:
        stats_fn = getattr(self.backend, "stats", None)
        if stats_fn is None:
            return MeasurementStats(measurements=self._fallback_measurements)
        return stats_fn()

    _fallback_measurements = 0

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_program(
        self,
        program: ThreadProgram,
        threads: int,
        *,
        module_phases: list[int] | None = None,
        supply_v: float | None = None,
        smt_phase_cycles: int | None = None,
    ) -> Measurement:
        """Measure a homogeneous *threads*-way run of *program*.

        See :meth:`SimulatorBackend.measure_program` for parameter
        semantics; validation happens here so every backend gets the same
        contract.
        """
        chip = self.backend.chip
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if threads > chip.total_threads:
            raise ConfigurationError(
                f"threads must be <= {chip.total_threads} "
                f"({chip.module.threads} per module x {chip.module_count} "
                f"modules on {chip.name})"
            )
        if supply_v is not None and supply_v <= 0:
            raise ConfigurationError("supply voltage must be positive")
        if not hasattr(self.backend, "stats"):
            self._fallback_measurements += 1
        measurement = self.backend.measure_program(
            program,
            threads,
            module_phases=module_phases,
            supply_v=supply_v,
            smt_phase_cycles=smt_phase_cycles,
        )
        check_measurement(measurement)
        return measurement

    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity: np.ndarray | None = None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement:
        """Measure an externally generated chip-current waveform."""
        if supply_v is not None and supply_v <= 0:
            raise ConfigurationError("supply voltage must be positive")
        if not hasattr(self.backend, "stats"):
            self._fallback_measurements += 1
        measurement = self.backend.measure_current(
            current,
            sensitivity=sensitivity,
            supply_v=supply_v,
            baseline_current_a=baseline_current_a,
        )
        check_measurement(measurement)
        return measurement
