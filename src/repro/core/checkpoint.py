"""Crash-safe campaign checkpoints: atomic snapshots, exact resume.

A hardware AUDIT campaign is an overnight process on a machine that can
thermal-throttle, wedge, or reboot (paper Section IV); losing eight hours
of oscilloscope captures to a power blip is not acceptable.  This module
makes the software campaign equally durable:

* :func:`rng_state_to_jsonable` / :func:`rng_from_state` round-trip a
  ``numpy.random.Generator`` through plain JSON types, bit-exactly — the
  foundation of "same seeds ⇒ same final stressmark" across a crash.
* :class:`CampaignCheckpoint` persists one campaign under a directory:
  ``meta.json`` (written once, describes the run), ``state.json``
  (rewritten atomically every generation via ``os.replace``), and
  ``journal.jsonl`` (append-only, one line per checkpoint, for
  observability).  A SIGKILL mid-write leaves the previous ``state.json``
  intact, so the newest *complete* snapshot is always loadable.

The state snapshot carries the GA's :class:`~repro.core.ga.GaSnapshot`
(population, RNG state, best-so-far, stagnation counter, history) plus the
evaluation engine's fitness cache and counters.  Fitness values survive
JSON exactly (Python serialises floats via shortest round-trip repr), so a
resumed campaign replays the remaining generations bit-identically.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.ga import GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointError

#: Bumped when the on-disk snapshot layout changes incompatibly.
STATE_VERSION = 1


# ----------------------------------------------------------------------
# RNG state round-tripping
# ----------------------------------------------------------------------
def _jsonable(value):
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def rng_state_to_jsonable(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state as plain JSON types."""
    return _jsonable(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator that continues exactly where *state* was taken.

    Works for any numpy bit generator (PCG64, Philox, SFC64, MT19937): the
    state dict names its own class.
    """
    name = state.get("bit_generator")
    try:
        cls = getattr(np.random, name)
    except (TypeError, AttributeError):
        raise CheckpointError(f"unknown bit generator {name!r}") from None
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ----------------------------------------------------------------------
# Genome codecs (StressmarkGenome by default; any codec pair plugs in)
# ----------------------------------------------------------------------
def encode_stressmark_genome(genome: StressmarkGenome) -> dict:
    return {"subblock": list(genome.subblock), "lp_nops": int(genome.lp_nops)}


def decode_stressmark_genome(payload: dict) -> StressmarkGenome:
    return StressmarkGenome(
        subblock=tuple(payload["subblock"]), lp_nops=int(payload["lp_nops"])
    )


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------
def atomic_write_json(path: Path, payload) -> None:
    """Write *payload* as JSON so readers never observe a torn file.

    The bytes land in a sibling temp file which is fsynced and then
    ``os.replace``d over the target — atomic on POSIX, so a crash at any
    instant leaves either the old complete file or the new complete file.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# The campaign state (GA snapshot + engine cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignState:
    """One complete, resumable campaign snapshot."""

    ga: GaSnapshot
    fitness_cache: dict
    cache_hits: int


class CampaignCheckpoint:
    """Atomic on-disk store for one campaign under *directory*.

    ``save`` is called once per GA generation; ``load`` returns the newest
    complete snapshot (or ``None`` for a fresh directory).  ``meta.json``
    holds whatever run description the caller provides — the CLI stores
    chip/config so ``repro audit --resume DIR`` can rebuild the exact
    campaign without re-specifying flags.
    """

    META_FILE = "meta.json"
    STATE_FILE = "state.json"
    JOURNAL_FILE = "journal.jsonl"

    def __init__(
        self,
        directory,
        *,
        encode_genome: Callable = encode_stressmark_genome,
        decode_genome: Callable = decode_stressmark_genome,
    ):
        self.directory = Path(directory)
        self.encode_genome = encode_genome
        self.decode_genome = decode_genome
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {error}"
            ) from error

    # ------------------------------------------------------------------
    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILE

    @property
    def meta_path(self) -> Path:
        return self.directory / self.META_FILE

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_FILE

    def has_state(self) -> bool:
        return self.state_path.exists()

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def write_meta(self, meta: dict) -> None:
        atomic_write_json(self.meta_path, meta)

    def read_meta(self) -> dict:
        try:
            with open(self.meta_path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"no campaign meta at {self.meta_path} "
                "(was this directory written by --checkpoint-dir?)"
            ) from None
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt campaign meta {self.meta_path}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def save(self, snapshot: GaSnapshot, *, fitness_cache: dict | None = None,
             cache_hits: int = 0) -> Path:
        """Atomically persist one generation-boundary snapshot."""
        enc = self.encode_genome
        cache = fitness_cache or {}
        payload = {
            "version": STATE_VERSION,
            "generation": snapshot.generation,
            "population": [enc(g) for g in snapshot.population],
            "rng_state": _jsonable(snapshot.rng_state),
            "best_genome": enc(snapshot.best_genome),
            "best_fitness": snapshot.best_fitness,
            "stale": snapshot.stale,
            "history": [asdict(h) for h in snapshot.history],
            "evaluations": snapshot.evaluations,
            "cache_hits": cache_hits,
            "fitness_cache": [[enc(g), value] for g, value in cache.items()],
            "saved_at": time.time(),
        }
        atomic_write_json(self.state_path, payload)
        with open(self.journal_path, "a") as journal:
            journal.write(json.dumps({
                "generation": snapshot.generation,
                "best_fitness": snapshot.best_fitness,
                "evaluations": snapshot.evaluations,
                "cached_genomes": len(cache),
                "saved_at": payload["saved_at"],
            }) + "\n")
        return self.state_path

    def load(self) -> CampaignState | None:
        """The newest complete snapshot, or ``None`` for a fresh directory."""
        try:
            with open(self.state_path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt checkpoint state {self.state_path}: {error} "
                "(atomic writes should make this impossible; was the file "
                "edited by hand?)"
            ) from error
        version = payload.get("version")
        if version != STATE_VERSION:
            raise CheckpointError(
                f"checkpoint state version {version!r} is not supported "
                f"(expected {STATE_VERSION})"
            )
        dec = self.decode_genome
        try:
            snapshot = GaSnapshot(
                generation=int(payload["generation"]),
                population=tuple(dec(g) for g in payload["population"]),
                rng_state=payload["rng_state"],
                best_genome=dec(payload["best_genome"]),
                best_fitness=float(payload["best_fitness"]),
                stale=int(payload["stale"]),
                history=tuple(
                    GenerationStats(**h) for h in payload["history"]
                ),
                evaluations=int(payload["evaluations"]),
            )
            cache = {
                dec(genome): float(value)
                for genome, value in payload["fitness_cache"]
            }
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed checkpoint state {self.state_path}: {error}"
            ) from error
        return CampaignState(
            ga=snapshot,
            fitness_cache=cache,
            cache_hits=int(payload.get("cache_hits", 0)),
        )
