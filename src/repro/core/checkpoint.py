"""Crash-safe campaign checkpoints: atomic snapshots, exact resume.

A hardware AUDIT campaign is an overnight process on a machine that can
thermal-throttle, wedge, or reboot (paper Section IV); losing eight hours
of oscilloscope captures to a power blip is not acceptable.  This module
makes the software campaign equally durable:

* :func:`rng_state_to_jsonable` / :func:`rng_from_state` round-trip a
  ``numpy.random.Generator`` through plain JSON types, bit-exactly — the
  foundation of "same seeds ⇒ same final stressmark" across a crash.
* :class:`CampaignCheckpoint` persists one campaign under a directory:
  ``meta.json`` (written once, describes the run), ``state.json``
  (rewritten atomically every generation via ``os.replace``), and
  ``journal.jsonl`` (append-only, one line per checkpoint, for
  observability).  A SIGKILL mid-write leaves the previous ``state.json``
  intact, so the newest *complete* snapshot is always loadable.

The state snapshot carries the GA's :class:`~repro.core.ga.GaSnapshot`
(population, RNG state, best-so-far, stagnation counter, history) plus the
evaluation engine's fitness cache and counters.  Fitness values survive
JSON exactly (Python serialises floats via shortest round-trip repr), so a
resumed campaign replays the remaining generations bit-identically.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.ga import GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointError

#: Bumped when the on-disk snapshot layout changes incompatibly.
STATE_VERSION = 1

#: Bumped when the campaign meta layout changes incompatibly.
META_VERSION = 1

#: Campaign meta fields the CLI needs to rebuild a run, with their types.
#: ``None`` in the type tuple marks the field as nullable.
CAMPAIGN_META_FIELDS = {
    "chip": (str,),
    "throttle": (int, None),
    "threads": (int,),
    "mode": (str,),
    "population": (int,),
    "generations": (int,),
    "seed": (int,),
}


# ----------------------------------------------------------------------
# RNG state round-tripping
# ----------------------------------------------------------------------
def _jsonable(value):
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def rng_state_to_jsonable(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state as plain JSON types."""
    return _jsonable(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator that continues exactly where *state* was taken.

    Works for any numpy bit generator (PCG64, Philox, SFC64, MT19937): the
    state dict names its own class.
    """
    name = state.get("bit_generator")
    try:
        cls = getattr(np.random, name)
    except (TypeError, AttributeError):
        raise CheckpointError(f"unknown bit generator {name!r}") from None
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ----------------------------------------------------------------------
# Genome codecs (StressmarkGenome by default; any codec pair plugs in)
# ----------------------------------------------------------------------
def encode_stressmark_genome(genome: StressmarkGenome) -> dict:
    return {"subblock": list(genome.subblock), "lp_nops": int(genome.lp_nops)}


def decode_stressmark_genome(payload: dict) -> StressmarkGenome:
    return StressmarkGenome(
        subblock=tuple(payload["subblock"]), lp_nops=int(payload["lp_nops"])
    )


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------
def atomic_write_json(path: Path, payload) -> None:
    """Write *payload* as JSON so readers never observe a torn file.

    The bytes land in a sibling temp file which is fsynced and then
    ``os.replace``d over the target — atomic on POSIX, so a crash at any
    instant leaves either the old complete file or the new complete file.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# The campaign state (GA snapshot + engine cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignState:
    """One complete, resumable campaign snapshot."""

    ga: GaSnapshot
    fitness_cache: dict
    cache_hits: int


class CampaignCheckpoint:
    """Atomic on-disk store for one campaign under *directory*.

    ``save`` is called once per GA generation; ``load`` returns the newest
    complete snapshot (or ``None`` for a fresh directory).  ``meta.json``
    holds whatever run description the caller provides — the CLI stores
    chip/config so ``repro audit --resume DIR`` can rebuild the exact
    campaign without re-specifying flags.
    """

    META_FILE = "meta.json"
    STATE_FILE = "state.json"
    JOURNAL_FILE = "journal.jsonl"

    def __init__(
        self,
        directory,
        *,
        encode_genome: Callable = encode_stressmark_genome,
        decode_genome: Callable = decode_stressmark_genome,
    ):
        self.directory = Path(directory)
        self.encode_genome = encode_genome
        self.decode_genome = decode_genome
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {error}"
            ) from error

    # ------------------------------------------------------------------
    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILE

    @property
    def meta_path(self) -> Path:
        return self.directory / self.META_FILE

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_FILE

    def has_state(self) -> bool:
        return self.state_path.exists()

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def write_meta(self, meta: dict) -> None:
        atomic_write_json(self.meta_path, {"meta_version": META_VERSION, **meta})

    def read_meta(self) -> dict:
        try:
            with open(self.meta_path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"no campaign meta at {self.meta_path} "
                "(was this directory written by --checkpoint-dir?)"
            ) from None
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt campaign meta {self.meta_path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"corrupt campaign meta {self.meta_path}: expected a JSON "
                f"object, found {type(payload).__name__}"
            )
        # Pre-versioning directories carry no stamp; accept them as current.
        version = payload.pop("meta_version", META_VERSION)
        if version != META_VERSION:
            raise CheckpointError(
                f"campaign meta version {version!r} in {self.meta_path} is "
                f"not supported (expected {META_VERSION})"
            )
        return payload

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def save(self, snapshot: GaSnapshot, *, fitness_cache: dict | None = None,
             cache_hits: int = 0) -> Path:
        """Atomically persist one generation-boundary snapshot."""
        enc = self.encode_genome
        cache = fitness_cache or {}
        payload = {
            "version": STATE_VERSION,
            "generation": snapshot.generation,
            "population": [enc(g) for g in snapshot.population],
            "rng_state": _jsonable(snapshot.rng_state),
            "best_genome": enc(snapshot.best_genome),
            "best_fitness": snapshot.best_fitness,
            "stale": snapshot.stale,
            "history": [asdict(h) for h in snapshot.history],
            "evaluations": snapshot.evaluations,
            "cache_hits": cache_hits,
            "fitness_cache": [[enc(g), value] for g, value in cache.items()],
            "saved_at": time.time(),
        }
        atomic_write_json(self.state_path, payload)
        with open(self.journal_path, "a") as journal:
            journal.write(json.dumps({
                "generation": snapshot.generation,
                "best_fitness": snapshot.best_fitness,
                "evaluations": snapshot.evaluations,
                "cached_genomes": len(cache),
                "saved_at": payload["saved_at"],
            }) + "\n")
        return self.state_path

    def load(self) -> CampaignState | None:
        """The newest complete snapshot, or ``None`` for a fresh directory."""
        try:
            with open(self.state_path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt checkpoint state {self.state_path}: {error} "
                "(atomic writes should make this impossible; was the file "
                "edited by hand?)"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"malformed checkpoint state {self.state_path}: expected a "
                f"JSON object, found {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != STATE_VERSION:
            raise CheckpointError(
                f"checkpoint state version {version!r} in {self.state_path} "
                f"is not supported (expected {STATE_VERSION})"
            )
        self._check_state_fields(payload)
        dec = self.decode_genome
        try:
            snapshot = GaSnapshot(
                generation=int(payload["generation"]),
                population=tuple(dec(g) for g in payload["population"]),
                rng_state=payload["rng_state"],
                best_genome=dec(payload["best_genome"]),
                best_fitness=float(payload["best_fitness"]),
                stale=int(payload["stale"]),
                history=tuple(
                    GenerationStats(**h) for h in payload["history"]
                ),
                evaluations=int(payload["evaluations"]),
            )
            cache = {
                dec(genome): float(value)
                for genome, value in payload["fitness_cache"]
            }
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed checkpoint state {self.state_path}: {error}"
            ) from error
        return CampaignState(
            ga=snapshot,
            fitness_cache=cache,
            cache_hits=int(payload.get("cache_hits", 0)),
        )

    # ------------------------------------------------------------------
    def _check_state_fields(self, payload: dict) -> None:
        """Reject truncated or hand-edited snapshots with a named field.

        Decoding alone surfaces *some* type errors, but e.g. a stringified
        ``rng_state`` would only explode generations later when the GA
        resumes its stream.  Check shapes up front so the error names the
        file and the first bad field.
        """
        if "best_genome" not in payload:
            raise CheckpointError(
                f"malformed checkpoint state {self.state_path}: missing "
                "field 'best_genome' (truncated or hand-edited?)"
            )
        # The genome encoding is codec-defined (any JSON value), so only
        # the store's own fields are type-checked.
        expected = {
            "generation": int,
            "population": list,
            "rng_state": dict,
            "best_fitness": (int, float),
            "stale": int,
            "history": list,
            "evaluations": int,
            "fitness_cache": list,
        }
        for name, kinds in expected.items():
            if name not in payload:
                raise CheckpointError(
                    f"malformed checkpoint state {self.state_path}: missing "
                    f"field {name!r} (truncated or hand-edited?)"
                )
            value = payload[name]
            if not isinstance(value, kinds) or isinstance(value, bool):
                wanted = kinds[0] if isinstance(kinds, tuple) else kinds
                raise CheckpointError(
                    f"malformed checkpoint state {self.state_path}: field "
                    f"{name!r} should be {wanted.__name__}, found "
                    f"{type(value).__name__}"
                )
        for entry in payload["fitness_cache"]:
            if not isinstance(entry, list) or len(entry) != 2:
                raise CheckpointError(
                    f"malformed checkpoint state {self.state_path}: "
                    "fitness_cache entries must be [genome, fitness] pairs"
                )
        if "bit_generator" not in payload["rng_state"]:
            raise CheckpointError(
                f"malformed checkpoint state {self.state_path}: rng_state "
                "has no bit_generator"
            )


def validate_campaign_meta(meta: dict, *, path) -> dict:
    """Check the CLI's campaign meta fields exist with the right types.

    ``read_meta`` accepts any JSON object (the store is generic); a resume,
    however, feeds these fields straight into :class:`AuditConfig`, so a
    hand-edited ``meta.json`` must fail here with the file named rather
    than as a confusing downstream crash.
    """
    for name, kinds in CAMPAIGN_META_FIELDS.items():
        if name not in meta:
            raise CheckpointError(
                f"campaign meta {path} is missing field {name!r} "
                "(was this directory written by --checkpoint-dir?)"
            )
        value = meta[name]
        nullable = None in kinds
        types = tuple(k for k in kinds if k is not None)
        if value is None and nullable:
            continue
        if not isinstance(value, types) or isinstance(value, bool):
            raise CheckpointError(
                f"campaign meta {path} field {name!r} should be "
                f"{types[0].__name__}, found {type(value).__name__}"
            )
    return meta
