"""Crash-safe campaign checkpoints: atomic snapshots, verified resume.

A hardware AUDIT campaign is an overnight process on a machine that can
thermal-throttle, wedge, or reboot (paper Section IV); losing eight hours
of oscilloscope captures to a power blip is not acceptable.  This module
makes the software campaign equally durable:

* :func:`rng_state_to_jsonable` / :func:`rng_from_state` round-trip a
  ``numpy.random.Generator`` through plain JSON types, bit-exactly — the
  foundation of "same seeds ⇒ same final stressmark" across a crash.
* :class:`CampaignCheckpoint` persists one campaign under a directory:
  ``meta.json`` (written once, describes the run), ``state.json``
  (rewritten atomically every generation via ``os.replace``),
  ``state.prev.json`` (the previous generation's snapshot, rotated aside
  before each overwrite), ``manifest.json`` (sha256 digests of the most
  recent snapshots), and ``journal.jsonl`` (append-only, one line per
  checkpoint, for observability and salvage confirmation).

Durability is layered.  Atomic replace means a SIGKILL mid-write leaves
the previous complete ``state.json`` intact.  The manifest catches what
atomicity cannot — bit rot, truncation by a broken filesystem, hand
edits: ``load`` re-hashes the snapshot bytes and a digest that matches no
manifest entry raises :class:`~repro.errors.CheckpointCorrupt`.  And the
rotation provides the *salvage path*: when ``state.json`` is damaged or
missing, ``load`` falls back to ``state.prev.json``, re-verifies it
against the manifest, confirms its generation appears in the journal, and
returns it flagged ``salvaged=True`` — one generation of rework instead
of a dead campaign.  A write failure (ENOSPC, quota, I/O error) is
classified and raised *before* the previous snapshot is disturbed, so a
full disk can never destroy the last good state.

The state snapshot carries the GA's :class:`~repro.core.ga.GaSnapshot`
(population, RNG state, best-so-far, stagnation counter, history) plus the
evaluation engine's fitness cache and counters.  Fitness values survive
JSON exactly (Python serialises floats via shortest round-trip repr), so a
resumed campaign replays the remaining generations bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.atomicio import (  # noqa: F401  (re-exported compat names)
    append_jsonl,
    atomic_write_bytes as _atomic_write_bytes,
    atomic_write_json,
    classify_write_error,
)
from repro.core.ga import GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointCorrupt, CheckpointError

#: Bumped when the on-disk snapshot layout changes incompatibly.
STATE_VERSION = 1

#: Bumped when the campaign meta layout changes incompatibly.
META_VERSION = 1

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

#: How many snapshot digests the manifest remembers.  Only two files ever
#: exist (``state.json`` + ``state.prev.json``) but keeping a few extra
#: digests makes the manifest robust to a crash between rotation and the
#: next manifest update.
MANIFEST_HISTORY = 8

#: Campaign meta fields the CLI needs to rebuild a run, with their types.
#: ``None`` in the type tuple marks the field as nullable.
CAMPAIGN_META_FIELDS = {
    "chip": (str,),
    "throttle": (int, None),
    "threads": (int,),
    "mode": (str,),
    "population": (int,),
    "generations": (int,),
    "seed": (int,),
}

# ----------------------------------------------------------------------
# RNG state round-tripping
# ----------------------------------------------------------------------
def _jsonable(value):
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def rng_state_to_jsonable(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state as plain JSON types."""
    return _jsonable(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator that continues exactly where *state* was taken.

    Works for any numpy bit generator (PCG64, Philox, SFC64, MT19937): the
    state dict names its own class.
    """
    name = state.get("bit_generator")
    try:
        cls = getattr(np.random, name)
    except (TypeError, AttributeError):
        raise CheckpointError(f"unknown bit generator {name!r}") from None
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ----------------------------------------------------------------------
# Genome codecs (StressmarkGenome by default; any codec pair plugs in)
# ----------------------------------------------------------------------
def encode_stressmark_genome(genome: StressmarkGenome) -> dict:
    return {"subblock": list(genome.subblock), "lp_nops": int(genome.lp_nops)}


def decode_stressmark_genome(payload: dict) -> StressmarkGenome:
    return StressmarkGenome(
        subblock=tuple(payload["subblock"]), lp_nops=int(payload["lp_nops"])
    )


# ----------------------------------------------------------------------
# The campaign state (GA snapshot + engine cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignState:
    """One complete, resumable campaign snapshot.

    ``salvaged`` is ``True`` when the snapshot came from the fallback
    ``state.prev.json`` because the primary was corrupt or missing;
    ``salvage_reason`` then records what was wrong with the primary.
    """

    ga: GaSnapshot
    fitness_cache: dict
    cache_hits: int
    salvaged: bool = False
    salvage_reason: str = ""


class CampaignCheckpoint:
    """Verified, atomic on-disk store for one campaign under *directory*.

    ``save`` is called once per GA generation; ``load`` returns the newest
    *verified* snapshot (or ``None`` for a fresh directory), falling back
    to the rotated previous snapshot when the primary is damaged.
    ``meta.json`` holds whatever run description the caller provides — the
    CLI stores chip/config so ``repro audit --resume DIR`` can rebuild the
    exact campaign without re-specifying flags.
    """

    META_FILE = "meta.json"
    STATE_FILE = "state.json"
    PREV_STATE_FILE = "state.prev.json"
    MANIFEST_FILE = "manifest.json"
    JOURNAL_FILE = "journal.jsonl"

    def __init__(
        self,
        directory,
        *,
        encode_genome: Callable = encode_stressmark_genome,
        decode_genome: Callable = decode_stressmark_genome,
    ):
        self.directory = Path(directory)
        self.encode_genome = encode_genome
        self.decode_genome = decode_genome
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {error}"
            ) from error

    # ------------------------------------------------------------------
    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILE

    @property
    def prev_state_path(self) -> Path:
        return self.directory / self.PREV_STATE_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_FILE

    @property
    def meta_path(self) -> Path:
        return self.directory / self.META_FILE

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_FILE

    def has_state(self) -> bool:
        """True when any snapshot — primary or rotated — exists."""
        return self.state_path.exists() or self.prev_state_path.exists()

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def write_meta(self, meta: dict) -> None:
        atomic_write_json(self.meta_path, {"meta_version": META_VERSION, **meta})

    def read_meta(self) -> dict:
        try:
            with open(self.meta_path, "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            raise CheckpointError(
                f"no campaign meta at {self.meta_path} "
                "(was this directory written by --checkpoint-dir?)"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(
                f"corrupt campaign meta {self.meta_path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"corrupt campaign meta {self.meta_path}: expected a JSON "
                f"object, found {type(payload).__name__}"
            )
        # Pre-versioning directories carry no stamp; accept them as current.
        version = payload.pop("meta_version", META_VERSION)
        if version != META_VERSION:
            raise CheckpointError(
                f"campaign meta version {version!r} in {self.meta_path} is "
                f"not supported (expected {META_VERSION})"
            )
        return payload

    # ------------------------------------------------------------------
    # Manifest + journal
    # ------------------------------------------------------------------
    def _read_manifest(self) -> list[dict]:
        """The manifest's snapshot entries, or ``[]`` when unavailable.

        A missing or unreadable manifest disables verification rather than
        bricking the store: legacy directories predate it, and refusing to
        load a healthy ``state.json`` because the *manifest* was damaged
        would invert the durability hierarchy.
        """
        try:
            with open(self.manifest_path, "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return []
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return []
        if (
            not isinstance(payload, dict)
            or payload.get("manifest_version") != MANIFEST_VERSION
        ):
            return []
        entries = payload.get("snapshots")
        if not isinstance(entries, list):
            return []
        return [e for e in entries if isinstance(e, dict)]

    def _update_manifest(self, digest: str, generation: int) -> None:
        entries = [
            e for e in self._read_manifest() if e.get("sha256") != digest
        ]
        entries.append(
            {"sha256": digest, "generation": generation, "saved_at": time.time()}
        )
        atomic_write_json(
            self.manifest_path,
            {
                "manifest_version": MANIFEST_VERSION,
                "snapshots": entries[-MANIFEST_HISTORY:],
            },
        )

    def read_journal(self) -> tuple[list[dict], int]:
        """All parseable journal entries plus the count of damaged lines.

        The journal is append-only, so a crash (or bit flip) can tear its
        last line; salvage must tolerate that, hence the lenient reader.
        """
        entries: list[dict] = []
        skipped = 0
        try:
            with open(self.journal_path, "rb") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return [], 0
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                skipped += 1
                continue
            if isinstance(entry, dict):
                entries.append(entry)
            else:
                skipped += 1
        return entries, skipped

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def save(self, snapshot: GaSnapshot, *, fitness_cache: dict | None = None,
             cache_hits: int = 0) -> Path:
        """Atomically persist one generation-boundary snapshot.

        Ordering is the durability story: (1) the manifest learns the new
        digest *first*, so a crash at any later step leaves every on-disk
        snapshot verifiable; (2) the current ``state.json`` rotates to
        ``state.prev.json``, preserving the last generation; (3) the new
        bytes land atomically; (4) the journal gains its line.  A write
        failure at any step raises a classified error with the newest
        pre-existing snapshot still intact and loadable.
        """
        enc = self.encode_genome
        cache = fitness_cache or {}
        payload = {
            "version": STATE_VERSION,
            "generation": snapshot.generation,
            "population": [enc(g) for g in snapshot.population],
            "rng_state": _jsonable(snapshot.rng_state),
            "best_genome": enc(snapshot.best_genome),
            "best_fitness": snapshot.best_fitness,
            "stale": snapshot.stale,
            "history": [asdict(h) for h in snapshot.history],
            "evaluations": snapshot.evaluations,
            "cache_hits": cache_hits,
            "fitness_cache": [[enc(g), value] for g, value in cache.items()],
            "saved_at": time.time(),
        }
        data = json.dumps(payload).encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()
        self._update_manifest(digest, snapshot.generation)
        if self.state_path.exists():
            try:
                os.replace(self.state_path, self.prev_state_path)
            except OSError as error:
                raise classify_write_error(error, self.prev_state_path) from error
        _atomic_write_bytes(self.state_path, data)
        append_jsonl(self.journal_path, {
            "generation": snapshot.generation,
            "best_fitness": snapshot.best_fitness,
            "evaluations": snapshot.evaluations,
            "cached_genomes": len(cache),
            "sha256": digest,
            "saved_at": payload["saved_at"],
        })
        return self.state_path

    def load(self) -> CampaignState | None:
        """The newest verified snapshot, or ``None`` for a fresh directory.

        When ``state.json`` is corrupt (or missing while a rotated
        snapshot exists), falls back to ``state.prev.json``: re-verifies
        it against the manifest, confirms its generation appears in the
        journal, and returns it with ``salvaged=True``.  Only when both
        snapshots are unusable does the primary's error propagate.
        """
        primary_error: CheckpointError | None = None
        if self.state_path.exists():
            try:
                return self._load_state_file(self.state_path)
            except CheckpointError as error:
                primary_error = error
        elif self.prev_state_path.exists():
            primary_error = CheckpointCorrupt(
                self.state_path,
                "file is missing although a rotated snapshot exists "
                "(crash between rotation and write?)",
            )
        else:
            return None

        if self.prev_state_path.exists():
            try:
                state = self._load_state_file(self.prev_state_path)
                self._confirm_salvage(state)
                return replace(
                    state, salvaged=True, salvage_reason=str(primary_error)
                )
            except CheckpointError:
                pass
        raise primary_error

    def _confirm_salvage(self, state: CampaignState) -> None:
        """Journal-replay confirmation for a salvage candidate.

        A snapshot we are about to trust *instead of* the primary must be
        one the campaign actually journalled — a rotated file from some
        other run (or a partially-recycled directory) is not a safe resume
        point.  An absent/unreadable journal abstains rather than vetoes.
        """
        entries, _skipped = self.read_journal()
        if not entries:
            return
        generation = state.ga.generation
        if not any(e.get("generation") == generation for e in entries):
            raise CheckpointCorrupt(
                self.prev_state_path,
                f"salvage candidate generation {generation} is not "
                f"confirmed by any journal entry",
            )

    def _load_state_file(self, path: Path) -> CampaignState:
        """Parse, structure-check, decode, and hash-verify one snapshot."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise CheckpointCorrupt(path, f"unreadable: {error}") from error
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointCorrupt(
                path,
                f"does not parse as JSON ({error}) — truncated write, "
                f"bit rot, or a hand edit",
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"malformed checkpoint state {path}: expected a "
                f"JSON object, found {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != STATE_VERSION:
            raise CheckpointError(
                f"checkpoint state version {version!r} in {path} "
                f"is not supported (expected {STATE_VERSION})"
            )
        self._check_state_fields(payload, path)
        dec = self.decode_genome
        try:
            snapshot = GaSnapshot(
                generation=int(payload["generation"]),
                population=tuple(dec(g) for g in payload["population"]),
                rng_state=payload["rng_state"],
                best_genome=dec(payload["best_genome"]),
                best_fitness=float(payload["best_fitness"]),
                stale=int(payload["stale"]),
                history=tuple(
                    GenerationStats(**h) for h in payload["history"]
                ),
                evaluations=int(payload["evaluations"]),
            )
            cache = {
                dec(genome): float(value)
                for genome, value in payload["fitness_cache"]
            }
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed checkpoint state {path}: {error}"
            ) from error
        self._verify_digest(path, raw, payload)
        return CampaignState(
            ga=snapshot,
            fitness_cache=cache,
            cache_hits=int(payload.get("cache_hits", 0)),
        )

    def _verify_digest(self, path: Path, raw: bytes, payload: dict) -> None:
        """Integrity check against the sha256 manifest (when present).

        Runs *after* the structural checks so a hand-edited field keeps
        its named error message; what reaches here is structurally fine
        but may still be silently different bytes than were written.
        """
        entries = self._read_manifest()
        if not entries:
            return  # legacy store or damaged manifest: nothing to vouch
        digest = hashlib.sha256(raw).hexdigest()
        matches = [e for e in entries if e.get("sha256") == digest]
        if not matches:
            raise CheckpointCorrupt(
                path,
                f"sha256 {digest[:12]}… matches no manifest entry "
                f"(bit rot, torn write, or a hand edit)",
            )
        generation = payload.get("generation")
        if not any(e.get("generation") == generation for e in matches):
            raise CheckpointCorrupt(
                path,
                f"manifest entry for sha256 {digest[:12]}… does not record "
                f"generation {generation}",
            )

    # ------------------------------------------------------------------
    def _check_state_fields(self, payload: dict, path: Path) -> None:
        """Reject truncated or hand-edited snapshots with a named field.

        Decoding alone surfaces *some* type errors, but e.g. a stringified
        ``rng_state`` would only explode generations later when the GA
        resumes its stream.  Check shapes up front so the error names the
        file and the first bad field.
        """
        if "best_genome" not in payload:
            raise CheckpointError(
                f"malformed checkpoint state {path}: missing "
                "field 'best_genome' (truncated or hand-edited?)"
            )
        # The genome encoding is codec-defined (any JSON value), so only
        # the store's own fields are type-checked.
        expected = {
            "generation": int,
            "population": list,
            "rng_state": dict,
            "best_fitness": (int, float),
            "stale": int,
            "history": list,
            "evaluations": int,
            "fitness_cache": list,
        }
        for name, kinds in expected.items():
            if name not in payload:
                raise CheckpointError(
                    f"malformed checkpoint state {path}: missing "
                    f"field {name!r} (truncated or hand-edited?)"
                )
            value = payload[name]
            if not isinstance(value, kinds) or isinstance(value, bool):
                wanted = kinds[0] if isinstance(kinds, tuple) else kinds
                raise CheckpointError(
                    f"malformed checkpoint state {path}: field "
                    f"{name!r} should be {wanted.__name__}, found "
                    f"{type(value).__name__}"
                )
        for entry in payload["fitness_cache"]:
            if not isinstance(entry, list) or len(entry) != 2:
                raise CheckpointError(
                    f"malformed checkpoint state {path}: "
                    "fitness_cache entries must be [genome, fitness] pairs"
                )
        if "bit_generator" not in payload["rng_state"]:
            raise CheckpointError(
                f"malformed checkpoint state {path}: rng_state "
                "has no bit_generator"
            )


def validate_campaign_meta(meta: dict, *, path) -> dict:
    """Check the CLI's campaign meta fields exist with the right types.

    ``read_meta`` accepts any JSON object (the store is generic); a resume,
    however, feeds these fields straight into :class:`AuditConfig`, so a
    hand-edited ``meta.json`` must fail here with the file named rather
    than as a confusing downstream crash.
    """
    for name, kinds in CAMPAIGN_META_FIELDS.items():
        if name not in meta:
            raise CheckpointError(
                f"campaign meta {path} is missing field {name!r} "
                "(was this directory written by --checkpoint-dir?)"
            )
        value = meta[name]
        nullable = None in kinds
        types = tuple(k for k in kinds if k is not None)
        if value is None and nullable:
            continue
        if not isinstance(value, types) or isinstance(value, bool):
            raise CheckpointError(
                f"campaign meta {path} field {name!r} should be "
                f"{types[0].__name__}, found {type(value).__name__}"
            )
    return meta
