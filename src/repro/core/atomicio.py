"""Shared atomic file-write primitives: fsynced replace, durable appends.

Every durable artifact in the project — campaign checkpoints, fleet
shard results and reports, registry objects and indexes — lands on disk
through the same two idioms:

* :func:`atomic_write_bytes` (and its :func:`atomic_write_json` /
  :func:`atomic_write_text` wrappers): bytes go to a sibling temp file
  which is fsynced and then ``os.replace``d over the target — atomic on
  POSIX, so a crash at any instant leaves either the old complete file
  or the new complete file, never a torn one.
* :func:`append_jsonl`: one JSON line appended, flushed, and fsynced —
  the idiom for append-only journals and indexes where a crash may tear
  at most the final line (readers must be lenient; see
  :meth:`repro.core.checkpoint.CampaignCheckpoint.read_journal`).

``OSError`` from any of these is classified by
:func:`classify_write_error` into the project error taxonomy:
disk-full / quota / I/O failures become
:class:`~repro.errors.CheckpointError` ("storage failed; the previous
file is intact"), permission and bad-path failures become
:class:`~repro.errors.ConfigurationError` ("the operator pointed the
store somewhere unusable").

This module grew out of ``core/checkpoint.py`` (which re-exports the
names for compatibility) when the fleet and registry layers started
duplicating the pattern.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path
from typing import Callable

from repro.errors import CheckpointError, ConfigurationError

#: Write-fault injection seam for durability tests.  When set (see
#: :func:`repro.supervision.chaos.inject_write_failures`) it is called with
#: the target path before every atomic write and may raise ``OSError`` to
#: simulate a full disk exactly at the most damaging instant.
_write_fault_hook: Callable[[Path], None] | None = None

#: ``errno`` values that mean "the storage itself failed" — transient or
#: environmental, the previous file is intact, retry elsewhere/later.
_IO_ERRNOS = {errno.ENOSPC, errno.EDQUOT, errno.EIO, errno.EFBIG}

#: ``errno`` values that mean "the target location is misconfigured" —
#: retrying will not help, the operator pointed us at a bad place.
_CONFIG_ERRNOS = {
    errno.EACCES,
    errno.EPERM,
    errno.EROFS,
    errno.ENOENT,
    errno.ENOTDIR,
    errno.EISDIR,
}


def classify_write_error(error: OSError, path) -> CheckpointError:
    """Map an ``OSError`` from a durable write to the error taxonomy.

    Disk-full / quota / I/O failures become :class:`CheckpointError`
    ("storage failed; the previous file is intact"); permission and
    bad-path failures become :class:`~repro.errors.ConfigurationError`
    ("the operator pointed the store somewhere unusable").
    """
    code = error.errno
    if code in _CONFIG_ERRNOS:
        return ConfigurationError(
            f"cannot write checkpoint {path}: {error} — the checkpoint "
            f"location is misconfigured (permissions / missing directory?)"
        )
    detail = "disk full or I/O failure" if code in _IO_ERRNOS else "OS error"
    return CheckpointError(
        f"cannot write checkpoint {path}: {error} ({detail}; the previous "
        f"snapshot is intact)"
    )


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Land *data* at *path* so readers never observe a torn file.

    The bytes go to a sibling temp file which is fsynced and then
    ``os.replace``d over the target — atomic on POSIX, so a crash at any
    instant leaves either the old complete file or the new complete file.
    ``OSError`` is classified via :func:`classify_write_error` and the
    temp file is removed best-effort, so a full disk surfaces as a
    structured error with the previous file untouched.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        if _write_fault_hook is not None:
            _write_fault_hook(path)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as error:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass
        raise classify_write_error(error, path) from error


def atomic_write_json(path: Path, payload, *, indent: int | None = None,
                      sort_keys: bool = False, newline: bool = False) -> None:
    """Write *payload* as JSON via :func:`atomic_write_bytes`.

    The keyword knobs exist for artifacts with a canonical human-diffable
    form (fleet reports: ``indent=2, sort_keys=True, newline=True``); the
    default compact form matches ``json.dumps`` exactly as checkpoints
    have always written it.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if newline:
        text += "\n"
    atomic_write_bytes(Path(path), text.encode("utf-8"))


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* (UTF-8) via :func:`atomic_write_bytes`."""
    atomic_write_bytes(Path(path), text.encode("utf-8"))


def append_jsonl(path: Path, payload) -> None:
    """Append *payload* as one JSON line, flushed and fsynced.

    Appends are not atomic — a crash mid-append can tear the final line —
    so every reader of an append-only file must tolerate (and count) a
    damaged tail line.  The fsync bounds the loss to that one line.
    ``OSError`` is classified via :func:`classify_write_error`.
    """
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as error:
        raise classify_write_error(error, path) from error
