"""Automatic resonance-frequency detection.

Paper Section III: "To determine the resonance frequency, AUDIT constructs a
trivial stressmark consisting of a loop of high-power instructions and NOP
instructions.  It varies the number of cycles in the loop to determine the
length that produces the worst-case droop."

The sweep runs entirely through the measurement platform, so it adapts to
whatever board/processor combination is plugged in (Section III notes the
resonance moves when the processor on the board changes — exactly the
Phenom II experiment of Section V.C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SearchError
from repro.isa.instruction import make_independent
from repro.isa.kernels import ThreadProgram, build_kernel
from repro.isa.opcodes import OpcodeTable
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import PhaseEvent, RunObserver, notify
from repro.pipeline.artifacts import MeasureRequest

#: Loop-trip count for probe programs (steady state is what matters).
_PROBE_ITERATIONS = 4096


@dataclass(frozen=True)
class ResonancePoint:
    """One probe of the sweep."""

    lp_nops: int
    period_cycles: int | None
    droop_v: float


@dataclass(frozen=True)
class ResonanceSweepResult:
    """Outcome of the loop-length sweep."""

    points: tuple[ResonancePoint, ...]
    best_lp_nops: int
    best_period_cycles: int
    resonance_hz: float

    def droop_at(self, lp_nops: int) -> float:
        for point in self.points:
            if point.lp_nops == lp_nops:
                return point.droop_v
        raise SearchError(f"sweep has no point at lp_nops={lp_nops}")


def probe_program(
    table: OpcodeTable,
    *,
    hp_count: int,
    lp_nops: int,
    hp_mnemonic: str | None = None,
) -> ThreadProgram:
    """The trivial high-power/NOP probe loop."""
    if hp_count < 1:
        raise SearchError("hp_count must be >= 1")
    if lp_nops < 0:
        raise SearchError("lp_nops must be non-negative")
    if hp_mnemonic is None:
        # Highest-energy *fully pipelined* op: dividers block their unit for
        # tens of cycles and cannot sustain a high-power burst.
        pipelined = [s for s in table if s.issue_interval <= 2 and s.energy_pj > 0]
        if not pipelined:
            raise SearchError("opcode pool has no pipelined high-power ops")
        mnemonic = max(pipelined, key=lambda s: s.energy_pj).mnemonic
    else:
        mnemonic = hp_mnemonic
    subblock = make_independent(table.get(mnemonic), hp_count)
    kernel = build_kernel(
        subblock,
        replications=1,
        lp_nops=lp_nops,
        nop_spec=table.nop,
        name=f"probe-{lp_nops}",
    )
    return ThreadProgram(kernel, _PROBE_ITERATIONS)


def find_resonance(
    platform: MeasurementPlatform,
    table: OpcodeTable,
    *,
    threads: int = 1,
    period_candidates: list[int] | None = None,
    hp_mnemonic: str | None = None,
    observers: Sequence[RunObserver] = (),
) -> ResonanceSweepResult:
    """Sweep the loop length and return the worst-droop (resonant) shape.

    Each probe targets a loop of roughly *period* cycles at ~50 % duty (the
    ideal Fig. 7 waveform): the HP region is sized to occupy half the period
    on the FP pipes, the LP half fills with NOPs at decode width.  Only
    opcodes legal on the platform's chip are used, so the same call works
    unmodified on the Bulldozer and Phenom testbeds.
    """
    pool = table.supported_on(platform.chip.extensions)
    if period_candidates is None:
        period_candidates = list(range(8, 121, 4))
    if not period_candidates:
        raise SearchError("need at least one loop length to sweep")

    decode_width = platform.chip.module.decode_width
    fp_width = platform.chip.module.fp_arith_pipes
    probes: list[tuple[int, int, ThreadProgram]] = []
    for period in period_candidates:
        if period < 2:
            raise SearchError("loop lengths must be >= 2 cycles")
        # Shape for ~50% duty at the *execution* level: the HP ops take
        # period/2 cycles to issue on the FP pipes, and the LP NOP stream
        # holds the decoder long enough for the out-of-order window to
        # drain, leaving the FP unit idle for the other period/2 cycles.
        hp_count = max(1, (period * fp_width) // 2)
        lp_nops = max(0, period * decode_width - hp_count - 1)
        program = probe_program(
            pool, hp_count=hp_count, lp_nops=lp_nops, hp_mnemonic=hp_mnemonic
        )
        probes.append((period, lp_nops, program))

    if getattr(platform, "supports_batch_measure", False):
        # One vectorized PDN solve per compatible probe group: the sweep's
        # probes are independent, so the whole grid ships as one batch.
        batch_start = time.perf_counter()
        measurements = platform.measure_programs([
            MeasureRequest(program=program, threads=threads)
            for _period, _lp_nops, program in probes
        ])
        notify(observers, PhaseEvent(
            name="resonance-probe-batch",
            wall_s=time.perf_counter() - batch_start,
            detail=f"{len(probes)} probes batched",
        ))
    else:
        measurements = []
        for period, _lp_nops, program in probes:
            probe_start = time.perf_counter()
            measurement = platform.measure_program(program, threads)
            notify(observers, PhaseEvent(
                name="resonance-probe",
                wall_s=time.perf_counter() - probe_start,
                detail=f"period {period} cycles, "
                       f"droop {measurement.max_droop_v * 1e3:.1f} mV",
            ))
            measurements.append(measurement)

    points: list[ResonancePoint] = []
    best: ResonancePoint | None = None
    best_measurement_iteration: float | None = None
    for (_period, lp_nops, _program), measurement in zip(probes, measurements):
        point = ResonancePoint(
            lp_nops=lp_nops,
            period_cycles=measurement.period_cycles,
            droop_v=measurement.max_droop_v,
        )
        points.append(point)
        if best is None or point.droop_v > best.droop_v:
            best = point
            best_measurement_iteration = measurement.iteration_cycles

    assert best is not None
    iteration = best_measurement_iteration
    if iteration is None:
        raise SearchError("resonant probe never reached a steady period")
    resonance_hz = platform.chip.frequency_hz / iteration
    return ResonanceSweepResult(
        points=tuple(points),
        best_lp_nops=best.lp_nops,
        best_period_cycles=int(round(iteration)),
        resonance_hz=resonance_hz,
    )
