"""Fault tolerance for long AUDIT campaigns: policy, guard, and chaos.

The paper's closed loop runs unattended for hours against a flaky physical
target (Section IV): measurements hang, the scope misfires, thermal events
corrupt a capture.  FIRESTARTER-style stress campaigns treat those as
routine, not fatal.  This module gives the evaluation engine the same
discipline:

* :class:`FaultPolicy` — declarative per-evaluation fault handling:
  how many retries, what backoff, a watchdog budget, and what to do when a
  genome's measurement keeps failing (``raise`` / ``skip`` / ``penalize``).
* :class:`GuardedFitness` — wraps any fitness callable so a backend fault
  becomes a retried attempt instead of a dead campaign.  Picklable, so the
  retry loop runs *inside* process-pool workers.
* :class:`FaultInjectingBackend` — a deterministic, seeded chaos wrapper
  around any :class:`~repro.core.platform.MeasurementBackend`: injects
  exceptions, simulated hangs, and corrupt (non-finite) droop measurements
  at configurable rates, so full campaigns can be tested under fault load.

Corrupt measurements are modelled as non-finite droop: the guard treats a
non-finite fitness value as a fault in its own right, which is exactly how
a production loop defends against a mis-triggered scope capture.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation, MeasurementError

#: Valid ``FaultPolicy.on_exhaust`` actions.
EXHAUST_ACTIONS = ("raise", "skip", "penalize")


class InjectedFaultError(MeasurementError):
    """A fault deliberately injected by :class:`FaultInjectingBackend`."""


class InjectedHangError(MeasurementError):
    """A simulated hang (watchdog-killed measurement) from the chaos wrapper."""


class CorruptMeasurementError(MeasurementError):
    """A measurement produced a non-finite fitness value."""


class EvaluationTimeoutError(MeasurementError):
    """An evaluation exceeded the policy's watchdog budget."""


class QuarantineExhaustedError(MeasurementError):
    """A genome's evaluation kept failing and the policy says to raise.

    Always raised ``from`` the last underlying error, so ``__cause__``
    carries the original fault; the CLI maps this class to its own exit
    code (fault budget exhausted, as opposed to a single hard error).
    """


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """How the evaluation engine reacts to a failing measurement.

    ``eval_timeout_s`` is a cooperative watchdog: an attempt whose wall time
    exceeds it is discarded and counted as a timeout fault (on the paper's
    testbed, the watchdog kills the capture and the value never arrives).
    ``on_exhaust`` decides the fate of a genome once every attempt failed:

    * ``"raise"``  — propagate the last error and kill the run (default,
      the pre-fault-tolerance behaviour);
    * ``"skip"``   — assign ``-inf`` fitness so the genome can never win
      selection, and quarantine it;
    * ``"penalize"`` — assign ``penalty_fitness`` and quarantine it.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    eval_timeout_s: float | None = None
    on_exhaust: str = "raise"
    penalty_fitness: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ConfigurationError("eval_timeout_s must be positive")
        if self.on_exhaust not in EXHAUST_ACTIONS:
            raise ConfigurationError(
                f"on_exhaust must be one of {EXHAUST_ACTIONS}, "
                f"got {self.on_exhaust!r}"
            )

    def exhausted_fitness(self) -> float:
        """The fitness assigned to a quarantined genome (skip/penalize)."""
        if self.on_exhaust == "skip":
            return float("-inf")
        return float(self.penalty_fitness)


# ----------------------------------------------------------------------
# Guarded evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRecord:
    """One failed evaluation attempt.

    ``invariant``/``layer`` are set when the failure was a runtime
    invariant guard firing (corrupt numerics), so telemetry can emit an
    :class:`~repro.core.telemetry.InvariantEvent` alongside the fault.
    """

    error: str
    timeout: bool = False
    invariant: str = ""
    layer: str = ""


def fault_record_from(error: Exception) -> FaultRecord:
    """Build the :class:`FaultRecord` describing *error*."""
    is_invariant = isinstance(error, InvariantViolation)
    return FaultRecord(
        error=f"{type(error).__name__}: {error}",
        timeout=isinstance(error, EvaluationTimeoutError),
        invariant=error.guard if is_invariant else "",
        layer=error.layer if is_invariant else "",
    )


@dataclass(frozen=True)
class EvalOutcome:
    """What one guarded evaluation produced.

    ``value`` is ``None`` when every attempt failed and the policy said not
    to raise; ``faults`` records each failed attempt in order.
    """

    value: float | None
    wall_s: float
    attempts: int
    faults: tuple[FaultRecord, ...] = ()
    stats: object | None = None
    """A :class:`~repro.core.platform.MeasurementStats` delta: the platform
    work this evaluation performed (set when the fitness exposes a
    ``stats_probe``).  Parallel engines merge worker deltas into the
    parent platform so ``--workers N`` telemetry stays complete."""
    spans: tuple = ()
    """Closed :class:`~repro.core.telemetry.SpanEvent` records this
    evaluation produced in a pool worker (set by
    :class:`~repro.obs.spans.TracedTask` when tracing is active); the
    engine re-emits them into the parent's observer chain so the JSONL
    trace stays one coherent tree."""

    @property
    def exhausted(self) -> bool:
        return self.value is None


class GuardedFitness:
    """Retry-with-backoff wrapper turning faults into :class:`EvalOutcome`.

    Picklable (provided the wrapped fitness is), so process-pool workers
    retry locally instead of shipping failures back and forth.  With
    ``on_exhaust="raise"`` exhaustion raises
    :class:`QuarantineExhaustedError` *from* the final error (the original
    fault stays reachable as ``__cause__``), so callers can tell "the
    fault budget ran out" apart from a first-attempt hard error.
    """

    def __init__(self, fitness: Callable, policy: FaultPolicy):
        self.fitness = fitness
        self.policy = policy

    def __call__(self, genome) -> EvalOutcome:
        policy = self.policy
        faults: list[FaultRecord] = []
        probe = getattr(self.fitness, "stats_probe", None)
        stats_before = probe() if probe is not None else None
        start = time.perf_counter()
        attempts = policy.max_retries + 1
        for attempt in range(attempts):
            attempt_start = time.perf_counter()
            try:
                value = float(self.fitness(genome))
                if not math.isfinite(value):
                    raise CorruptMeasurementError(
                        f"measurement produced non-finite fitness {value!r}"
                    )
                wall = time.perf_counter() - attempt_start
                if (policy.eval_timeout_s is not None
                        and wall > policy.eval_timeout_s):
                    raise EvaluationTimeoutError(
                        f"evaluation took {wall:.3f}s "
                        f"(watchdog budget {policy.eval_timeout_s}s)"
                    )
                return EvalOutcome(
                    value=value,
                    wall_s=time.perf_counter() - start,
                    attempts=attempt + 1,
                    faults=tuple(faults),
                    stats=self._stats_delta(probe, stats_before),
                )
            except Exception as error:
                faults.append(fault_record_from(error))
                if attempt + 1 >= attempts:
                    if policy.on_exhaust == "raise":
                        raise QuarantineExhaustedError(
                            f"evaluation failed on all {attempts} attempts; "
                            f"last error: {type(error).__name__}: {error}"
                        ) from error
                    break
                if policy.backoff_s > 0:
                    time.sleep(
                        policy.backoff_s * policy.backoff_factor ** attempt
                    )
        return EvalOutcome(
            value=None,
            wall_s=time.perf_counter() - start,
            attempts=attempts,
            faults=tuple(faults),
            stats=self._stats_delta(probe, stats_before),
        )

    @staticmethod
    def _stats_delta(probe, stats_before):
        if probe is None or stats_before is None:
            return None
        stats_after = probe()
        if stats_after is None:
            return None
        return stats_after.delta(stats_before)


class RetryingMeasurements:
    """Measurement-level retry proxy for loop phases outside the engine.

    The engine guards GA fitness evaluations, but the closed loop also
    measures during the resonance sweep and the final verification — a
    fault there would still kill the campaign.  This proxy retries each
    individual measurement per the policy (validating that the droop is
    finite, like the guard does) and raises
    :class:`QuarantineExhaustedError` once attempts are exhausted: a sweep
    probe has no genome to quarantine, and with per-measurement retries an
    exhausted probe means the backend is down, not flaky.  Everything else
    (``chip``, ``stats`` …) passes through.
    """

    def __init__(self, platform, policy: FaultPolicy, *, observers=(),
                 label: str = "measurement"):
        self._platform = platform
        self._policy = policy
        self._observers = tuple(observers)
        self._label = label

    def __getattr__(self, name):
        return getattr(self._platform, name)

    def measure_program(self, *args, **kwargs):
        return self._retry(
            lambda: self._platform.measure_program(*args, **kwargs)
        )

    def measure_current(self, *args, **kwargs):
        return self._retry(
            lambda: self._platform.measure_current(*args, **kwargs)
        )

    def measure_programs(self, *args, **kwargs):
        return self._retry(
            lambda: self._platform.measure_programs(*args, **kwargs),
            batch=True,
        )

    def _retry(self, measure, *, batch: bool = False):
        from repro.core.telemetry import FaultEvent, InvariantEvent, notify

        policy = self._policy
        attempts = policy.max_retries + 1
        for attempt in range(attempts):
            try:
                measurement = measure()
                results = measurement if batch else (measurement,)
                for result in results:
                    droop = result.max_droop_v
                    if not math.isfinite(droop):
                        raise CorruptMeasurementError(
                            f"measurement produced non-finite droop {droop!r}"
                        )
                return measurement
            except Exception as error:
                final = attempt + 1 >= attempts
                if isinstance(error, InvariantViolation):
                    notify(self._observers, InvariantEvent(
                        guard=error.guard,
                        layer=error.layer,
                        error=str(error),
                        genome=self._label,
                    ))
                notify(self._observers, FaultEvent(
                    genome=self._label,
                    error=f"{type(error).__name__}: {error}",
                    attempt=attempt + 1,
                    action="quarantine" if final else "retry",
                    timeout=isinstance(error, EvaluationTimeoutError),
                ))
                if final:
                    raise QuarantineExhaustedError(
                        f"{self._label} failed on all {attempts} attempts; "
                        f"last error: {type(error).__name__}: {error}"
                    ) from error
                if policy.backoff_s > 0:
                    time.sleep(
                        policy.backoff_s * policy.backoff_factor ** attempt
                    )
        raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# Chaos: deterministic fault injection around any backend
# ----------------------------------------------------------------------
#: Valid ``FaultInjectionConfig.corrupt_mode`` shapes.
CORRUPT_MODES = ("nan", "inf", "truncate")


@dataclass(frozen=True)
class FaultInjectionConfig:
    """Rates and shape of injected faults (all rates are per measurement).

    ``corrupt_mode`` picks the corruption shape: ``"nan"`` (mis-triggered
    capture, all-NaN voltage), ``"inf"`` (railed ADC, +inf samples), or
    ``"truncate"`` (capture cut short, voltage trace half the length of
    the current trace).  Each shape trips a different invariant guard.
    """

    seed: int = 0
    exception_rate: float = 0.0
    hang_rate: float = 0.0
    hang_s: float = 0.005
    corrupt_rate: float = 0.0
    corrupt_mode: str = "nan"
    hang_forever_rate: float = 0.0
    hang_forever_s: float = 3600.0
    abort_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("exception_rate", "hang_rate", "corrupt_rate",
                     "hang_forever_rate", "abort_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        total = self.exception_rate + self.hang_rate + self.corrupt_rate
        if total > 1.0:
            raise ConfigurationError("fault rates must sum to <= 1")
        if self.hang_forever_rate + self.abort_rate > 1.0:
            raise ConfigurationError(
                "hang_forever_rate + abort_rate must sum to <= 1"
            )
        if self.hang_s < 0 or self.hang_forever_s < 0:
            raise ConfigurationError("hang durations must be >= 0")
        if self.corrupt_mode not in CORRUPT_MODES:
            raise ConfigurationError(
                f"corrupt_mode must be one of {CORRUPT_MODES}, "
                f"got {self.corrupt_mode!r}"
            )


@dataclass
class FaultInjectionCounts:
    """How many of each fault kind the wrapper has injected."""

    calls: int = 0
    exceptions: int = 0
    hangs: int = 0
    corruptions: int = 0
    hang_forevers: int = 0
    aborts: int = 0

    @property
    def injected(self) -> int:
        return (self.exceptions + self.hangs + self.corruptions
                + self.hang_forevers + self.aborts)


@dataclass
class FaultInjectingBackend:
    """Deterministic chaos wrapper around any measurement backend.

    Fault decisions come from a private seeded RNG drawn once per
    measurement call, so a given seed produces the same fault schedule
    every run — chaos tests stay reproducible.  Non-faulted calls pass
    through untouched, which is what lets the chaos tests assert that
    fitness values of non-faulted genomes are bit-identical to a clean run.

    Corruption mangles the voltage trace per ``config.corrupt_mode`` (NaN
    fill, +inf fill, or truncation); the platform's invariant guards catch
    it as an :class:`~repro.errors.InvariantViolation` and the fault
    policy retries.
    """

    inner: object
    config: FaultInjectionConfig = field(default_factory=FaultInjectionConfig)
    counts: FaultInjectionCounts = field(default_factory=FaultInjectionCounts)

    def __post_init__(self) -> None:
        self.chip = self.inner.chip
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _hard_fault(self, program) -> str | None:
        """Hard faults (worker abort / hang-forever), targeted by content.

        The soft faults above are scheduled by a per-process RNG draw —
        fine for retries, but fatal faults kill the *worker process*, and
        a respawned worker restarts its RNG stream: an early draw-based
        abort would recur forever and no batch could make progress.
        Keying on a hash of the program content instead makes the fault
        stick to the *candidate*: the same genome hangs/aborts in every
        worker (deterministic across respawns and executors), and once
        the supervisor quarantines it the campaign moves on.
        """
        cfg = self.config
        if cfg.abort_rate <= 0.0 and cfg.hang_forever_rate <= 0.0:
            return None
        key = f"{cfg.seed}:{program!r}".encode()
        digest = hashlib.sha256(key).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        if unit < cfg.abort_rate:
            return "abort"
        if unit < cfg.abort_rate + cfg.hang_forever_rate:
            return "hang-forever"
        return None

    def _apply_hard(self, fault: str) -> None:
        if fault == "abort":
            self.counts.aborts += 1
            # A segfault does not unwind the stack or flush buffers;
            # neither does os._exit.  The parent sees BrokenProcessPool.
            os._exit(86)
        self.counts.hang_forevers += 1
        if self.config.hang_forever_s:
            time.sleep(self.config.hang_forever_s)
        # Only reached when hang_forever_s is short (serial test rigs) or
        # a cooperative-timeout test outlasts the sleep.
        raise InjectedHangError(
            f"injected hang-forever outlasted its sleep "
            f"(call {self.counts.calls})"
        )

    def _draw_fault(self) -> str | None:
        cfg = self.config
        self.counts.calls += 1
        draw = float(self._rng.random())
        if draw < cfg.exception_rate:
            self.counts.exceptions += 1
            return "exception"
        if draw < cfg.exception_rate + cfg.hang_rate:
            self.counts.hangs += 1
            return "hang"
        if draw < cfg.exception_rate + cfg.hang_rate + cfg.corrupt_rate:
            self.counts.corruptions += 1
            return "corrupt"
        return None

    def _corrupt(self, measurement):
        from repro.pdn.transient import VoltageTrace

        voltage = measurement.voltage
        mode = self.config.corrupt_mode
        if mode == "truncate":
            keep = max(1, len(voltage.samples) // 2)
            samples = voltage.samples[:keep]
        elif mode == "inf":
            samples = np.full(len(voltage.samples), np.inf)
        else:
            samples = np.full(len(voltage.samples), np.nan)
        bad = VoltageTrace(samples, voltage.dt, vdd_nominal=voltage.vdd_nominal)
        return type(measurement)(
            voltage=bad,
            sensitivity=measurement.sensitivity,
            current=measurement.current,
            period_cycles=measurement.period_cycles,
            supply_v=measurement.supply_v,
            iteration_cycles=measurement.iteration_cycles,
        )

    def _apply(self, fault: str | None, measure):
        if fault == "exception":
            raise InjectedFaultError(
                f"injected backend exception (call {self.counts.calls})"
            )
        if fault == "hang":
            if self.config.hang_s:
                time.sleep(self.config.hang_s)
            raise InjectedHangError(
                f"injected backend hang, watchdog fired "
                f"(call {self.counts.calls})"
            )
        measurement = measure()
        if fault == "corrupt":
            return self._corrupt(measurement)
        return measurement

    # ------------------------------------------------------------------
    # MeasurementBackend protocol
    # ------------------------------------------------------------------
    def measure_program(self, program, threads, *, module_phases=None,
                        supply_v=None, smt_phase_cycles=None):
        hard = self._hard_fault(program)
        if hard is not None:
            self.counts.calls += 1
            self._apply_hard(hard)
        fault = self._draw_fault()
        return self._apply(fault, lambda: self.inner.measure_program(
            program, threads,
            module_phases=module_phases,
            supply_v=supply_v,
            smt_phase_cycles=smt_phase_cycles,
        ))

    def measure_current(self, current, *, sensitivity=None, supply_v=None,
                        baseline_current_a=None):
        fault = self._draw_fault()
        return self._apply(fault, lambda: self.inner.measure_current(
            current,
            sensitivity=sensitivity,
            supply_v=supply_v,
            baseline_current_a=baseline_current_a,
        ))

    def stats(self):
        stats_fn = getattr(self.inner, "stats", None)
        if stats_fn is None:
            from repro.core.platform import MeasurementStats

            return MeasurementStats(measurements=self.counts.calls)
        return stats_fn()
