"""AUDIT: the full closed-loop stressmark generation framework.

Ties together everything in paper Fig. 5: opcode pool filtering (adapting to
the plugged-in processor), the resonance sweep, hierarchical sub-block code
generation, the GA, the measurement platform, and the dithering-equivalent
worst-case alignment — producing first-droop **resonance** stressmarks
(A-Res) or first-droop **excitation** stressmarks (A-Ex) without manual
intervention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.errors import CampaignInterrupted, CheckpointError, SearchError
from repro.isa.kernels import LoopKernel, ThreadProgram
from repro.isa.opcodes import OpcodeTable, default_table
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.codegen import DEFAULT_ITERATIONS, genome_to_kernel
from repro.core.cost import MaxDroopCost
from repro.core.engine import EvaluationEngine, FitnessExecutor
from repro.core.faults import FaultPolicy, RetryingMeasurements
from repro.core.ga import GaConfig, GaResult, GaSnapshot, GeneticAlgorithm
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.core.platform import Measurement, MeasurementPlatform
from repro.core.qualify import (
    ARTIFACT,
    FRAGILE,
    PASS,
    QualificationCheckpoint,
    QualificationReport,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.core.resonance import ResonanceSweepResult, find_resonance
from repro.core.telemetry import (
    CheckpointEvent,
    MeasurementStatsEvent,
    PhaseEvent,
    RunObserver,
    SupervisorEvent,
    notify,
)
from repro.obs.spans import span


class StressmarkMode(str, Enum):
    """What kind of first-droop stressmark to synthesise."""

    RESONANT = "resonant"
    """Periodic HP/LP loop at the PDN resonance (A-Res)."""

    EXCITATION = "excitation"
    """Long-LP loop producing isolated low→high events (A-Ex)."""


@dataclass(frozen=True)
class AuditConfig:
    """AUDIT run parameters.

    ``subblock_cycles`` is K and ``replications`` is S from the paper's
    hierarchical generation; the evolved sub-block has
    ``K × decode_width`` instruction slots.  Setting ``replications=1`` and
    scaling ``subblock_cycles`` up gives the flat (non-hierarchical)
    baseline used in the Section III.C comparison.
    """

    threads: int = 4
    mode: StressmarkMode = StressmarkMode.RESONANT
    subblock_cycles: int = 6
    replications: int = 3
    ga: GaConfig = field(default_factory=GaConfig)
    resonance_hp_count: int = 8
    lp_sweep_step: int = 8

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise SearchError("threads must be >= 1")
        if self.subblock_cycles < 1:
            raise SearchError("subblock_cycles must be >= 1")
        if self.replications < 1:
            raise SearchError("replications must be >= 1")


@dataclass(frozen=True)
class CampaignQualification:
    """Qualification outcome of a campaign's winner (plus any fallbacks).

    ``reports[0]`` is always the GA winner; further entries are the
    runner-ups qualified after an ARTIFACT verdict, in fitness order.
    ``chosen`` indexes the candidate the campaign finally promoted —
    nonzero means the GA winner was demoted as a measurement artifact.
    """

    reports: tuple
    chosen: int

    @property
    def winner_report(self) -> QualificationReport:
        return self.reports[0]

    @property
    def chosen_report(self) -> QualificationReport:
        return self.reports[self.chosen]

    @property
    def demoted(self) -> bool:
        return self.chosen != 0

    @property
    def verdict(self) -> str:
        return self.chosen_report.verdict


@dataclass(frozen=True)
class AuditResult:
    """Everything an AUDIT run produces."""

    name: str
    kernel: LoopKernel
    genome: StressmarkGenome
    space: GenomeSpace
    measurement: Measurement
    resonance: ResonanceSweepResult
    ga_result: GaResult
    threads: int
    qualification: CampaignQualification | None = None
    config: AuditConfig | None = None
    """The configuration the campaign ran under — provenance for the
    registry (mode, replications, GA budget alongside the genome)."""

    @property
    def max_droop_v(self) -> float:
        return self.measurement.max_droop_v

    def program(self, iterations: int = DEFAULT_ITERATIONS) -> ThreadProgram:
        """A runnable program of the winning stressmark."""
        return ThreadProgram(self.kernel, iterations)


class AuditRunner:
    """Drives the full AUDIT loop against one measurement platform."""

    def __init__(
        self,
        platform: MeasurementPlatform,
        *,
        table: OpcodeTable | None = None,
        cost=None,
        config: AuditConfig | None = None,
        executor: FitnessExecutor | None = None,
        observers: Sequence[RunObserver] = (),
        platform_factory: Callable[[], MeasurementPlatform] | None = None,
        fault_policy: FaultPolicy | None = None,
    ):
        self.platform = platform
        full_table = table or default_table()
        # Adapt the opcode pool to the processor actually plugged in
        # (Section V.C: SM1's FMA4 ops do not run on the Phenom II).
        self.table = full_table.supported_on(platform.chip.extensions)
        self.cost = cost or MaxDroopCost()
        self.config = config or AuditConfig()
        self.executor = executor
        self.observers = tuple(observers)
        self.platform_factory = platform_factory
        self.fault_policy = fault_policy

    # ------------------------------------------------------------------
    def build_space(self, resonance: ResonanceSweepResult) -> GenomeSpace:
        """Genome space sized from the machine and the detected resonance."""
        cfg = self.config
        slots = cfg.subblock_cycles * self.platform.chip.module.decode_width
        period = resonance.best_period_cycles
        if cfg.mode is StressmarkMode.RESONANT:
            # LP range bracketing the resonant loop length generously: the
            # GA tunes the exact length to put the period on the peak.
            lp_min = 0
            lp_max = max(resonance.best_lp_nops * 2,
                         4 * period * self.platform.chip.module.decode_width // 4)
        else:
            # Excitation: long quiet stretch so each HP burst is isolated.
            lp_min = period * 8
            lp_max = period * 24
        return GenomeSpace(
            table=self.table,
            slots=slots,
            replications=cfg.replications,
            lp_nops_min=lp_min,
            lp_nops_max=lp_max,
        )

    def default_seeds(self, space: GenomeSpace,
                      resonance: ResonanceSweepResult) -> list[StressmarkGenome]:
        """Convergence-rate seeds (paper Fig. 5's 'Initial Seed Entries').

        Three expert-shaped genomes: a saturated high-power block, the same
        diluted with NOPs, and an FP+integer mix — the structures manual
        stressmarks use.  The GA is free to discard them.
        """
        pipelined = [s for s in self.table
                     if s.issue_interval <= 2 and s.energy_pj > 0]
        if not pipelined:
            return []
        hot = max(pipelined, key=lambda s: s.energy_pj).mnemonic
        int_ops = [s for s in pipelined
                   if not s.is_fp and s.operand_class is not None]
        alt = max(int_ops, key=lambda s: s.energy_pj).mnemonic if int_ops else hot
        lp = int(min(max(resonance.best_lp_nops, space.lp_nops_min),
                     space.lp_nops_max))
        has_nop = "nop" in self.table
        seeds = [StressmarkGenome(subblock=(hot,) * space.slots, lp_nops=lp)]
        if has_nop:
            seeds.append(StressmarkGenome(
                subblock=tuple(hot if i % 2 == 0 else "nop"
                               for i in range(space.slots)),
                lp_nops=lp,
            ))
        seeds.append(StressmarkGenome(
            subblock=tuple(hot if i % 2 == 0 else alt
                           for i in range(space.slots)),
            lp_nops=lp,
        ))
        return seeds

    def build_engine(self, space: GenomeSpace) -> EvaluationEngine:
        """The evaluation engine the GA scores generations through."""
        return EvaluationEngine.for_stressmarks(
            self.platform,
            space,
            threads=self.config.threads,
            cost=self.cost,
            executor=self.executor,
            observers=self.observers,
            platform_factory=self.platform_factory,
            fault_policy=self.fault_policy,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        name: str | None = None,
        seeds: list[StressmarkGenome] | None = None,
        checkpoint: CampaignCheckpoint | None = None,
        resume: bool = False,
        qualify: QualifyConfig | None = None,
        qualify_checkpoint: QualificationCheckpoint | None = None,
        seed_cache: dict | None = None,
        stop: Callable[[], str | None] | None = None,
    ) -> AuditResult:
        """Execute the complete AUDIT flow and return the best stressmark.

        With ``checkpoint``, a :class:`~repro.core.checkpoint
        .CampaignCheckpoint` snapshot (GA state + fitness cache) is written
        atomically at every generation boundary.  With ``resume=True`` the
        newest snapshot in that store is restored first and the campaign
        continues from it — same seeds, same final stressmark as an
        uninterrupted run, because both the GA's RNG stream and the
        evaluator's memoised fitness values survive the restart.  (The
        resonance sweep is deterministic and cheap relative to the GA, so
        it is simply re-run.)

        With ``qualify``, the GA winner is qualified under perturbations
        (see :class:`~repro.core.qualify.StressmarkQualifier`); an
        ARTIFACT winner is demoted and the best-qualified runner-up from
        the engine's fitness cache is promoted in its place — graceful
        degradation of the campaign result instead of shipping an
        artifact.

        ``seed_cache`` pre-populates the engine's fitness cache with
        genome → fitness pairs measured elsewhere on an identical
        platform (the fleet orchestrator's cross-shard seeding).  Seeded
        entries never override a resumed checkpoint's own cache.

        ``stop`` is a poll callable (typically
        :meth:`~repro.supervision.ShutdownCoordinator.stop_requested`)
        checked at each generation boundary after its checkpoint lands; a
        non-``None`` reason stops the campaign gracefully by raising
        :class:`~repro.errors.CampaignInterrupted`.
        """
        with span("audit.campaign", mode=self.config.mode.value,
                  threads=self.config.threads, campaign=name or ""):
            return self._run(
                name=name, seeds=seeds, checkpoint=checkpoint, resume=resume,
                qualify=qualify, qualify_checkpoint=qualify_checkpoint,
                seed_cache=seed_cache, stop=stop,
            )

    def _run(
        self, *, name, seeds, checkpoint, resume, qualify,
        qualify_checkpoint, seed_cache, stop,
    ) -> AuditResult:
        cfg = self.config
        if resume and checkpoint is None:
            raise CheckpointError("resume=True needs a checkpoint store")
        attach = getattr(self.platform, "attach_observers", None)
        if attach is not None:
            attach(self.observers)
        # GA evaluations are guarded inside the engine; the sweep and the
        # final verification measure directly, so guard them here too.
        measure_platform = self.platform
        if self.fault_policy is not None:
            measure_platform = RetryingMeasurements(
                self.platform, self.fault_policy,
                observers=self.observers, label="closed-loop-measurement",
            )
        sweep_start = time.perf_counter()
        with span("audit.resonance-sweep"):
            resonance = find_resonance(
                measure_platform,
                self.table,
                threads=1,
                period_candidates=list(range(8, 133, cfg.lp_sweep_step)),
            )
        notify(self.observers, PhaseEvent(
            name="resonance-sweep",
            wall_s=time.perf_counter() - sweep_start,
            detail=f"{len(resonance.points)} probes, "
                   f"{resonance.resonance_hz / 1e6:.1f} MHz",
        ))
        space = self.build_space(resonance)
        engine = self.build_engine(space)
        if seed_cache:
            engine.seed_cache(seed_cache)
        ga = GeneticAlgorithm(
            random_fn=space.random_genome,
            mutate_fn=lambda g, rng, rate: space.mutate(g, rng, rate=rate),
            crossover_fn=space.crossover,
            fitness_fn=engine,
            config=cfg.ga,
            observers=self.observers,
        )
        resume_snapshot: GaSnapshot | None = None
        if resume:
            state = checkpoint.load()
            if state is None:
                raise CheckpointError(
                    f"nothing to resume in {checkpoint.directory} "
                    "(no state.json; did the campaign checkpoint at least "
                    "one generation?)"
                )
            if state.salvaged:
                notify(self.observers, SupervisorEvent(
                    action="salvage",
                    task=f"generation {state.ga.generation}",
                    detail=state.salvage_reason,
                ))
            resume_snapshot = state.ga
            engine.restore_cache(
                state.fitness_cache,
                cache_hits=state.cache_hits,
                evaluations=state.ga.evaluations,
            )
        checkpoint_fn = None
        if checkpoint is not None:
            def checkpoint_fn(snapshot: GaSnapshot) -> None:
                save_start = time.perf_counter()
                path = checkpoint.save(
                    snapshot,
                    fitness_cache=engine.cache_snapshot(),
                    cache_hits=engine.cache_hits,
                )
                notify(self.observers, CheckpointEvent(
                    generation=snapshot.generation,
                    path=str(path),
                    wall_s=time.perf_counter() - save_start,
                ))
        if seeds is None:
            seeds = self.default_seeds(space, resonance)
        ga_start = time.perf_counter()
        try:
            with span("audit.ga-search", generations=cfg.ga.generations):
                ga_result = ga.run(
                    seeds=seeds, resume=resume_snapshot,
                    checkpoint_fn=checkpoint_fn, stop_fn=stop,
                )
        except CampaignInterrupted as error:
            # Re-raise with the resume point attached: the generation
            # boundary's checkpoint landed just before the stop check.
            raise CampaignInterrupted(
                error.reason,
                generation=error.generation,
                checkpoint_path=(
                    str(checkpoint.state_path) if checkpoint is not None else ""
                ),
            ) from None
        notify(self.observers, PhaseEvent(
            name="ga-search",
            wall_s=time.perf_counter() - ga_start,
            detail=f"{ga_result.evaluations} evaluations, "
                   f"{len(ga_result.history)} generations",
        ))
        label = name or (
            "A-Res" if cfg.mode is StressmarkMode.RESONANT else "A-Ex"
        )
        kernel = genome_to_kernel(ga_result.best_genome, space, name=label)
        program = ThreadProgram(kernel, DEFAULT_ITERATIONS)
        final_start = time.perf_counter()
        with span("audit.final-measurement", threads=cfg.threads):
            measurement = measure_platform.measure_program(program, cfg.threads)
        notify(self.observers, PhaseEvent(
            name="final-measurement",
            wall_s=time.perf_counter() - final_start,
            detail=f"{label} at {cfg.threads}T",
        ))
        genome = ga_result.best_genome
        qualification = None
        if qualify is not None:
            qual_start = time.perf_counter()
            with span("audit.qualification"):
                qualification, genome, kernel = self._qualify_winner(
                    engine=engine,
                    space=space,
                    winner=genome,
                    label=label,
                    kernel=kernel,
                    config=qualify,
                    checkpoint=qualify_checkpoint,
                )
            if qualification.demoted:
                measurement = measure_platform.measure_program(
                    ThreadProgram(kernel, DEFAULT_ITERATIONS), cfg.threads
                )
            notify(self.observers, PhaseEvent(
                name="qualification",
                wall_s=time.perf_counter() - qual_start,
                detail=(
                    f"{qualification.verdict}"
                    + (", winner demoted" if qualification.demoted else "")
                ),
            ))
        stats_fn = getattr(self.platform, "stats", None)
        if stats_fn is not None:
            notify(self.observers, MeasurementStatsEvent(
                stats=stats_fn().to_dict(), source="audit",
            ))
        return AuditResult(
            name=label,
            kernel=kernel,
            genome=genome,
            space=space,
            measurement=measurement,
            resonance=resonance,
            ga_result=ga_result,
            threads=cfg.threads,
            qualification=qualification,
            config=cfg,
        )

    # ------------------------------------------------------------------
    def _qualify_winner(
        self,
        *,
        engine: EvaluationEngine,
        space: GenomeSpace,
        winner: StressmarkGenome,
        label: str,
        kernel: LoopKernel,
        config: QualifyConfig,
        checkpoint: QualificationCheckpoint | None,
    ) -> tuple[CampaignQualification, StressmarkGenome, LoopKernel]:
        """Qualify the winner; on ARTIFACT, try the best runner-ups.

        Runner-ups come from the engine's fitness cache (every genome the
        campaign ever measured) in fitness order, quarantined genomes
        excluded.  The first PASS stops the search; otherwise the best
        verdict (ties broken by robustness, then fitness rank) wins.
        """
        qualifier = StressmarkQualifier(
            self.platform,
            threads=self.config.threads,
            config=config,
            cost=self.cost,
            executor=self.executor,
            observers=self.observers,
            platform_factory=self.platform_factory,
            fault_policy=self.fault_policy,
            checkpoint=checkpoint,
        )
        genomes = [winner]
        reports = [qualifier.qualify_program(
            ThreadProgram(kernel, DEFAULT_ITERATIONS), name=label,
        )]
        if reports[0].verdict == ARTIFACT and config.max_fallbacks > 0:
            runner_ups = sorted(
                (
                    (g, fitness)
                    for g, fitness in engine.cache_snapshot().items()
                    if g != winner and g not in engine.quarantined
                ),
                key=lambda item: item[1],
                reverse=True,
            )
            for rank, (genome, _fitness) in enumerate(
                runner_ups[: config.max_fallbacks], start=1
            ):
                fallback_name = f"{label}-runnerup{rank}"
                fallback_kernel = genome_to_kernel(
                    genome, space, name=fallback_name
                )
                report = qualifier.qualify_program(
                    ThreadProgram(fallback_kernel, DEFAULT_ITERATIONS),
                    name=fallback_name,
                )
                genomes.append(genome)
                reports.append(report)
                if report.verdict == PASS:
                    break
        verdict_rank = {PASS: 0, FRAGILE: 1, ARTIFACT: 2}
        chosen = min(
            range(len(reports)),
            key=lambda i: (
                verdict_rank[reports[i].verdict],
                -reports[i].robustness,
                i,
            ),
        )
        qualification = CampaignQualification(
            reports=tuple(reports), chosen=chosen,
        )
        if chosen != 0:
            genome = genomes[chosen]
            kernel = genome_to_kernel(genome, space, name=label)
        else:
            genome = winner
        return qualification, genome, kernel
