"""Voltage-at-failure model: timing margin on the paths actually exercised.

Paper Section V.A.4's central insight is that the measured droop is *not*
the only failure indicator: SM2's droop is comparable to ordinary
benchmarks, yet SM2 fails at a much higher supply voltage because it
exercises **sensitive paths**.  We model this directly:

* every opcode carries a ``path_sensitivity`` (see
  :mod:`repro.isa.opcodes`); the machine model emits a per-cycle
  sensitivity trace — the most sensitive path active each cycle;
* a cycle fails when the instantaneous on-die voltage falls below the
  requirement of the most sensitive active path:

      v(t)  <  vcrit_base * sensitivity(t)

* the failure experiment lowers the supply in fixed decrements (the paper
  uses 12.5 mV) and reports the first voltage at which any cycle fails.

Cycles with no in-flight computation (sensitivity 0) impose only a
retention floor far below any operating point, so they never fail first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MeasurementError
from repro.pdn.transient import VoltageTrace

#: Paper's supply decrement for the failure search.
FAILURE_STEP_V = 0.0125


@dataclass(frozen=True)
class FailureModel:
    """Critical-path voltage requirements.

    ``vcrit_base`` is the minimum voltage at which the *typical* (1.0
    sensitivity) path still meets timing; a path with sensitivity ``s``
    requires ``vcrit_base * s``.
    """

    vcrit_base: float

    def __post_init__(self) -> None:
        if self.vcrit_base <= 0:
            raise MeasurementError("vcrit_base must be positive")

    def fails(self, voltage: VoltageTrace, sensitivity: np.ndarray) -> bool:
        """Does any cycle violate its active path's voltage requirement?"""
        sens = np.asarray(sensitivity, dtype=np.float64)
        n = min(len(voltage.samples), len(sens))
        if n == 0:
            raise MeasurementError("empty voltage or sensitivity trace")
        v = voltage.samples[:n]
        required = self.vcrit_base * sens[:n]
        return bool(np.any(v < required))

    def margin_v(self, voltage: VoltageTrace, sensitivity: np.ndarray) -> float:
        """Worst-case margin: min over cycles of (v - required).

        Negative values mean the run fails.  The margin tells you how much
        additional supply droop (or supply reduction) the run tolerates.
        """
        sens = np.asarray(sensitivity, dtype=np.float64)
        n = min(len(voltage.samples), len(sens))
        if n == 0:
            raise MeasurementError("empty voltage or sensitivity trace")
        active = sens[:n] > 0
        if not active.any():
            return float("inf")
        v = voltage.samples[:n][active]
        required = self.vcrit_base * sens[:n][active]
        return float(np.min(v - required))


def voltage_at_failure(
    run_at: Callable[[float], tuple[VoltageTrace, np.ndarray]],
    model: FailureModel,
    *,
    vdd_nominal: float,
    step_v: float = FAILURE_STEP_V,
    max_steps: int = 60,
) -> float:
    """Lower the supply in *step_v* decrements until the run fails.

    ``run_at(vs)`` re-measures the program at supply ``vs`` (lower supply
    means proportionally more current for the same energy, hence deeper
    droops — the same feedback real hardware shows).  Returns the first
    failing supply voltage.  Raises if the program still passes after
    *max_steps* decrements (the model would then be mis-calibrated).
    """
    if step_v <= 0:
        raise MeasurementError("step_v must be positive")
    for k in range(max_steps + 1):
        vs = vdd_nominal - k * step_v
        voltage, sensitivity = run_at(vs)
        if model.fails(voltage, sensitivity):
            return vs
    raise MeasurementError(
        f"no failure found within {max_steps} decrements below {vdd_nominal} V"
    )
