"""Measurement substrate: scope captures, droop statistics, failure search."""

from repro.measure.droop import (
    DroopEvent,
    DroopHistogram,
    DroopStatistics,
    droop_events,
)
from repro.measure.failure import (
    FAILURE_STEP_V,
    FailureModel,
    voltage_at_failure,
)
from repro.measure.oscilloscope import (
    Oscilloscope,
    ScopeCapture,
    dithering_scope,
    droop_capture_scope,
)

__all__ = [
    "FAILURE_STEP_V",
    "DroopEvent",
    "DroopHistogram",
    "DroopStatistics",
    "FailureModel",
    "Oscilloscope",
    "ScopeCapture",
    "dithering_scope",
    "droop_capture_scope",
    "droop_events",
    "voltage_at_failure",
]
