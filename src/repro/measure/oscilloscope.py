"""Oscilloscope model: the measurement instrument of the hardware path.

Mirrors the paper's set-up (Section IV): a Tektronix scope with a
differential probe at the package/die supply connection, triggering on large
droops at 5 GS/s for droop capture and 100 MS/s for the long natural-
dithering scope shots of Fig. 6.

The scope resamples a simulated :class:`~repro.pdn.transient.VoltageTrace`
(whose native rate is the core clock) at its own sample rate, in either
plain decimation mode or min/max **peak-detect** mode (real scopes use peak
detect for exactly this reason: a 100 MS/s stream must not miss a 3-ns
droop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.measure.droop import DroopEvent, DroopHistogram, DroopStatistics, droop_events
from repro.pdn.transient import VoltageTrace


@dataclass(frozen=True)
class ScopeCapture:
    """One scope acquisition."""

    samples: np.ndarray
    sample_rate_hz: float
    vdd_nominal: float

    def statistics(self) -> DroopStatistics:
        return DroopStatistics.from_samples(self.samples, self.vdd_nominal)

    def histogram(self, *, bins: int = 120,
                  v_range: tuple[float, float] | None = None) -> DroopHistogram:
        return DroopHistogram.from_samples(
            self.samples, self.vdd_nominal, bins=bins, v_range=v_range
        )

    def triggered_droops(self, threshold_v: float) -> list[DroopEvent]:
        return droop_events(self.samples, threshold_v=threshold_v)

    @property
    def duration_s(self) -> float:
        return len(self.samples) / self.sample_rate_hz


class Oscilloscope:
    """Voltage-probe front end with configurable rate and acquisition mode."""

    def __init__(self, sample_rate_hz: float = 5e9, *, peak_detect: bool = True):
        if sample_rate_hz <= 0:
            raise MeasurementError("sample rate must be positive")
        self.sample_rate_hz = sample_rate_hz
        self.peak_detect = peak_detect

    def capture(self, trace: VoltageTrace) -> ScopeCapture:
        """Acquire *trace* at the scope's sample rate.

        When the scope is slower than the signal's native rate, plain mode
        keeps every Nth sample while peak-detect mode keeps the *minimum* of
        each N-sample window (droops are what we are hunting).  When the
        scope is as fast or faster, the native samples pass through — the
        simulation can't invent information between clock cycles.
        """
        native_rate = 1.0 / trace.dt
        stride = max(1, int(round(native_rate / self.sample_rate_hz)))
        if stride == 1:
            samples = trace.samples.copy()
            effective_rate = native_rate
        elif self.peak_detect:
            usable = (len(trace.samples) // stride) * stride
            if usable == 0:
                raise MeasurementError("trace shorter than one scope sample window")
            windows = trace.samples[:usable].reshape(-1, stride)
            samples = windows.min(axis=1)
            effective_rate = native_rate / stride
        else:
            samples = trace.samples[::stride].copy()
            effective_rate = native_rate / stride
        return ScopeCapture(
            samples=samples,
            sample_rate_hz=effective_rate,
            vdd_nominal=trace.vdd_nominal,
        )


def droop_capture_scope() -> Oscilloscope:
    """The 5 GS/s droop-triggered configuration of paper Section IV."""
    return Oscilloscope(5e9, peak_detect=True)


def dithering_scope() -> Oscilloscope:
    """The 100 MS/s configuration used for Fig. 6's natural-dithering shot."""
    return Oscilloscope(100e6, peak_detect=True)
