"""Droop metrics and event statistics.

The paper characterises programs by their worst droop (Fig. 9), by how
*often* large droops occur (Fig. 10's histograms — "what dictates the
failure point ... is the higher-probability droop events near the tail"),
and by discrete droop events captured with a triggered oscilloscope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class DroopEvent:
    """One triggered excursion below the droop threshold."""

    start_index: int
    end_index: int
    min_v: float

    @property
    def depth_below(self) -> float:
        """Depth below the trigger at the event minimum (for sorting)."""
        return -self.min_v


@dataclass(frozen=True)
class DroopStatistics:
    """Summary statistics of a voltage waveform."""

    vdd_nominal: float
    min_v: float
    max_v: float
    mean_v: float
    max_droop_v: float
    max_overshoot_v: float
    samples: int

    @classmethod
    def from_samples(cls, samples: np.ndarray, vdd_nominal: float) -> "DroopStatistics":
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise MeasurementError("cannot summarise an empty waveform")
        min_v = float(samples.min())
        max_v = float(samples.max())
        return cls(
            vdd_nominal=vdd_nominal,
            min_v=min_v,
            max_v=max_v,
            mean_v=float(samples.mean()),
            max_droop_v=max(0.0, vdd_nominal - min_v),
            max_overshoot_v=max(0.0, max_v - vdd_nominal),
            samples=int(samples.size),
        )


def droop_events(
    samples: np.ndarray,
    *,
    threshold_v: float,
) -> list[DroopEvent]:
    """Segment a waveform into excursions below *threshold_v*.

    Each maximal run of consecutive samples below the threshold is one
    event, like an oscilloscope trigger capturing each crossing.
    """
    samples = np.asarray(samples, dtype=np.float64)
    below = samples < threshold_v
    if not below.any():
        return []
    # Find run boundaries of the boolean mask.
    padded = np.concatenate([[False], below, [False]])
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    return [
        DroopEvent(
            start_index=int(s),
            end_index=int(e),
            min_v=float(samples[s:e].min()),
        )
        for s, e in zip(starts, ends)
    ]


@dataclass(frozen=True)
class DroopHistogram:
    """Histogram of sampled supply voltage (paper Fig. 10)."""

    counts: np.ndarray
    bin_edges: np.ndarray
    vdd_nominal: float

    @classmethod
    def from_samples(
        cls,
        samples: np.ndarray,
        vdd_nominal: float,
        *,
        bins: int = 120,
        v_range: tuple[float, float] | None = None,
    ) -> "DroopHistogram":
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise MeasurementError("cannot histogram an empty waveform")
        if bins < 2:
            raise MeasurementError("need at least 2 bins")
        counts, edges = np.histogram(samples, bins=bins, range=v_range)
        return cls(counts=counts, bin_edges=edges, vdd_nominal=vdd_nominal)

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    @property
    def total_samples(self) -> int:
        return int(self.counts.sum())

    @property
    def modal_voltage(self) -> float:
        """Bin centre with the most samples."""
        return float(self.bin_centers[int(np.argmax(self.counts))])

    def tail_fraction(self, below_v: float) -> float:
        """Fraction of samples strictly below *below_v*.

        The paper's failure discussion keys on the weight of the
        low-voltage tail, not just its deepest point.
        """
        mask = self.bin_centers < below_v
        return float(self.counts[mask].sum()) / max(1, self.total_samples)

    def spread_v(self) -> float:
        """Width of the occupied voltage range (max - min occupied bins)."""
        occupied = np.flatnonzero(self.counts)
        if occupied.size == 0:
            return 0.0
        lo = self.bin_edges[occupied[0]]
        hi = self.bin_edges[occupied[-1] + 1]
        return float(hi - lo)
