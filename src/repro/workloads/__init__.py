"""Workload substrate: manual stressmarks and synthetic benchmark suites."""

from repro.workloads.parsec import (
    DEFAULT_BARRIER_SKEW_CYCLES,
    PARSEC_MODELS,
    parsec_model,
    parsec_names,
)
from repro.workloads.phases import ENERGY_PER_SLOT_PJ, ActivityModel
from repro.workloads.runner import DEFAULT_DURATION_CYCLES, run_workload
from repro.workloads.spec import SPEC_MODELS, spec_model, spec_names
from repro.workloads.stressmarks import (
    STRESSMARK_ITERATIONS,
    a_ex_canned,
    a_res_canned,
    joseph_brooks,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

__all__ = [
    "ActivityModel",
    "DEFAULT_BARRIER_SKEW_CYCLES",
    "DEFAULT_DURATION_CYCLES",
    "ENERGY_PER_SLOT_PJ",
    "PARSEC_MODELS",
    "SPEC_MODELS",
    "STRESSMARK_ITERATIONS",
    "a_ex_canned",
    "a_res_canned",
    "joseph_brooks",
    "parsec_model",
    "parsec_names",
    "run_workload",
    "sm1",
    "sm2",
    "sm_res",
    "spec_model",
    "spec_names",
    "stressmark_program",
]
