"""PARSEC-like multi-threaded benchmark suite.

PARSEC programs are genuinely multi-threaded with barrier/synchronisation
structure.  The paper expected barrier alignment to produce large droops
(following Miller et al.) but measured none — the barrier release signal
reaches each core at a different time, and that skew damps the synchronized
first-droop excitation (Section V.A.1).  The models here carry that
structure: barriers drain all threads, and the release skew is the knob the
barrier experiment (``benchmarks/test_sec5a1_barrier.py``) turns.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.phases import ActivityModel

#: Release skew observed on the Bulldozer testbed (cycles); large enough to
#: damp the 32-cycle first-droop alignment.
DEFAULT_BARRIER_SKEW_CYCLES = 48

PARSEC_MODELS: tuple[ActivityModel, ...] = (
    ActivityModel(
        name="blackscholes", util_mean=0.56, util_sigma=0.05,
        stall_rate_per_kcycle=1.2, stall_cycles=16, burst_cycles=18,
        burst_boost=0.22, sensitivity=1.0,
        barrier_interval_cycles=40_000,
        barrier_skew_cycles=DEFAULT_BARRIER_SKEW_CYCLES,
    ),
    ActivityModel(
        name="bodytrack", util_mean=0.50, util_sigma=0.07,
        stall_rate_per_kcycle=2.0, stall_cycles=24, burst_cycles=24,
        burst_boost=0.28, sensitivity=1.0,
        barrier_interval_cycles=25_000,
        barrier_skew_cycles=DEFAULT_BARRIER_SKEW_CYCLES,
    ),
    ActivityModel(
        name="canneal", util_mean=0.38, util_sigma=0.08,
        stall_rate_per_kcycle=3.6, stall_cycles=60, burst_cycles=30,
        burst_boost=0.34, sensitivity=1.0,
        barrier_interval_cycles=None,  # lock-based, no global barriers
    ),
    ActivityModel(
        name="fluidanimate", util_mean=0.54, util_sigma=0.08,
        stall_rate_per_kcycle=2.2, stall_cycles=30, burst_cycles=30,
        burst_boost=0.30, sensitivity=1.0,
        barrier_interval_cycles=12_000,
        barrier_skew_cycles=DEFAULT_BARRIER_SKEW_CYCLES,
    ),
    ActivityModel(
        name="streamcluster", util_mean=0.46, util_sigma=0.07,
        stall_rate_per_kcycle=2.6, stall_cycles=40, burst_cycles=30,
        burst_boost=0.30, sensitivity=1.0,
        barrier_interval_cycles=8_000,
        barrier_skew_cycles=DEFAULT_BARRIER_SKEW_CYCLES,
    ),
    # swaptions: the other large-droop standard benchmark of Table I.
    ActivityModel(
        name="swaptions", util_mean=0.62, util_sigma=0.09,
        stall_rate_per_kcycle=2.8, stall_cycles=40, burst_cycles=42,
        burst_boost=0.40, sensitivity=1.0,
        barrier_interval_cycles=60_000,
        barrier_skew_cycles=DEFAULT_BARRIER_SKEW_CYCLES,
    ),
)


def parsec_model(name: str) -> ActivityModel:
    """Look up a PARSEC model by benchmark name."""
    for model in PARSEC_MODELS:
        if model.name == name:
            return model
    raise WorkloadError(f"unknown PARSEC benchmark: {name!r}")


def parsec_names() -> tuple[str, ...]:
    return tuple(m.name for m in PARSEC_MODELS)
