"""Manually engineered stressmarks: SM1, SM2, SM-Res (and canned AUDIT outputs).

Paper Section V.A.2: "The manual stressmarks are the result either of past
di/dt issues or a non-trivial design effort (on the order of a week per
stressmark) from a highly skilled engineer with detailed knowledge of the
pipeline architecture."  We encode that knowledge directly:

* **SM-Res** — hand-tuned resonant loop, "regular in using floating-point
  and SIMD instructions during the high-power phase"; built for the known
  first-droop period of the primary testbed.
* **SM1** — a collected stressmark with both excitation and (slightly
  detuned) resonant content; FMA4-heavy, so it cannot run on the Phenom II
  (Section V.C).
* **SM2** — designed to exercise **sensitive paths** (integer multiply,
  divides, load/store address paths); its droop is comparable to standard
  benchmarks, yet it fails at a much higher voltage (Section V.A.4).
* ``a_res_canned`` / ``a_ex_canned`` — frozen, representative AUDIT outputs
  (int+FP mix with sprinkled NOPs) for tests and examples that must not pay
  for a GA run.  The real thing comes from :class:`repro.core.AuditRunner`.

All factories take the resonant period so they can be retuned per testbed —
exactly what the human expert would have to redo by hand.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.isa.instruction import make_independent
from repro.isa.kernels import LoopKernel, ThreadProgram, nop_region
from repro.isa.opcodes import OpcodeTable

#: Loop-trip count for stressmark programs.
STRESSMARK_ITERATIONS = 4096


def _interleave(*groups) -> tuple:
    """Round-robin interleave instruction groups (regular hand-coded style)."""
    out = []
    iters = [iter(g) for g in groups]
    alive = True
    while alive:
        alive = False
        for it in iters:
            inst = next(it, None)
            if inst is not None:
                out.append(inst)
                alive = True
    return tuple(out)


def sm_res(
    table: OpcodeTable,
    *,
    period_cycles: int = 32,
    fp_width: int = 2,
    decode_width: int = 4,
) -> LoopKernel:
    """Hand-tuned first-droop **resonant** stressmark (pure FP/SIMD HP)."""
    if period_cycles < 4:
        raise WorkloadError("period too short for a resonant stressmark")
    hp_ops = (period_cycles * fp_width) // 2
    fma = table.get("vfmaddpd") if "vfmaddpd" in table else table.get("mulpd")
    hp = make_independent(fma, hp_ops)
    lp_nops = max(0, period_cycles * decode_width - len(hp) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="SM-Res")


def sm1(
    table: OpcodeTable,
    *,
    period_cycles: int = 32,
    fp_width: int = 2,
    decode_width: int = 4,
) -> LoopKernel:
    """Collected stressmark SM1: excitation plus detuned resonant content.

    Runs its HP/LP pattern at ~1.25x the true resonant period — close
    enough to pick up partial amplification (it was collected on an older
    part whose resonance sat elsewhere), with a hard FMA4 dependence.
    """
    detuned = int(round(period_cycles * 1.15))
    hp_ops = (detuned * fp_width) // 2
    half = hp_ops // 2
    rest = hp_ops - half
    # Section A: the FP/SIMD near-resonant burst.
    fp_section = _interleave(
        make_independent(table.get("vfmaddpd"), half),
        make_independent(table.get("mulps"), rest // 2),
        make_independent(table.get("paddd"), rest - rest // 2),
    )
    # Section B: an integer/memory burst — a separate stress path that FPU
    # throttling cannot touch ("FPU throttling does not affect all stress
    # paths in SM1", paper Section V.B).
    int_section = (
        make_independent(table.get("add"), detuned)
        + make_independent(table.get("imul"), detuned // 4)
        + make_independent(table.get("load"), detuned // 2)
        + make_independent(table.get("store"), detuned // 4)
    )
    gap = nop_region(table.nop, detuned * decode_width // 2)
    hp = fp_section + gap + int_section
    lp_nops = max(0, detuned * decode_width - len(fp_section) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="SM1")


def sm2(
    table: OpcodeTable,
    *,
    period_cycles: int = 32,
    decode_width: int = 4,
) -> LoopKernel:
    """Sensitive-path stressmark SM2: modest droop, early failure.

    Integer multiplies, divides, and load/store traffic exercise the long
    carry-chain and address-generation paths (high ``path_sensitivity``),
    at a deliberately off-resonance period and moderate power.
    """
    hp = _interleave(
        make_independent(table.get("imul"), 8),
        make_independent(table.get("load"), 8),
        make_independent(table.get("lea"), 4),
        make_independent(table.get("idiv"), 1),
    )
    lp_nops = max(0, 6 * period_cycles * decode_width - len(hp) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="SM2")


def a_res_canned(
    table: OpcodeTable,
    *,
    period_cycles: int = 32,
    fp_width: int = 2,
    decode_width: int = 4,
) -> LoopKernel:
    """A frozen, representative AUDIT resonant stressmark.

    Mixes FP and integer clusters and sprinkles NOPs in the HP region —
    the structure the paper's loop analysis found in the real A-Res
    (Section V.A.5).  Slightly stronger than SM-Res because the integer
    ops add power on top of the saturated FP pipes.
    """
    # The GA's structural insight (paper Section V.A.5): saturate the FP
    # pipes for half the period AND keep the dedicated integer clusters
    # busy in parallel, with a few NOPs holding the decode pattern — the
    # integer work adds current on top of what a pure-FP expert loop draws.
    fma = table.get("vfmaddpd") if "vfmaddpd" in table else table.get("mulpd")
    fp_ops = (period_cycles * fp_width) // 2           # period/2 of FP issue
    half_period = max(1, period_cycles // 2)
    int_budget = half_period * decode_width - fp_ops    # leftover decode slots
    n_add = max(1, int_budget // 2 - 2)
    n_imul = max(1, int_budget // 8)
    n_load = max(1, int_budget // 8)
    n_nops = max(1, int_budget - n_add - n_imul - n_load - 1)
    # FP block first so the out-of-order window holds a full half-period of
    # FMA issue; the integer work then decodes behind it and executes in
    # parallel on the dedicated integer cluster during the same HP window.
    hp = (
        make_independent(fma, fp_ops)
        # imul decodes right behind the FMA block, so its 4-cycle execution
        # spans the middle of the HP burst — where the droop bottoms out.
        + make_independent(table.get("imul"), n_imul)
        + make_independent(table.get("add"), n_add)
        + make_independent(table.get("load"), n_load)
        + nop_region(table.nop, n_nops)
    )
    lp_nops = max(0, period_cycles * decode_width - len(hp) - 1)
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="A-Res")


def a_ex_canned(
    table: OpcodeTable,
    *,
    period_cycles: int = 32,
    fp_width: int = 2,
    decode_width: int = 4,
) -> LoopKernel:
    """A frozen, representative AUDIT excitation stressmark.

    One large low→high event per (long) loop: the LP region is many
    resonant periods long, so each burst rings in isolation.
    """
    hp_ops = period_cycles * fp_width  # a full period of saturated issue
    hp = _interleave(
        make_independent(table.get("mulpd"), hp_ops // 2),
        make_independent(table.get("vfmaddpd") if "vfmaddpd" in table
                         else table.get("mulps"), hp_ops - hp_ops // 2),
        make_independent(table.get("add"), hp_ops // 3),
    )
    lp_nops = 10 * period_cycles * decode_width
    return LoopKernel(hp=hp, lp=nop_region(table.nop, lp_nops), name="A-Ex")


def joseph_brooks(
    table: OpcodeTable,
    *,
    burst_loads: int = 24,
    burst_stores: int = 8,
    divide_chain: int = 3,
) -> LoopKernel:
    """The hand-coded di/dt stressmark of Joseph, Brooks & Martonosi [10].

    Paper Section VI: "a sequence in which a high-current instruction
    follows a low-current instruction.  The high-current component typically
    consisted of a memory load/store instruction and the low-current
    component consisted of a divide instruction followed by a dependent
    instruction, resulting in a long pipeline stall ... increased current
    draw by accessing L1 and L2 data caches."

    Included as a baseline comparator: crafted for a specific
    microarchitecture from known per-instruction current draw, it excites a
    strong single event but was never tuned to any PDN resonance.
    """
    from dataclasses import replace as _replace

    # High-current phase: L1/L2 load/store burst.
    loads = make_independent(table.get("load"), burst_loads)
    loads = tuple(
        inst if i % 2 == 0 else _replace(inst, memory_level="l2")
        for i, inst in enumerate(loads)
    )
    stores = make_independent(table.get("store"), burst_stores)
    hp = _interleave(loads, stores)
    # Low-current phase: serial divides stall the pipeline.
    from repro.isa.instruction import make_chain

    lp = make_chain(table.get("idiv"), divide_chain)
    return LoopKernel(hp=hp, lp=lp, name="JB-didt")


def stressmark_program(kernel: LoopKernel) -> ThreadProgram:
    """Wrap a stressmark kernel in a runnable program."""
    return ThreadProgram(kernel, STRESSMARK_ITERATIONS)


#: Canned stressmarks buildable by name (``repro qualify``, registry verify).
CANNED_STRESSMARKS = ("a-res", "a-ex", "sm-res", "sm1", "sm2", "joseph-brooks")


def canned_stressmark(name: str, table: OpcodeTable) -> LoopKernel:
    """Build the canned stressmark *name* against the opcode pool *table*.

    The single name→builder mapping shared by the CLI and the registry's
    replay verification, so a record that says ``"stressmark": "a-res"``
    re-measures through exactly the kernel ``repro qualify a-res`` used.
    """
    builders = {
        "a-res": a_res_canned,
        "a-ex": a_ex_canned,
        "sm-res": sm_res,
        "sm1": sm1,
        "sm2": sm2,
        "joseph-brooks": joseph_brooks,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise WorkloadError(
            f"unknown stressmark {name!r} "
            f"(expected one of {', '.join(CANNED_STRESSMARKS)})"
        ) from None
    return builder(table)
