"""Executing synthetic workloads on the measurement platform.

Bridges :mod:`repro.workloads.phases` activity models to the platform:
threads are placed with the paper's spread-first policy, per-thread
utilisation becomes per-module energy, and the shared PDN integrates the
chip current exactly as it does for generated stressmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.core.platform import Measurement, MeasurementPlatform
from repro.osmodel.affinity import spread_placement
from repro.power.trace import CurrentTrace
from repro.workloads.phases import ActivityModel

#: Default measured window (cycles) for workload runs.
DEFAULT_DURATION_CYCLES = 200_000


def run_workload(
    platform: MeasurementPlatform,
    model: ActivityModel,
    threads: int,
    *,
    duration_cycles: int = DEFAULT_DURATION_CYCLES,
    rng: np.random.Generator | None = None,
    supply_v: float | None = None,
) -> Measurement:
    """Measure *threads* copies/workers of *model* on the platform.

    Models without barrier structure replicate independently (SPECrate
    style); models with barriers synchronise all workers at each barrier
    point with per-thread release skew.
    """
    if threads < 1:
        raise WorkloadError("threads must be >= 1")
    if duration_cycles < 1000:
        raise WorkloadError("duration too short to be meaningful (>= 1000)")
    rng = rng or np.random.default_rng(0)
    chip = platform.chip
    supply = chip.vdd if supply_v is None else supply_v

    utils = [model.thread_utilisation(duration_cycles, rng) for _ in range(threads)]
    utils = model.apply_barriers(utils, rng)

    counts = spread_placement(chip, threads)
    idle = platform.chip_sim.idle_module_current()
    total_current = np.zeros(duration_cycles)
    total_sens = np.zeros(duration_cycles)
    next_thread = 0
    for count in counts:
        if count == 0:
            total_current += idle
            continue
        module_energy = np.zeros(duration_cycles)
        module_sens = np.zeros(duration_cycles)
        for _ in range(count):
            util = utils[next_thread]
            next_thread += 1
            module_energy += model.thread_energy(chip, util)
            np.maximum(module_sens, model.thread_sensitivity(util), out=module_sens)
        total_current += platform._current_from_energy(
            module_energy, active_threads=count, supply_v=supply
        )
        np.maximum(total_sens, module_sens, out=total_sens)

    trace = CurrentTrace(total_current, chip.cycle_time_s)
    return platform.measure_current(
        trace,
        sensitivity=total_sens,
        supply_v=supply,
        baseline_current_a=float(total_current.mean()),
    )
