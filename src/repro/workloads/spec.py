"""SPEC CPU2006-like synthetic benchmark suite.

Each entry is an :class:`~repro.workloads.phases.ActivityModel` whose
parameters are chosen to reproduce the *qualitative* droop behaviour the
paper reports for the suite (Fig. 9): modest droops well below the
stressmarks, growing with thread count, with zeusmp at the top of the pack
(it is one of the paper's two largest-droop standard benchmarks, used in
Fig. 10 and Table I).

Multi-threaded SPEC runs replicate the program on multiple cores
("similar to SPECrate", Section V.A) with independently drawn activity —
no synchronisation between copies.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.phases import ActivityModel

#: The modelled subset of SPEC CPU2006 (integer and floating point).
SPEC_MODELS: tuple[ActivityModel, ...] = (
    ActivityModel(
        name="perlbench", util_mean=0.52, util_sigma=0.07,
        stall_rate_per_kcycle=2.2, stall_cycles=18, burst_cycles=24,
        burst_boost=0.24, sensitivity=1.0,
    ),
    ActivityModel(
        name="bzip2", util_mean=0.48, util_sigma=0.06,
        stall_rate_per_kcycle=2.8, stall_cycles=22, burst_cycles=20,
        burst_boost=0.28, sensitivity=1.0,
    ),
    ActivityModel(
        name="gcc", util_mean=0.44, util_sigma=0.09,
        stall_rate_per_kcycle=3.4, stall_cycles=26, burst_cycles=22,
        burst_boost=0.26, sensitivity=1.0,
    ),
    ActivityModel(
        name="mcf", util_mean=0.30, util_sigma=0.08,
        stall_rate_per_kcycle=4.8, stall_cycles=80, burst_cycles=30,
        burst_boost=0.32, sensitivity=1.0,
    ),
    ActivityModel(
        name="milc", util_mean=0.55, util_sigma=0.08,
        stall_rate_per_kcycle=2.0, stall_cycles=40, burst_cycles=36,
        burst_boost=0.28, sensitivity=1.0,
    ),
    ActivityModel(
        name="namd", util_mean=0.62, util_sigma=0.05,
        stall_rate_per_kcycle=1.2, stall_cycles=16, burst_cycles=20,
        burst_boost=0.22, sensitivity=1.0,
    ),
    ActivityModel(
        name="povray", util_mean=0.58, util_sigma=0.06,
        stall_rate_per_kcycle=1.6, stall_cycles=14, burst_cycles=18,
        burst_boost=0.18, sensitivity=1.0,
    ),
    ActivityModel(
        name="hmmer", util_mean=0.64, util_sigma=0.04,
        stall_rate_per_kcycle=0.9, stall_cycles=12, burst_cycles=14,
        burst_boost=0.18, sensitivity=1.0,
    ),
    ActivityModel(
        name="lbm", util_mean=0.50, util_sigma=0.07,
        stall_rate_per_kcycle=2.4, stall_cycles=50, burst_cycles=40,
        burst_boost=0.34, sensitivity=1.0,
    ),
    # zeusmp: FP-heavy with strong stall/recover swings -> the largest
    # droop among the modelled SPEC benchmarks (paper Fig. 9/10, Table I).
    ActivityModel(
        name="zeusmp", util_mean=0.58, util_sigma=0.12,
        stall_rate_per_kcycle=4.2, stall_cycles=46, burst_cycles=48,
        burst_boost=0.52, sensitivity=1.0,
    ),
)


def spec_model(name: str) -> ActivityModel:
    """Look up a SPEC model by benchmark name."""
    for model in SPEC_MODELS:
        if model.name == name:
            return model
    raise WorkloadError(f"unknown SPEC benchmark: {name!r}")


def spec_names() -> tuple[str, ...]:
    return tuple(m.name for m in SPEC_MODELS)
