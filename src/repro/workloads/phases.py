"""Phase-structured synthetic activity generation.

Standard benchmarks are not loop kernels — their droops come from
*irregular* activity swings: pipeline stalls after branch mispredictions and
cache misses followed by bursts of recovered work (paper Section V.A.1).
We model a benchmark thread as a per-cycle **utilisation** process:

* a slow AR(1) phase component (program phases, ~10k-cycle correlation);
* Poisson **stall→burst events**: utilisation collapses for the stall
  width, then overshoots (the drained pipeline refilling at full width) —
  the paper's named first-droop excitation mechanism in real programs;
* optional **barrier** structure (PARSEC): all threads drain to idle at a
  shared point, then restart with per-thread release skew (Section V.A.1's
  barrier discussion: the skew damps the synchronized excitation).

Utilisation maps to per-cycle dynamic energy via the thread's peak
energy-per-cycle; the measurement platform converts energy to current using
the same electrical model as generated stressmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.uarch.config import DECODE_ENERGY_PJ, ChipConfig

#: Average dynamic energy per fully utilised issue slot (pJ); roughly the
#: energy of a mid-weight op in the default opcode table plus decode.
ENERGY_PER_SLOT_PJ = 320.0


@dataclass(frozen=True)
class ActivityModel:
    """Statistical description of one benchmark's activity.

    ``util_mean``/``util_sigma`` define the slow phase process (fraction of
    peak issue).  ``stall_rate_per_kcycle`` is the Poisson rate of
    stall→burst events; each collapses utilisation to ~0 for
    ``stall_cycles`` and then boosts it by ``burst_boost`` for
    ``burst_cycles``.  ``sensitivity`` is the path-sensitivity level while
    the thread is active.  ``barrier_interval_cycles`` (with
    ``barrier_skew_cycles``) adds PARSEC-style global synchronisation.
    """

    name: str
    util_mean: float
    util_sigma: float
    stall_rate_per_kcycle: float
    stall_cycles: int
    burst_cycles: int
    burst_boost: float
    sensitivity: float = 1.0
    barrier_interval_cycles: int | None = None
    barrier_skew_cycles: int = 0
    barrier_stall_cycles: int = 60

    def __post_init__(self) -> None:
        if not 0.0 <= self.util_mean <= 1.0:
            raise WorkloadError(f"{self.name}: util_mean must be in [0, 1]")
        if self.util_sigma < 0:
            raise WorkloadError(f"{self.name}: util_sigma must be >= 0")
        if self.stall_rate_per_kcycle < 0:
            raise WorkloadError(f"{self.name}: stall rate must be >= 0")
        if self.stall_cycles < 1 or self.burst_cycles < 0:
            raise WorkloadError(f"{self.name}: bad stall/burst widths")
        if self.burst_boost < 0:
            raise WorkloadError(f"{self.name}: burst_boost must be >= 0")
        if self.sensitivity < 0:
            raise WorkloadError(f"{self.name}: sensitivity must be >= 0")
        if self.barrier_interval_cycles is not None and self.barrier_interval_cycles < 2:
            raise WorkloadError(f"{self.name}: barrier interval too short")

    # ------------------------------------------------------------------
    def thread_utilisation(
        self,
        duration_cycles: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One thread's utilisation waveform in [0, 1]."""
        if duration_cycles < 1:
            raise WorkloadError("duration must be >= 1 cycle")
        n = duration_cycles
        # Slow AR(1) phase process, correlation length ~8k cycles; the
        # recurrence runs through lfilter (C speed).
        from scipy.signal import lfilter

        rho = np.exp(-1.0 / 8000.0)
        noise = rng.normal(0.0, self.util_sigma * np.sqrt(1 - rho**2), size=n)
        noise[0] += rng.normal(0.0, self.util_sigma)
        phase = lfilter([1.0], [1.0, -rho], noise)
        util = np.clip(self.util_mean + phase, 0.0, 1.0)

        # Poisson stall -> burst events.
        expected = self.stall_rate_per_kcycle * n / 1000.0
        count = rng.poisson(expected)
        starts = rng.integers(0, max(1, n), size=count)
        for start in starts:
            stall_end = min(n, start + self.stall_cycles)
            util[start:stall_end] *= 0.05
            burst_end = min(n, stall_end + self.burst_cycles)
            util[stall_end:burst_end] = np.clip(
                util[stall_end:burst_end] + self.burst_boost, 0.0, 1.0
            )
        return util

    def apply_barriers(
        self,
        utils: list[np.ndarray],
        rng: np.random.Generator,
    ) -> list[np.ndarray]:
        """Impose barrier structure across all threads' utilisations.

        At each barrier point every thread drains to ~0 for the barrier
        stall, then resumes after its own random release skew (paper: the
        release signal "naturally reaches each core at different times").
        """
        if self.barrier_interval_cycles is None:
            return utils
        n = len(utils[0])
        out = [u.copy() for u in utils]
        interval = self.barrier_interval_cycles
        for barrier_at in range(interval, n, interval):
            for u in out:
                skew = int(rng.integers(0, self.barrier_skew_cycles + 1))
                stall_end = min(n, barrier_at + self.barrier_stall_cycles + skew)
                u[barrier_at:stall_end] *= 0.03
        return out

    # ------------------------------------------------------------------
    def thread_energy(
        self,
        chip: ChipConfig,
        utilisation: np.ndarray,
    ) -> np.ndarray:
        """Per-cycle dynamic energy (pJ) of one thread at *utilisation*."""
        peak = chip.module.decode_width * (ENERGY_PER_SLOT_PJ + DECODE_ENERGY_PJ)
        return utilisation * peak

    def thread_sensitivity(self, utilisation: np.ndarray) -> np.ndarray:
        """Per-cycle sensitivity: active cycles exercise this model's paths."""
        return np.where(utilisation > 0.02, self.sensitivity, 0.0)
