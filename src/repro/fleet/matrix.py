"""Declarative scenario matrices: the fleet's unit of expansion.

AUDIT's value in the paper is a *portfolio* of stressmarks: the loop is
re-run per platform (Bulldozer vs. Phenom II, Table 3), per thread count,
and per PDN variant to characterize each machine's worst case.  A
:class:`ScenarioMatrix` declares that portfolio once — a small set of
axes whose cartesian product is the set of campaigns to run — and the
fleet orchestrator (:mod:`repro.fleet.orchestrator`) turns each expanded
:class:`Scenario` into one shard.

Axes
----

``chip``
    Processor/testbed name (``bulldozer`` or ``phenom``).
``pdn``
    PDN tolerance variant: ``nominal`` or a signed percentage such as
    ``+10%`` / ``-5%`` that scales every R/L/C/ESR field of the die
    stage — the same stressmark hunt on the next board off the line.
``threads``
    Thread count for every measurement of the scenario.
``budget``
    GA budget as ``POPxGEN`` (population x generations), e.g. ``12x8``.
``mode``
    ``resonant`` (A-Res) or ``excitation`` (A-Ex).
``seed``
    GA seed.

A matrix comes from a TOML or JSON spec file (:func:`load_spec`) or from
repeated ``--matrix axis=v1,v2`` CLI arguments (:meth:`ScenarioMatrix
.from_cli`).  Values are deduplicated order-preservingly; an unknown axis
or an unparseable value raises :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ConfigurationError

CHIPS = ("bulldozer", "phenom")
MODES = ("resonant", "excitation")

#: Pdn scale values must stay a *tolerance*, not a different network.
MAX_PDN_TOLERANCE = 0.5


def parse_pdn_label(label: str) -> float:
    """``nominal`` → 1.0; ``+10%`` → 1.10; ``-5%`` → 0.95."""
    bad = f"bad pdn variant {label!r}: expected 'nominal' or a signed percentage like '+10%'"
    if label == "nominal":
        return 1.0
    if label.endswith("%") and label[:1] in "+-":
        try:
            pct = float(label[:-1])
        except ValueError:
            raise ConfigurationError(bad) from None
        if abs(pct) > MAX_PDN_TOLERANCE * 100:
            msg = (
                f"pdn tolerance {label!r} exceeds ±{MAX_PDN_TOLERANCE * 100:.0f}% "
                "(that is a different board, not a component tolerance)"
            )
            raise ConfigurationError(msg)
        return 1.0 + pct / 100.0
    raise ConfigurationError(bad)


def parse_budget(label: str) -> tuple[int, int]:
    """``12x8`` → (population 12, generations 8)."""
    bad = f"bad budget {label!r}: expected POPxGEN, e.g. '12x8'"
    parts = label.lower().split("x")
    if len(parts) != 2:
        raise ConfigurationError(bad)
    try:
        population, generations = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(bad) from None
    if population < 2 or generations < 1:
        msg = f"bad budget {label!r}: need population >= 2 and generations >= 1"
        raise ConfigurationError(msg)
    return population, generations


def _pdn_slug(label: str) -> str:
    """Filesystem-safe slug for a pdn variant label."""
    if label == "nominal":
        return "pdn-nom"
    return "pdn-" + label.replace("+", "p").replace("-", "m").replace("%", "")


@dataclass(frozen=True)
class Scenario:
    """One fully specified campaign: a single point of the matrix."""

    chip: str = "bulldozer"
    pdn: str = "nominal"
    threads: int = 4
    budget: str = "16x10"
    mode: str = "resonant"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.chip not in CHIPS:
            raise ConfigurationError(f"unknown chip {self.chip!r} (expected one of {CHIPS})")
        if self.mode not in MODES:
            raise ConfigurationError(f"unknown mode {self.mode!r} (expected one of {MODES})")
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")
        parse_pdn_label(self.pdn)
        parse_budget(self.budget)

    @property
    def pdn_scale(self) -> float:
        return parse_pdn_label(self.pdn)

    @property
    def population(self) -> int:
        return parse_budget(self.budget)[0]

    @property
    def generations(self) -> int:
        return parse_budget(self.budget)[1]

    @property
    def scenario_id(self) -> str:
        """Deterministic, filesystem-safe identifier (the shard dir name)."""
        slug = _pdn_slug(self.pdn)
        return f"{self.chip}-{slug}-t{self.threads}-b{self.budget}-{self.mode}-s{self.seed}"

    @property
    def platform_key(self) -> tuple:
        """Scenarios sharing this key measure on an identical platform
        with the same genome space, so their fitness caches interchange
        (the orchestrator chains them and seeds caches forward)."""
        return (self.chip, self.pdn, self.threads, self.mode)

    def axes(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ScenarioMatrix:
    """Axis values whose cartesian product is the fleet's scenario set."""

    chip: tuple = ("bulldozer",)
    pdn: tuple = ("nominal",)
    threads: tuple = (4,)
    budget: tuple = ("16x10",)
    mode: tuple = ("resonant",)
    seed: tuple = (1,)

    def __post_init__(self) -> None:
        for axis in fields(self):
            values = getattr(self, axis.name)
            if not isinstance(values, tuple):
                object.__setattr__(self, axis.name, tuple(values))
        for axis in fields(self):
            values = _dedupe(getattr(self, axis.name))
            if not values:
                raise ConfigurationError(f"matrix axis {axis.name!r} is empty")
            object.__setattr__(self, axis.name, values)
        # Axis-level validation happens by expanding one scenario per value.
        for chip in self.chip:
            Scenario(chip=chip)
        for pdn in self.pdn:
            Scenario(pdn=pdn)
        for threads in self.threads:
            if not isinstance(threads, int) or isinstance(threads, bool):
                raise ConfigurationError(f"threads axis values must be integers, got {threads!r}")
            Scenario(threads=threads)
        for budget in self.budget:
            Scenario(budget=budget)
        for mode in self.mode:
            Scenario(mode=mode)
        for seed in self.seed:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigurationError(f"seed axis values must be integers, got {seed!r}")

    # ------------------------------------------------------------------
    @classmethod
    def axis_names(cls) -> tuple:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioMatrix":
        """Build a matrix from a ``{axis: [values]}`` mapping."""
        if not isinstance(payload, dict):
            raise ConfigurationError(f"matrix spec must be a mapping, got {type(payload).__name__}")
        known = cls.axis_names()
        for name in payload:
            if name not in known:
                raise ConfigurationError(f"unknown matrix axis {name!r} (expected one of {known})")
        kwargs = {}
        for name, values in payload.items():
            if isinstance(values, (str, int)):
                values = [values]
            kwargs[name] = tuple(values)
        return cls(**kwargs)

    @classmethod
    def from_cli(cls, axes: list[str]) -> "ScenarioMatrix":
        """Parse repeated ``--matrix axis=v1,v2`` arguments."""
        payload: dict = {}
        for entry in axes:
            name, sep, raw = entry.partition("=")
            if not sep or not raw:
                raise ConfigurationError(f"bad --matrix argument {entry!r}: expected axis=v1,v2")
            values = [value.strip() for value in raw.split(",") if value.strip()]
            if name in ("threads", "seed"):
                try:
                    values = [int(value) for value in values]
                except ValueError:
                    msg = f"axis {name!r} values must be integers: {raw!r}"
                    raise ConfigurationError(msg) from None
            payload.setdefault(name, []).extend(values)
        return cls.from_dict(payload)

    def to_dict(self) -> dict:
        return {f.name: list(getattr(self, f.name)) for f in fields(self)}

    # ------------------------------------------------------------------
    def expand(self) -> tuple[Scenario, ...]:
        """The cartesian product, in deterministic axis-major order.

        Scenarios sharing a :attr:`Scenario.platform_key` come out
        adjacent (chip/pdn/threads/mode are the outer axes), which is
        what lets the orchestrator chain them for cache seeding without
        re-sorting.
        """
        product = itertools.product(
            self.chip,
            self.pdn,
            self.threads,
            self.mode,
            self.budget,
            self.seed,
        )
        scenarios = []
        for chip, pdn, threads, mode, budget, seed in product:
            scenarios.append(
                Scenario(chip=chip, pdn=pdn, threads=threads, budget=budget, mode=mode, seed=seed)
            )
        return tuple(scenarios)

    def __len__(self) -> int:
        return len(self.expand())


def _dedupe(values: tuple) -> tuple:
    seen = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return tuple(seen)


def load_spec(path) -> tuple[ScenarioMatrix, dict]:
    """Load ``(matrix, fleet options)`` from a TOML or JSON spec file.

    The file holds a ``[matrix]`` table of axes plus an optional
    ``[fleet]`` table of orchestrator options (``workers``, ``qualify``,
    ``failure_voltage``, ``registry``)::

        [matrix]
        chip = ["bulldozer", "phenom"]
        threads = [2, 4]
        budget = ["12x8"]

        [fleet]
        workers = 4
        qualify = true
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise ConfigurationError(f"cannot read fleet spec {path}: {error}") from error
    if path.suffix.lower() == ".json":
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ConfigurationError(f"bad JSON in fleet spec {path}: {error}") from error
    else:
        import tomllib

        try:
            payload = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise ConfigurationError(f"bad TOML in fleet spec {path}: {error}") from error
    if not isinstance(payload, dict) or "matrix" not in payload:
        raise ConfigurationError(f"fleet spec {path} needs a [matrix] table of axes")
    options = payload.get("fleet", {})
    if not isinstance(options, dict):
        raise ConfigurationError(f"fleet spec {path}: [fleet] must be a table")
    unknown = set(options) - {"workers", "qualify", "failure_voltage", "registry"}
    if unknown:
        raise ConfigurationError(f"fleet spec {path}: unknown fleet option(s) {sorted(unknown)}")
    return ScenarioMatrix.from_dict(payload["matrix"]), dict(options)
