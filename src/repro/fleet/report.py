"""Cross-scenario fleet reports: the paper's Table 3, automated.

A :class:`FleetReport` aggregates the banked per-shard results of one
fleet into a deterministic cross-platform comparison: every shard's
droop/fitness/verdict row, the best stressmark per platform (chip × PDN
variant), and a single fleet exit code derived from the shard exit-code
taxonomy.  Wall-clock timing is deliberately dropped, so the JSON
rendering of a resumed fleet is bit-identical to an uninterrupted one —
CI diffs the two files directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import EXIT_FAILURE, EXIT_OK, EXIT_SEVERITY
from repro.fleet.matrix import Scenario
from repro.fleet.shard import ShardResult

#: Bumped when the report layout changes incompatibly.
REPORT_VERSION = 1

REPORT_FILE = "report.json"
REPORT_MD_FILE = "report.md"

_SHARD_HEADER = (
    "| scenario | status | droop (V) | fitness | evals | resonance (MHz) "
    "| verdict | robustness | Vfail (V) |"
)


def aggregate_exit_code(results, expected: int) -> int:
    """One exit code for the whole fleet.

    The most severe shard failure wins (70 crash > 4 invariant >
    3 fault-exhaustion > 2 config > 1); a fleet with missing shards but
    no failures is still a failure (exit 1) — a partial report must not
    look like success.
    """
    codes = {result.exit_code for result in results if not result.ok}
    for code in EXIT_SEVERITY:
        if code in codes:
            return code
    if len([result for result in results if result.ok]) < expected:
        return EXIT_FAILURE
    return EXIT_OK


def _shard_row(result: ShardResult) -> dict:
    row = result.to_payload()
    row.pop("timing", None)
    row.pop("result_version", None)
    return row


@dataclass(frozen=True)
class FleetReport:
    """Deterministic aggregate of one fleet's banked shard results."""

    scenarios: tuple
    """Every scenario the matrix expanded to, as ``scenario_id`` strings."""
    shards: tuple
    """Banked :class:`ShardResult` rows, sorted by ``scenario_id``."""
    exit_code: int

    @classmethod
    def build(cls, scenarios, results) -> "FleetReport":
        """Aggregate *results* (any order) against the expected matrix."""
        ids = []
        for scenario in scenarios:
            if isinstance(scenario, Scenario):
                ids.append(scenario.scenario_id)
            else:
                ids.append(str(scenario))
        ids = tuple(sorted(ids))
        shards = tuple(sorted(results, key=lambda r: r.scenario_id))
        return cls(
            scenarios=ids,
            shards=shards,
            exit_code=aggregate_exit_code(shards, expected=len(ids)),
        )

    # ------------------------------------------------------------------
    @property
    def ok_shards(self) -> tuple:
        return tuple(result for result in self.shards if result.ok)

    @property
    def failed_shards(self) -> tuple:
        return tuple(result for result in self.shards if not result.ok)

    @property
    def missing(self) -> tuple:
        """Scenario ids with no banked result at all (killed mid-run)."""
        seen = {result.scenario_id for result in self.shards}
        return tuple(sid for sid in self.scenarios if sid not in seen)

    @property
    def complete(self) -> bool:
        return not self.missing and not self.failed_shards

    def best_per_platform(self) -> dict:
        """Deepest-droop winner for each platform (chip × PDN variant)."""
        best: dict = {}
        for result in self.ok_shards:
            key = f"{result.scenario['chip']}/{result.scenario['pdn']}"
            droop = result.droop_v if result.droop_v is not None else 0.0
            incumbent = best.get(key)
            if incumbent is None or droop > (incumbent.droop_v or 0.0):
                best[key] = result
        return {key: best[key] for key in sorted(best)}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        best = {}
        for key, result in self.best_per_platform().items():
            best[key] = result.scenario_id
        return {
            "report_version": REPORT_VERSION,
            "exit_code": self.exit_code,
            "complete": self.complete,
            "scenarios": list(self.scenarios),
            "missing": list(self.missing),
            "shards": [_shard_row(result) for result in self.shards],
            "best_per_platform": best,
        }

    def to_json(self) -> str:
        """Canonical rendering: sorted keys, fixed separators — diffable."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @property
    def content_key(self) -> str:
        """sha256 prefix of the canonical JSON — a campaign identity.

        Two fleets that produced bit-identical reports (the resumability
        guarantee) share a content key; registry records carry it so
        ``repro registry compare campaign:A campaign:B`` can tell replays
        apart from genuinely different campaigns.
        """
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def to_markdown(self) -> str:
        """Table-3-style cross-platform comparison in GitHub markdown."""
        lines = [
            "# Fleet report",
            "",
            f"- scenarios: {len(self.scenarios)}",
            f"- completed: {len(self.ok_shards)}",
            f"- failed: {len(self.failed_shards)}",
            f"- missing: {len(self.missing)}",
            f"- exit code: {self.exit_code}",
            "",
            "## Shards",
            "",
            _SHARD_HEADER,
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for result in self.shards:
            lines.append(_row(_shard_cells(result)))
        for sid in self.missing:
            lines.append(f"| {sid} | missing | — | — | — | — | — | — | — |")
        best = self.best_per_platform()
        if best:
            lines += [
                "",
                "## Best stressmark per platform",
                "",
                "| platform | scenario | droop (V) | verdict | Vfail (V) |",
                "|---|---|---|---|---|",
            ]
            for key, result in best.items():
                cells = [
                    key,
                    result.scenario_id,
                    _fmt(result.droop_v, "{:.4f}"),
                    result.verdict or "—",
                    _fmt(result.failure_voltage_v, "{:.3f}"),
                ]
                lines.append(_row(cells))
        if self.failed_shards:
            lines += ["", "## Failures", ""]
            for result in self.failed_shards:
                sid = result.scenario_id
                lines.append(f"- `{sid}` exit {result.exit_code}: {result.error}")
        return "\n".join(lines) + "\n"


def _fmt(value, spec: str) -> str:
    return "—" if value is None else spec.format(value)


def _row(cells) -> str:
    return "| " + " | ".join(cells) + " |"


def _shard_cells(result: ShardResult) -> list:
    status = result.status
    if not result.ok:
        status = f"{result.status} (exit {result.exit_code})"
    resonance_mhz = None
    if result.resonance_hz is not None:
        resonance_mhz = result.resonance_hz / 1e6
    return [
        result.scenario_id,
        status,
        _fmt(result.droop_v, "{:.4f}"),
        _fmt(result.best_fitness, "{:.4f}"),
        _fmt(result.evaluations, "{:d}"),
        _fmt(resonance_mhz, "{:.1f}"),
        result.verdict or "—",
        _fmt(result.robustness, "{:.3f}"),
        _fmt(result.failure_voltage_v, "{:.3f}"),
    ]


def report_from_payload(payload: dict) -> FleetReport:
    """Rebuild a report object from a ``report.json`` payload."""
    shards = []
    for row in payload.get("shards", ()):
        shards.append(ShardResult.from_payload({**row, "timing": {}}))
    return FleetReport(
        scenarios=tuple(payload.get("scenarios", ())),
        shards=tuple(shards),
        exit_code=int(payload.get("exit_code", EXIT_FAILURE)),
    )
