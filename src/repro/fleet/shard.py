"""One fleet shard: a scenario run as a checkpointed AUDIT campaign.

:func:`run_shard` is the picklable unit the orchestrator schedules onto
its process pool.  It builds the scenario's measurement platform from the
matrix axes (chip preset × PDN tolerance scaling), runs the full closed
loop through :class:`~repro.core.audit.AuditRunner` with a per-shard
:class:`~repro.core.checkpoint.CampaignCheckpoint` directory (so a killed
fleet resumes every shard exactly where it stopped), optionally qualifies
the winner and sweeps its failure voltage, and lands an atomic
``result.json`` in the shard directory.

Failures never escape as exceptions: they are classified into the CLI's
exit-code taxonomy (2 config / 3 fault-exhaustion / 4 invariant /
70 crash / 75 interrupted) and returned as a failed :class:`ShardResult`,
with a ``crash_report.json`` written next to the shard checkpoint for the
unexpected ones — so one bad scenario cannot take the fleet down.

Each shard also installs its own worker-side
:class:`~repro.supervision.ShutdownCoordinator` for SIGTERM, so a fleet
host draining its workers gets a final campaign checkpoint from every
shard instead of half-written state: the shard reports ``interrupted``
(exit 75), keeps its ``result.json`` unwritten, and resumes from the
banked generation on the next fleet run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.checkpoint import (
    CampaignCheckpoint,
    decode_stressmark_genome,
    encode_stressmark_genome,
)
from repro.core.faults import FaultPolicy, QuarantineExhaustedError
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.qualify import QualificationCheckpoint, QualifyConfig
from repro.core.telemetry import TelemetryCollector, event_to_dict
from repro.errors import (
    EXIT_CONFIG,
    EXIT_CRASH,
    EXIT_FAILURE,
    EXIT_FAULTS,
    EXIT_INTERRUPTED,
    EXIT_INVARIANT,
    EXIT_OK,
    CampaignInterrupted,
    ConfigurationError,
    InvariantViolation,
    ReproError,
)
from repro.experiments.setup import program_failure_voltage
from repro.fleet.matrix import Scenario
from repro.obs.spans import SpanBuffer, TraceContext, adopt, span, tracing
from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.supervision import ShutdownCoordinator
from repro.uarch.config import bulldozer_chip, phenom_chip

RESULT_FILE = "result.json"

#: Bumped when the shard result layout changes incompatibly.
RESULT_VERSION = 1

_CHIP_PRESETS = {"bulldozer": bulldozer_chip, "phenom": phenom_chip}
_PDN_PRESETS = {"bulldozer": bulldozer_pdn, "phenom": phenom_pdn}

#: Die-stage fields scaled by the pdn tolerance axis.
_DIE_FIELDS = ("resistance_ohm", "inductance_h", "capacitance_f", "esr_ohm")


def scenario_platform(scenario: Scenario) -> MeasurementPlatform:
    """The measurement platform a scenario's axes describe.

    The chip axis picks the processor preset; the pdn axis scales every
    R/L/C/ESR field of the die stage by the tolerance factor — component
    tolerances on the stage that sets the first-droop resonance, i.e.
    "the same hunt on the next board off the line".
    """
    chip = _CHIP_PRESETS[scenario.chip]()
    pdn = _PDN_PRESETS[scenario.chip](vdd=chip.vdd)
    scale = scenario.pdn_scale
    if scale != 1.0:
        scaled = {}
        for name in _DIE_FIELDS:
            scaled[name] = getattr(pdn.die, name) * scale
        pdn = dataclasses.replace(pdn, die=dataclasses.replace(pdn.die, **scaled))
    return MeasurementPlatform(chip, pdn)


def classify_failure(error: BaseException) -> int:
    """Map a shard failure onto the CLI exit-code taxonomy."""
    if isinstance(error, CampaignInterrupted):
        return EXIT_INTERRUPTED
    if isinstance(error, QuarantineExhaustedError):
        return EXIT_FAULTS
    if isinstance(error, InvariantViolation):
        return EXIT_INVARIANT
    if isinstance(error, ConfigurationError):
        return EXIT_CONFIG
    if isinstance(error, ReproError):
        return EXIT_FAILURE
    return EXIT_CRASH


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to run one shard (picklable)."""

    scenario: Scenario
    shard_dir: str
    seed_state_dirs: tuple = ()
    """Checkpoint directories of completed same-platform predecessors;
    their fitness caches seed this shard's engine."""
    qualify: bool = False
    failure_voltage: bool = False
    fault_policy: FaultPolicy | None = None
    max_wall_clock_s: float | None = None
    """Per-shard wall-clock budget; overrun stops the campaign gracefully
    at the next generation boundary (status ``interrupted``, exit 75)."""
    trace_context: TraceContext | None = None
    """Coordinates of the orchestrator's ``fleet.campaign`` span; when set
    the shard records its spans and ships them back in
    ``ShardResult.timing["spans"]``."""


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard, as persisted in ``result.json``.

    Everything except ``timing`` is deterministic for a given scenario,
    so the fleet report (which drops ``timing``) is bit-identical across
    kills, resumes, and worker counts.
    """

    scenario: dict
    scenario_id: str
    status: str
    exit_code: int = EXIT_OK
    error: str = ""
    droop_v: float | None = None
    best_fitness: float | None = None
    evaluations: int | None = None
    resonance_hz: float | None = None
    genome: dict | None = None
    verdict: str = ""
    robustness: float | None = None
    failure_voltage_v: float | None = None
    timing: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_payload(self) -> dict:
        return {"result_version": RESULT_VERSION, **asdict(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardResult":
        payload = dict(payload)
        payload.pop("result_version", None)
        return cls(**payload)


def result_path(shard_dir) -> Path:
    return Path(shard_dir) / RESULT_FILE


def load_result(shard_dir) -> ShardResult | None:
    """The shard's banked result, or ``None`` when it never finished."""
    path = result_path(shard_dir)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("result_version") != RESULT_VERSION:
        return None
    try:
        return ShardResult.from_payload(payload)
    except TypeError:
        return None


def collect_seed_cache(seed_state_dirs) -> dict:
    """Merge the fitness caches banked by same-platform predecessors."""
    seed_cache: dict = {}
    for directory in seed_state_dirs:
        checkpoint = CampaignCheckpoint(
            directory,
            encode_genome=encode_stressmark_genome,
            decode_genome=decode_stressmark_genome,
        )
        state = checkpoint.load()
        if state is not None:
            seed_cache.update(state.fitness_cache)
    return seed_cache


def _shard_crash_report(spec: ShardSpec, error: BaseException) -> None:
    payload = {
        "scenario": spec.scenario.axes(),
        "scenario_id": spec.scenario.scenario_id,
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "written_at": time.time(),
    }
    try:
        directory = Path(spec.shard_dir)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(directory / "crash_report.json", payload)
    except OSError:
        pass  # never let the crash reporter mask the shard failure


def run_shard(spec: ShardSpec) -> ShardResult:
    """Run (or finish) one shard and bank its result atomically.

    A previously banked ``result.json`` is served as-is; a shard with a
    partial campaign checkpoint resumes it.  Each failure is classified
    into the exit-code taxonomy and returned — never raised.
    """
    banked = load_result(spec.shard_dir)
    if banked is not None and banked.ok:
        return banked
    scenario = spec.scenario
    start = time.perf_counter()
    buffer = SpanBuffer(cap=200)
    try:
        result = _traced_campaign(spec, buffer)
    except BaseException as error:  # noqa: BLE001 — classified, not hidden
        exit_code = classify_failure(error)
        if exit_code == EXIT_CRASH:
            _shard_crash_report(spec, error)
        interrupted = isinstance(error, CampaignInterrupted)
        return ShardResult(
            scenario=scenario.axes(),
            scenario_id=scenario.scenario_id,
            status="interrupted" if interrupted else "failed",
            exit_code=exit_code,
            error=f"{type(error).__name__}: {error}",
            timing=_with_spans(
                {"wall_s": time.perf_counter() - start}, buffer
            ),
        )
    result = dataclasses.replace(result, timing=_with_spans(result.timing, buffer))
    atomic_write_json(result_path(spec.shard_dir), result.to_payload())
    return result


def _traced_campaign(spec: ShardSpec, buffer: SpanBuffer) -> ShardResult:
    """Run the campaign under a ``fleet.shard`` span.

    In a pool worker the orchestrator's :class:`TraceContext` is adopted
    and spans collect in *buffer* for the trip home; run in-process
    (serial fleet) the ambient tracer — when one is installed — takes the
    spans directly and the buffer stays empty.
    """
    if spec.trace_context is None:
        with span("fleet.shard", scenario=spec.scenario.scenario_id):
            return _run_campaign(spec)
    tracer = adopt(spec.trace_context, observers=(buffer,))
    with tracing(tracer):
        with tracer.span(
            "fleet.shard", scenario=spec.scenario.scenario_id, pid=os.getpid()
        ):
            return _run_campaign(spec)


def _with_spans(timing: dict, buffer: SpanBuffer) -> dict:
    if not buffer.records:
        return timing
    return {
        **timing,
        "spans": [event_to_dict(event) for event in buffer.records],
        "spans_dropped": buffer.dropped,
    }


def _run_campaign(spec: ShardSpec) -> ShardResult:
    scenario = spec.scenario
    platform = scenario_platform(scenario)
    checkpoint = CampaignCheckpoint(spec.shard_dir)
    resume = checkpoint.has_state()
    if not resume:
        # Audit-CLI-compatible meta: `repro audit --resume <shard dir>`
        # continues a single shard by hand.
        meta = {
            "chip": scenario.chip,
            "throttle": None,
            "threads": scenario.threads,
            "mode": scenario.mode,
            "population": scenario.population,
            "generations": scenario.generations,
            "seed": scenario.seed,
            "pdn": scenario.pdn,
            "scenario_id": scenario.scenario_id,
        }
        checkpoint.write_meta(meta)
    collector = TelemetryCollector()
    runner = AuditRunner(
        platform,
        config=AuditConfig(
            threads=scenario.threads,
            mode=StressmarkMode(scenario.mode),
            ga=GaConfig(
                population_size=scenario.population,
                generations=scenario.generations,
                seed=scenario.seed,
                # Tiny CI budgets shrink below the defaults' floors.
                tournament_size=min(3, scenario.population),
                elite_count=min(2, scenario.population - 1),
            ),
        ),
        observers=(collector,),
        fault_policy=spec.fault_policy,
    )
    qualify_config = None
    qualify_checkpoint = None
    if spec.qualify:
        qualify_config = QualifyConfig(seed=scenario.seed)
        qualify_checkpoint = QualificationCheckpoint(checkpoint.directory)
    start = time.perf_counter()
    # SIGTERM only: pool workers execute shards on their main thread, so
    # the handler installs; SIGINT keeps its default disposition so a
    # Ctrl-C on the fleet still tears workers down the ordinary way.
    coordinator = ShutdownCoordinator(
        max_wall_clock_s=spec.max_wall_clock_s,
        signals=(signal.SIGTERM,),
        observers=(collector,),
    )
    with coordinator:
        audit = runner.run(
            name=scenario.scenario_id,
            checkpoint=checkpoint,
            resume=resume,
            qualify=qualify_config,
            qualify_checkpoint=qualify_checkpoint,
            seed_cache=collect_seed_cache(spec.seed_state_dirs),
            stop=coordinator.stop_requested,
        )
    wall_s = time.perf_counter() - start
    failure_voltage_v = None
    if spec.failure_voltage:
        voltage = program_failure_voltage(platform, audit.program(), scenario.threads)
        failure_voltage_v = float(voltage)
    verdict = ""
    robustness = None
    if audit.qualification is not None:
        verdict = audit.qualification.verdict
        robustness = float(audit.qualification.chosen_report.robustness)
    return ShardResult(
        scenario=scenario.axes(),
        scenario_id=scenario.scenario_id,
        status="ok",
        droop_v=float(audit.max_droop_v),
        best_fitness=float(audit.ga_result.best_fitness),
        evaluations=int(audit.ga_result.evaluations),
        resonance_hz=float(audit.resonance.resonance_hz),
        genome=encode_stressmark_genome(audit.genome),
        verdict=verdict,
        robustness=robustness,
        failure_voltage_v=failure_voltage_v,
        timing={
            "wall_s": wall_s,
            "eval_wall_s": collector.eval_wall_s,
            "evals_per_second": collector.evals_per_second,
        },
    )
