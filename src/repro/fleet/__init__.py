"""Fleet orchestration: scenario matrices run as sharded campaigns.

The paper's cross-platform story (Table 3) needs the closed loop re-run
per chip, PDN variant, thread count, and GA budget.  This package turns
that portfolio into one declarative :class:`ScenarioMatrix`, runs its
expansion as resumable shards under :class:`FleetOrchestrator`, and
aggregates the winners into a deterministic :class:`FleetReport`.
"""

from repro.fleet.matrix import (
    Scenario,
    ScenarioMatrix,
    load_spec,
    parse_budget,
    parse_pdn_label,
)
from repro.fleet.orchestrator import FleetOrchestrator, chain_schedule
from repro.fleet.report import FleetReport, aggregate_exit_code
from repro.fleet.shard import (
    ShardResult,
    ShardSpec,
    classify_failure,
    run_shard,
    scenario_platform,
)

__all__ = [
    "FleetOrchestrator",
    "FleetReport",
    "Scenario",
    "ScenarioMatrix",
    "ShardResult",
    "ShardSpec",
    "aggregate_exit_code",
    "chain_schedule",
    "classify_failure",
    "load_spec",
    "parse_budget",
    "parse_pdn_label",
    "run_shard",
    "scenario_platform",
]
