"""The fleet orchestrator: matrix → shards → cross-platform report.

:class:`FleetOrchestrator` expands a :class:`~repro.fleet.matrix
.ScenarioMatrix` into shards, schedules them across a process pool under
a global worker budget, and aggregates the banked results into a
:class:`~repro.fleet.report.FleetReport`.

Scheduling is *chain-based*: scenarios sharing a
:attr:`~repro.fleet.matrix.Scenario.platform_key` (identical chip, PDN
variant, thread count and mode — hence an identical fitness landscape)
form a chain that runs sequentially, each shard seeding its evaluation
cache from the state banked by its completed in-chain predecessors.
Distinct chains run in parallel.  Because seeding only ever flows down a
chain in expansion order, the final report is independent of worker
count, completion order, and any number of kill/resume cycles.

Everything durable lives under the fleet directory::

    fleet-dir/
      fleet.json            # matrix + options (written once, read on resume)
      report.json           # canonical cross-scenario report
      report.md             # the same report as GitHub markdown
      shards/<scenario_id>/ # one campaign checkpoint dir + result.json each

A killed fleet (SIGKILL included) resumes with
:meth:`FleetOrchestrator.resume`: banked shards are served from their
``result.json``, half-run shards continue from their campaign
checkpoint, and the rebuilt report is bit-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

from repro.core.atomicio import atomic_write_json, atomic_write_text
from repro.core.faults import FaultPolicy
from repro.core.telemetry import (
    FleetEvent,
    ShardEvent,
    SupervisorEvent,
    event_from_dict,
    notify,
)
from repro.errors import (
    EXIT_CRASH,
    CampaignInterrupted,
    CheckpointError,
    ConfigurationError,
)
from repro.fleet.matrix import ScenarioMatrix
from repro.fleet.report import REPORT_FILE, REPORT_MD_FILE, FleetReport
from repro.fleet.shard import ShardResult, ShardSpec, load_result, run_shard
from repro.obs.spans import current_tracer, span
from repro.supervision.executor import (
    DEFAULT_MAX_POOL_REBUILDS,
    SupervisionExhaustedError,
    kill_pool_processes,
)

FLEET_FILE = "fleet.json"

#: Bumped when the fleet meta layout changes incompatibly.
FLEET_VERSION = 1

#: Poll cadence (seconds) for shard deadlines and stop checks.
_POLL_S = 0.2


@dataclasses.dataclass
class _ShardFlight:
    """Book-keeping for one in-flight shard future."""

    chain_index: int
    index: int
    scenario_id: str
    submitted_at: float
    started_at: float | None = None
    """First moment the future was observed ``running()`` — the shard
    hard deadline counts from here, so queued shards are never charged
    for time spent waiting on a worker slot."""


def chain_schedule(scenarios) -> tuple:
    """Group scenarios into platform chains, expansion order preserved.

    Returns a tuple of chains (tuples of scenarios); chains are ordered
    by first appearance of their platform key, scenarios within a chain
    keep their expansion order.  This grouping is what makes cache
    seeding deterministic: a shard only ever seeds from predecessors in
    its own chain.
    """
    chains: dict = {}
    for scenario in scenarios:
        chains.setdefault(scenario.platform_key, []).append(scenario)
    return tuple(tuple(chain) for chain in chains.values())


class FleetOrchestrator:
    """Runs one scenario matrix as a resumable fleet of shards."""

    def __init__(
        self,
        matrix: ScenarioMatrix,
        fleet_dir,
        *,
        workers: int = 2,
        qualify: bool = False,
        failure_voltage: bool = False,
        fault_policy: FaultPolicy | None = None,
        observers=(),
        stop_after: int | None = None,
        shard_timeout_s: float | None = None,
        shard_retries: int = 1,
        max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
        shard_max_wall_clock_s: float | None = None,
        stop_check=None,
        task_fn=None,
        registry_dir=None,
    ):
        if workers < 1:
            raise ConfigurationError("fleet workers must be >= 1")
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be > 0, got {shard_timeout_s}"
            )
        if shard_retries < 0:
            raise ConfigurationError(
                f"shard_retries must be >= 0, got {shard_retries}"
            )
        if max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.matrix = matrix
        self.fleet_dir = Path(fleet_dir)
        self.workers = workers
        self.qualify = qualify
        self.failure_voltage = failure_voltage
        self.fault_policy = fault_policy
        self.observers = tuple(observers)
        self.stop_after = stop_after
        """Test hook: raise KeyboardInterrupt after this many shard
        completions — a deterministic stand-in for kill -9."""
        self.shard_timeout_s = shard_timeout_s
        """Hard wall-clock deadline per running shard: overrun kills the
        worker pool, requeues innocents, and retries or fails the shard."""
        self.shard_retries = shard_retries
        """Hang/crash retries per shard before it is declared failed.
        A retry resumes from the shard's campaign checkpoint, so only
        the in-flight generation is re-run."""
        self.max_pool_rebuilds = max_pool_rebuilds
        """Total pool respawns (hangs + crashes) tolerated per fleet run
        before the host is declared systemically unstable."""
        self.shard_max_wall_clock_s = shard_max_wall_clock_s
        """Per-shard graceful wall-clock budget, forwarded to ShardSpec."""
        self.stop_check = stop_check
        """Graceful-stop poll (e.g. ShutdownCoordinator.stop_requested):
        a reason string drains the fleet, writes the report, and raises
        CampaignInterrupted."""
        self.task_fn = task_fn if task_fn is not None else run_shard
        """The picklable per-shard callable; a test seam for injecting
        hanging or crashing stand-ins for run_shard."""
        self.registry_dir = None if registry_dir is None else Path(registry_dir)
        """When set, every OK shard is published into the stressmark
        registry at this directory once the fleet report is banked (the
        fleet directory's name becomes the campaign label).  Persisted
        in ``fleet.json`` so a resumed fleet keeps publishing."""
        self.scenarios = matrix.expand()
        self._completed = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Fleet meta
    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.fleet_dir / FLEET_FILE

    def shard_dir(self, scenario) -> Path:
        return self.fleet_dir / "shards" / scenario.scenario_id

    def write_meta(self) -> None:
        policy = self.fault_policy
        meta = {
            "fleet_version": FLEET_VERSION,
            "matrix": self.matrix.to_dict(),
            "workers": self.workers,
            "qualify": self.qualify,
            "failure_voltage": self.failure_voltage,
            "fault_policy": None if policy is None else dataclasses.asdict(policy),
            # Additive field (absent in pre-registry fleets — .get() on
            # resume keeps FLEET_VERSION at 1).
            "registry": None if self.registry_dir is None else str(self.registry_dir),
        }
        atomic_write_json(self.meta_path, meta)

    @classmethod
    def resume(
        cls,
        fleet_dir,
        *,
        workers: int | None = None,
        observers=(),
        stop_after: int | None = None,
        shard_timeout_s: float | None = None,
        shard_retries: int = 1,
        max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
        shard_max_wall_clock_s: float | None = None,
        stop_check=None,
        task_fn=None,
        registry_dir=None,
    ) -> "FleetOrchestrator":
        """Rebuild the orchestrator a fleet directory was written by."""
        meta_path = Path(fleet_dir) / FLEET_FILE
        try:
            payload = json.loads(meta_path.read_text())
        except OSError:
            msg = f"no fleet meta at {meta_path} (was this directory written by `repro fleet run`?)"
            raise CheckpointError(msg) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(f"corrupt fleet meta {meta_path}: {error}") from error
        version = payload.get("fleet_version")
        if version != FLEET_VERSION:
            msg = f"fleet meta version {version!r} in {meta_path} is not supported"
            raise CheckpointError(f"{msg} (expected {FLEET_VERSION})")
        policy = payload.get("fault_policy")
        return cls(
            ScenarioMatrix.from_dict(payload["matrix"]),
            fleet_dir,
            workers=workers if workers is not None else payload["workers"],
            qualify=bool(payload.get("qualify", False)),
            failure_voltage=bool(payload.get("failure_voltage", False)),
            fault_policy=None if policy is None else FaultPolicy(**policy),
            observers=observers,
            stop_after=stop_after,
            shard_timeout_s=shard_timeout_s,
            shard_retries=shard_retries,
            max_pool_rebuilds=max_pool_rebuilds,
            shard_max_wall_clock_s=shard_max_wall_clock_s,
            stop_check=stop_check,
            task_fn=task_fn,
            registry_dir=(registry_dir if registry_dir is not None
                          else payload.get("registry")),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _spec(self, chain, index) -> ShardSpec:
        """The shard spec for ``chain[index]``, seeded by banked
        in-chain predecessors that completed OK."""
        seed_dirs = []
        for predecessor in chain[:index]:
            directory = self.shard_dir(predecessor)
            banked = load_result(directory)
            if banked is not None and banked.ok:
                seed_dirs.append(str(directory))
        scenario = chain[index]
        tracer = current_tracer()
        return ShardSpec(
            scenario=scenario,
            shard_dir=str(self.shard_dir(scenario)),
            seed_state_dirs=tuple(seed_dirs),
            qualify=self.qualify,
            failure_voltage=self.failure_voltage,
            fault_policy=self.fault_policy,
            max_wall_clock_s=self.shard_max_wall_clock_s,
            trace_context=None if tracer is None else tracer.context(),
        )

    def _on_result(self, result: ShardResult, results: list, start: float, running: int) -> None:
        results.append(result)
        self._completed += 1
        self._emit_shard_spans(result)
        event = ShardEvent(
            scenario=result.scenario_id,
            status=result.status,
            droop_v=result.droop_v or 0.0,
            evaluations=result.evaluations or 0,
            wall_s=result.timing.get("wall_s", 0.0),
            error=result.error,
            exit_code=result.exit_code,
        )
        notify(self.observers, event)
        progress = FleetEvent(
            total=len(self.scenarios),
            done=len(results),
            failed=len([r for r in results if not r.ok]),
            running=running,
            wall_s=time.perf_counter() - start,
        )
        notify(self.observers, progress)
        if self.stop_after is not None and self._completed >= self.stop_after:
            raise KeyboardInterrupt(f"fleet stop_after={self.stop_after} reached")
        if (result.status == "interrupted" and "signal" in result.error
                and not self._stopping):
            # The shard itself was TERMed (not by our drain): somebody is
            # shutting the host down — stop the whole fleet gracefully.
            raise CampaignInterrupted(
                f"signal stop propagated from shard {result.scenario_id}"
            )

    def _emit_shard_spans(self, result: ShardResult) -> None:
        """Stitch a shard's buffered spans into the orchestrator trace.

        Only spans carrying *this* trace's id are re-emitted — a result
        banked by a previous fleet run ships spans from a dead trace, and
        replaying those would seed orphans in the current tree.
        """
        tracer = current_tracer()
        payloads = (
            result.timing.get("spans") if isinstance(result.timing, dict) else None
        )
        if tracer is None or not payloads:
            return
        for payload in payloads:
            try:
                event = event_from_dict(payload)
            except (KeyError, TypeError):
                continue
            if getattr(event, "trace_id", "") == tracer.trace_id:
                tracer.emit(event)

    def _banked(self, results: list) -> dict:
        """Serve already-banked OK shards without scheduling them."""
        banked = {}
        for scenario in self.scenarios:
            result = load_result(self.shard_dir(scenario))
            if result is not None and result.ok:
                banked[scenario.scenario_id] = result
                results.append(result)
                event = ShardEvent(
                    scenario=result.scenario_id,
                    status="banked",
                    droop_v=result.droop_v or 0.0,
                    evaluations=result.evaluations or 0,
                )
                notify(self.observers, event)
        return banked

    def run(self) -> FleetReport:
        """Run every shard not yet banked, then write and return the report.

        Shard failures never abort the fleet — they land in the report
        with their taxonomy exit code and the fleet's aggregate exit
        code reflects the most severe one.  A KeyboardInterrupt (Ctrl-C
        or the ``stop_after`` hook) propagates without writing a report,
        like a kill would; ``resume`` picks the fleet up afterwards.

        A *graceful* stop (``stop_check`` reporting a signal or an
        exhausted wall-clock budget) instead drains the in-flight shards
        down to their final checkpoints, writes a report covering
        everything finished so far, and raises
        :class:`~repro.errors.CampaignInterrupted` (CLI exit 75).
        """
        with span("fleet.campaign", scenarios=len(self.scenarios),
                  workers=self.workers):
            return self._run()

    def _run(self) -> FleetReport:
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            self.write_meta()
        start = time.perf_counter()
        results: list = []
        banked = self._banked(results)
        full_chains = chain_schedule(self.scenarios)
        chains = []
        for chain in full_chains:
            chains.append([s for s in chain if s.scenario_id not in banked])
        pending = [chain_index for chain_index, chain in enumerate(chains) if chain]
        kickoff = FleetEvent(
            total=len(self.scenarios),
            done=len(results),
            failed=0,
            running=0,
            wall_s=0.0,
            detail=f"{len(pending)} chain(s), {self.workers} worker(s)",
        )
        notify(self.observers, kickoff)
        try:
            if pending:
                if self.workers == 1:
                    self._run_serial(chains, full_chains, results, start)
                else:
                    self._run_pool(chains, full_chains, results, start)
        except CampaignInterrupted as error:
            # Sanctioned stop: every drained shard has a final checkpoint,
            # so bank a report over what finished and exit resumable.
            partial = FleetReport.build(self.scenarios, results)
            self.write_report(partial)
            self.publish_results(partial)
            raise CampaignInterrupted(
                error.reason,
                generation=error.generation,
                checkpoint_path=str(self.fleet_dir),
            ) from None
        report = FleetReport.build(self.scenarios, results)
        self.write_report(report)
        self.publish_results(report)
        return report

    def _full_spec(self, chains, full_chains, chain_index, index) -> ShardSpec:
        """Spec for ``chains[chain_index][index]`` with seeding resolved
        against the *full* chain (banked predecessors included)."""
        scenario = chains[chain_index][index]
        full_chain = full_chains[chain_index]
        return self._spec(full_chain, full_chain.index(scenario))

    def _check_stop(self) -> str | None:
        if self.stop_check is None:
            return None
        return self.stop_check()

    def _run_serial(self, chains, full_chains, results, start) -> None:
        for chain_index, chain in enumerate(chains):
            for index in range(len(chain)):
                reason = self._check_stop()
                if reason:
                    raise CampaignInterrupted(reason)
                spec = self._full_spec(chains, full_chains, chain_index, index)
                event = ShardEvent(scenario=spec.scenario.scenario_id, status="started")
                notify(self.observers, event)
                result = self.task_fn(spec)
                self._on_result(result, results, start, running=0)

    def _failed_shard(self, chains, flight: _ShardFlight, error: str) -> ShardResult:
        """A synthesized result for a shard the supervisor gave up on.

        Deliberately *not* banked to ``result.json``: the next fleet run
        retries the shard from its campaign checkpoint, so a transient
        host problem does not permanently poison the scenario.
        """
        scenario = chains[flight.chain_index][flight.index]
        return ShardResult(
            scenario=scenario.axes(),
            scenario_id=scenario.scenario_id,
            status="failed",
            exit_code=EXIT_CRASH,
            error=error,
        )

    def _run_pool(self, chains, full_chains, results, start) -> None:
        """The supervised pool loop.

        Beyond the original submit/collect cycle this adds:

        * a hard per-shard deadline (``shard_timeout_s``, measured from
          the first ``running()`` observation) — overrun SIGKILLs the
          pool, respawns it, requeues the innocent in-flight shards
          (they resume from their checkpoints) and retries or fails the
          hung one;
        * worker-crash recovery — a ``BrokenProcessPool`` kills and
          respawns the pool; a lone victim takes a strike, several
          victims are replayed one at a time (suspects isolation) so
          only the actual crasher accumulates strikes;
        * a shared ``max_pool_rebuilds`` budget across both, after which
          :class:`SupervisionExhaustedError` declares the host unstable;
        * a graceful drain — a ``stop_check`` reason stops new
          submissions, forwards SIGTERM to the shard workers (each runs
          its own ShutdownCoordinator, checkpoints, and returns an
          ``interrupted`` result), then raises
          :class:`~repro.errors.CampaignInterrupted`.
        """
        queue: deque = deque()
        for chain_index, chain in enumerate(chains):
            if chain:
                queue.append((chain_index, 0))
        suspects: deque = deque()
        strikes: dict = {}
        inflight: dict = {}
        rebuilds = 0
        stop_reason: str | None = None
        pool = ProcessPoolExecutor(max_workers=self.workers)

        def submit_from(source: deque) -> None:
            chain_index, index = source.popleft()
            spec = self._full_spec(chains, full_chains, chain_index, index)
            scenario_id = spec.scenario.scenario_id
            notify(self.observers, ShardEvent(scenario=scenario_id, status="started"))
            future = pool.submit(self.task_fn, spec)
            inflight[future] = _ShardFlight(
                chain_index, index, scenario_id, time.monotonic()
            )

        def fill() -> None:
            if self._stopping:
                return
            if suspects:
                # Isolation mode: replay one suspect at a time so a crash
                # unambiguously identifies its culprit.
                if not inflight:
                    submit_from(suspects)
                return
            while queue and len(inflight) < self.workers:
                submit_from(queue)

        def advance(flight: _ShardFlight) -> None:
            # Next-in-chain first, so its seeding sees whatever the
            # finished shard banked.  Nothing new enters the queue once
            # a drain has begun.
            if self._stopping:
                return
            if flight.index + 1 < len(chains[flight.chain_index]):
                queue.append((flight.chain_index, flight.index + 1))

        def finish(flight: _ShardFlight, result: ShardResult) -> None:
            advance(flight)
            self._on_result(result, results, start, running=len(inflight))

        def respawn(detail: str) -> None:
            nonlocal pool, rebuilds
            rebuilds += 1
            kill_pool_processes(pool)
            if rebuilds > self.max_pool_rebuilds:
                raise SupervisionExhaustedError(
                    f"fleet pool rebuilt {rebuilds - 1} time(s) (budget "
                    f"{self.max_pool_rebuilds}); the host looks systemically "
                    f"unstable (last cause: {detail})"
                )
            notify(self.observers, SupervisorEvent(
                action="respawn", detail=detail, respawns=rebuilds,
            ))
            pool = ProcessPoolExecutor(max_workers=self.workers)

        def give_up(flight: _ShardFlight, error: str) -> None:
            notify(self.observers, SupervisorEvent(
                action="give-up", task=flight.scenario_id, detail=error,
            ))
            tracer = current_tracer()
            if tracer is not None:
                # The shard died holding its span buffer: close the loss
                # explicitly so the trace tree has no dangling branch.
                tracer.lost(
                    "fleet.shard", scenario=flight.scenario_id, error=error
                )
            finish(flight, self._failed_shard(chains, flight, error))

        def harvest_or_condemn() -> list:
            """Drain inflight: completed futures finish normally, the
            rest are victims of the pool going down."""
            victims = []
            for future in list(inflight):
                flight = inflight.pop(future)
                if future.done():
                    try:
                        result = future.result()
                    except BaseException:  # noqa: BLE001 — pool death
                        victims.append(flight)
                    else:
                        finish(flight, result)
                else:
                    victims.append(flight)
            return victims

        def handle_crash() -> None:
            victims = harvest_or_condemn()
            if len(victims) == 1:
                flight = victims[0]
                key = (flight.chain_index, flight.index)
                strikes[key] = strikes.get(key, 0) + 1
                notify(self.observers, SupervisorEvent(
                    action="crash", task=flight.scenario_id,
                    detail=f"worker process died (strike {strikes[key]})",
                ))
                if strikes[key] > self.shard_retries:
                    give_up(flight, (
                        f"WorkerCrashError: shard worker died "
                        f"{strikes[key]} time(s); giving up"
                    ))
                else:
                    suspects.appendleft(key)
            else:
                # Ambiguous: several shards were in flight when the pool
                # broke.  Replay them one at a time; none takes a strike
                # until it crashes alone.
                notify(self.observers, SupervisorEvent(
                    action="crash",
                    detail=(f"worker process died with {len(victims)} "
                            "shard(s) in flight; isolating"),
                ))
                for flight in victims:
                    suspects.append((flight.chain_index, flight.index))
            respawn("worker crash")

        def sweep_deadlines() -> None:
            if self.shard_timeout_s is None:
                return
            now = time.monotonic()
            hung = [
                future for future, flight in inflight.items()
                if not future.done() and flight.started_at is not None
                and now - flight.started_at > self.shard_timeout_s
            ]
            if not hung:
                return
            hung_flights = [inflight[future] for future in hung]
            for future in hung:
                del inflight[future]
            victims = harvest_or_condemn()
            for flight in hung_flights:
                key = (flight.chain_index, flight.index)
                strikes[key] = strikes.get(key, 0) + 1
                wall = now - (flight.started_at or flight.submitted_at)
                notify(self.observers, SupervisorEvent(
                    action="hang-kill", task=flight.scenario_id,
                    detail=(f"no result after {wall:.1f}s "
                            f"(deadline {self.shard_timeout_s:g}s, "
                            f"strike {strikes[key]})"),
                    wall_s=wall,
                ))
                if strikes[key] > self.shard_retries:
                    give_up(flight, (
                        f"WorkerHangError: no result within the "
                        f"{self.shard_timeout_s:g}s hard deadline after "
                        f"{strikes[key]} attempt(s)"
                    ))
                else:
                    # Retry resumes from the shard checkpoint, so only
                    # the in-flight generation is re-run.
                    queue.appendleft(key)
            requeued = []
            for flight in victims:
                notify(self.observers, SupervisorEvent(
                    action="requeue", task=flight.scenario_id,
                    detail="innocent shard killed with the pool",
                ))
                requeued.append((flight.chain_index, flight.index))
            queue.extendleft(reversed(requeued))
            respawn("shard hang")

        def begin_drain(reason: str) -> None:
            self._stopping = True
            queue.clear()
            suspects.clear()
            notify(self.observers, SupervisorEvent(
                action="shutdown",
                detail=f"{reason}: draining {len(inflight)} shard(s)",
            ))
            # Ask running shards to stop at their next generation
            # boundary.  Idle workers die on SIGTERM and break the pool;
            # that is tolerated below — every shard checkpoints per
            # generation, so at most the in-flight generation is lost.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (OSError, TypeError):
                    pass

        try:
            while queue or suspects or inflight:
                if not self._stopping:
                    reason = self._check_stop()
                    if reason:
                        stop_reason = reason
                        begin_drain(reason)
                fill()
                if not inflight:
                    continue
                now = time.monotonic()
                for future, flight in inflight.items():
                    if flight.started_at is None and future.running():
                        flight.started_at = now
                poll = (
                    _POLL_S
                    if (self.shard_timeout_s is not None
                        or self.stop_check is not None
                        or self._stopping)
                    else None
                )
                done, _ = wait(set(inflight), timeout=poll,
                               return_when=FIRST_COMPLETED)
                crashed = False
                for future in done:
                    flight = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        inflight[future] = flight
                        crashed = True
                    else:
                        finish(flight, result)
                if crashed:
                    if self._stopping:
                        # Expected during the drain (idle workers died on
                        # SIGTERM); the interrupted shards resume from
                        # their checkpoints on the next fleet run.
                        for flight in inflight.values():
                            notify(self.observers, ShardEvent(
                                scenario=flight.scenario_id,
                                status="interrupted",
                            ))
                        inflight.clear()
                        break
                    handle_crash()
                    continue
                sweep_deadlines()
            if stop_reason is not None:
                raise CampaignInterrupted(stop_reason)
        except KeyboardInterrupt:
            for future in inflight:
                future.cancel()
            kill_pool_processes(pool)
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def write_report(self, report: FleetReport) -> None:
        atomic_write_text(self.fleet_dir / REPORT_FILE, report.to_json())
        atomic_write_text(self.fleet_dir / REPORT_MD_FILE, report.to_markdown())

    def publish_results(self, report: FleetReport) -> list:
        """Publish every OK shard of *report* into the registry.

        A no-op without ``registry_dir``.  Publishing is content-addressed
        and deduplicating, so re-running (or resuming) a fleet republishes
        the same records harmlessly.  Returns the publish outcomes.
        """
        if self.registry_dir is None:
            return []
        from repro.registry import StressmarkRegistry, provenance_stamp, record_from_shard

        registry = StressmarkRegistry(self.registry_dir, observers=self.observers)
        stamp = provenance_stamp(
            campaign=self.fleet_dir.name,
            extra={"fleet_report_key": report.content_key},
        )
        outcomes = []
        for result in report.ok_shards:
            if result.genome is None:
                continue
            outcomes.append(registry.publish(
                record_from_shard(result, provenance=stamp)
            ))
        return outcomes

    def collect_report(self) -> FleetReport:
        """Aggregate whatever is banked right now, without running."""
        results = []
        for scenario in self.scenarios:
            result = load_result(self.shard_dir(scenario))
            if result is not None:
                results.append(result)
        return FleetReport.build(self.scenarios, results)
