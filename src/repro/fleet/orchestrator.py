"""The fleet orchestrator: matrix → shards → cross-platform report.

:class:`FleetOrchestrator` expands a :class:`~repro.fleet.matrix
.ScenarioMatrix` into shards, schedules them across a process pool under
a global worker budget, and aggregates the banked results into a
:class:`~repro.fleet.report.FleetReport`.

Scheduling is *chain-based*: scenarios sharing a
:attr:`~repro.fleet.matrix.Scenario.platform_key` (identical chip, PDN
variant, thread count and mode — hence an identical fitness landscape)
form a chain that runs sequentially, each shard seeding its evaluation
cache from the state banked by its completed in-chain predecessors.
Distinct chains run in parallel.  Because seeding only ever flows down a
chain in expansion order, the final report is independent of worker
count, completion order, and any number of kill/resume cycles.

Everything durable lives under the fleet directory::

    fleet-dir/
      fleet.json            # matrix + options (written once, read on resume)
      report.json           # canonical cross-scenario report
      report.md             # the same report as GitHub markdown
      shards/<scenario_id>/ # one campaign checkpoint dir + result.json each

A killed fleet (SIGKILL included) resumes with
:meth:`FleetOrchestrator.resume`: banked shards are served from their
``result.json``, half-run shards continue from their campaign
checkpoint, and the rebuilt report is bit-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import dataclasses
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from repro.core.checkpoint import atomic_write_json
from repro.core.faults import FaultPolicy
from repro.core.telemetry import FleetEvent, ShardEvent, notify
from repro.errors import CheckpointError, ConfigurationError
from repro.fleet.matrix import ScenarioMatrix
from repro.fleet.report import REPORT_FILE, REPORT_MD_FILE, FleetReport
from repro.fleet.shard import ShardResult, ShardSpec, load_result, run_shard

FLEET_FILE = "fleet.json"

#: Bumped when the fleet meta layout changes incompatibly.
FLEET_VERSION = 1


def chain_schedule(scenarios) -> tuple:
    """Group scenarios into platform chains, expansion order preserved.

    Returns a tuple of chains (tuples of scenarios); chains are ordered
    by first appearance of their platform key, scenarios within a chain
    keep their expansion order.  This grouping is what makes cache
    seeding deterministic: a shard only ever seeds from predecessors in
    its own chain.
    """
    chains: dict = {}
    for scenario in scenarios:
        chains.setdefault(scenario.platform_key, []).append(scenario)
    return tuple(tuple(chain) for chain in chains.values())


class FleetOrchestrator:
    """Runs one scenario matrix as a resumable fleet of shards."""

    def __init__(
        self,
        matrix: ScenarioMatrix,
        fleet_dir,
        *,
        workers: int = 2,
        qualify: bool = False,
        failure_voltage: bool = False,
        fault_policy: FaultPolicy | None = None,
        observers=(),
        stop_after: int | None = None,
    ):
        if workers < 1:
            raise ConfigurationError("fleet workers must be >= 1")
        self.matrix = matrix
        self.fleet_dir = Path(fleet_dir)
        self.workers = workers
        self.qualify = qualify
        self.failure_voltage = failure_voltage
        self.fault_policy = fault_policy
        self.observers = tuple(observers)
        self.stop_after = stop_after
        """Test hook: raise KeyboardInterrupt after this many shard
        completions — a deterministic stand-in for kill -9."""
        self.scenarios = matrix.expand()
        self._completed = 0

    # ------------------------------------------------------------------
    # Fleet meta
    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.fleet_dir / FLEET_FILE

    def shard_dir(self, scenario) -> Path:
        return self.fleet_dir / "shards" / scenario.scenario_id

    def write_meta(self) -> None:
        policy = self.fault_policy
        meta = {
            "fleet_version": FLEET_VERSION,
            "matrix": self.matrix.to_dict(),
            "workers": self.workers,
            "qualify": self.qualify,
            "failure_voltage": self.failure_voltage,
            "fault_policy": None if policy is None else dataclasses.asdict(policy),
        }
        atomic_write_json(self.meta_path, meta)

    @classmethod
    def resume(
        cls,
        fleet_dir,
        *,
        workers: int | None = None,
        observers=(),
        stop_after: int | None = None,
    ) -> "FleetOrchestrator":
        """Rebuild the orchestrator a fleet directory was written by."""
        meta_path = Path(fleet_dir) / FLEET_FILE
        try:
            payload = json.loads(meta_path.read_text())
        except OSError:
            msg = f"no fleet meta at {meta_path} (was this directory written by `repro fleet run`?)"
            raise CheckpointError(msg) from None
        except json.JSONDecodeError as error:
            raise CheckpointError(f"corrupt fleet meta {meta_path}: {error}") from error
        version = payload.get("fleet_version")
        if version != FLEET_VERSION:
            msg = f"fleet meta version {version!r} in {meta_path} is not supported"
            raise CheckpointError(f"{msg} (expected {FLEET_VERSION})")
        policy = payload.get("fault_policy")
        return cls(
            ScenarioMatrix.from_dict(payload["matrix"]),
            fleet_dir,
            workers=workers if workers is not None else payload["workers"],
            qualify=bool(payload.get("qualify", False)),
            failure_voltage=bool(payload.get("failure_voltage", False)),
            fault_policy=None if policy is None else FaultPolicy(**policy),
            observers=observers,
            stop_after=stop_after,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _spec(self, chain, index) -> ShardSpec:
        """The shard spec for ``chain[index]``, seeded by banked
        in-chain predecessors that completed OK."""
        seed_dirs = []
        for predecessor in chain[:index]:
            directory = self.shard_dir(predecessor)
            banked = load_result(directory)
            if banked is not None and banked.ok:
                seed_dirs.append(str(directory))
        scenario = chain[index]
        return ShardSpec(
            scenario=scenario,
            shard_dir=str(self.shard_dir(scenario)),
            seed_state_dirs=tuple(seed_dirs),
            qualify=self.qualify,
            failure_voltage=self.failure_voltage,
            fault_policy=self.fault_policy,
        )

    def _on_result(self, result: ShardResult, results: list, start: float, running: int) -> None:
        results.append(result)
        self._completed += 1
        event = ShardEvent(
            scenario=result.scenario_id,
            status="ok" if result.ok else "failed",
            droop_v=result.droop_v or 0.0,
            evaluations=result.evaluations or 0,
            wall_s=result.timing.get("wall_s", 0.0),
            error=result.error,
            exit_code=result.exit_code,
        )
        notify(self.observers, event)
        progress = FleetEvent(
            total=len(self.scenarios),
            done=len(results),
            failed=len([r for r in results if not r.ok]),
            running=running,
            wall_s=time.perf_counter() - start,
        )
        notify(self.observers, progress)
        if self.stop_after is not None and self._completed >= self.stop_after:
            raise KeyboardInterrupt(f"fleet stop_after={self.stop_after} reached")

    def _banked(self, results: list) -> dict:
        """Serve already-banked OK shards without scheduling them."""
        banked = {}
        for scenario in self.scenarios:
            result = load_result(self.shard_dir(scenario))
            if result is not None and result.ok:
                banked[scenario.scenario_id] = result
                results.append(result)
                event = ShardEvent(
                    scenario=result.scenario_id,
                    status="banked",
                    droop_v=result.droop_v or 0.0,
                    evaluations=result.evaluations or 0,
                )
                notify(self.observers, event)
        return banked

    def run(self) -> FleetReport:
        """Run every shard not yet banked, then write and return the report.

        Shard failures never abort the fleet — they land in the report
        with their taxonomy exit code and the fleet's aggregate exit
        code reflects the most severe one.  A KeyboardInterrupt (Ctrl-C
        or the ``stop_after`` hook) propagates without writing a report,
        like a kill would; ``resume`` picks the fleet up afterwards.
        """
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            self.write_meta()
        start = time.perf_counter()
        results: list = []
        banked = self._banked(results)
        full_chains = chain_schedule(self.scenarios)
        chains = []
        for chain in full_chains:
            chains.append([s for s in chain if s.scenario_id not in banked])
        pending = [chain_index for chain_index, chain in enumerate(chains) if chain]
        kickoff = FleetEvent(
            total=len(self.scenarios),
            done=len(results),
            failed=0,
            running=0,
            wall_s=0.0,
            detail=f"{len(pending)} chain(s), {self.workers} worker(s)",
        )
        notify(self.observers, kickoff)
        if pending:
            if self.workers == 1:
                self._run_serial(chains, full_chains, results, start)
            else:
                self._run_pool(chains, full_chains, results, start)
        report = FleetReport.build(self.scenarios, results)
        self.write_report(report)
        return report

    def _full_spec(self, chains, full_chains, chain_index, index) -> ShardSpec:
        """Spec for ``chains[chain_index][index]`` with seeding resolved
        against the *full* chain (banked predecessors included)."""
        scenario = chains[chain_index][index]
        full_chain = full_chains[chain_index]
        return self._spec(full_chain, full_chain.index(scenario))

    def _run_serial(self, chains, full_chains, results, start) -> None:
        for chain_index, chain in enumerate(chains):
            for index in range(len(chain)):
                spec = self._full_spec(chains, full_chains, chain_index, index)
                event = ShardEvent(scenario=spec.scenario.scenario_id, status="started")
                notify(self.observers, event)
                result = run_shard(spec)
                self._on_result(result, results, start, running=0)

    def _run_pool(self, chains, full_chains, results, start) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {}

            def submit(chain_index: int, index: int) -> None:
                spec = self._full_spec(chains, full_chains, chain_index, index)
                event = ShardEvent(scenario=spec.scenario.scenario_id, status="started")
                notify(self.observers, event)
                futures[pool.submit(run_shard, spec)] = (chain_index, index)

            for chain_index, chain in enumerate(chains):
                if chain:
                    submit(chain_index, 0)
            try:
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        chain_index, index = futures.pop(future)
                        result = future.result()
                        # Next-in-chain first, so its seeding sees the
                        # result this future just banked.
                        if index + 1 < len(chains[chain_index]):
                            submit(chain_index, index + 1)
                        self._on_result(result, results, start, running=len(futures))
            except KeyboardInterrupt:
                for future in futures:
                    future.cancel()
                raise

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def write_report(self, report: FleetReport) -> None:
        tmp = self.fleet_dir / (REPORT_FILE + ".tmp")
        tmp.write_text(report.to_json())
        tmp.replace(self.fleet_dir / REPORT_FILE)
        tmp_md = self.fleet_dir / (REPORT_MD_FILE + ".tmp")
        tmp_md.write_text(report.to_markdown())
        tmp_md.replace(self.fleet_dir / REPORT_MD_FILE)

    def collect_report(self) -> FleetReport:
        """Aggregate whatever is banked right now, without running."""
        results = []
        for scenario in self.scenarios:
            result = load_result(self.shard_dir(scenario))
            if result is not None:
                results.append(result)
        return FleetReport.build(self.scenarios, results)
