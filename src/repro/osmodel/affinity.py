"""Thread-to-module placement policies.

Paper Section V.A: "higher voltage droops occur for a given number of
threads when threads are spatially distributed across modules.  Hence, for
the 1T, 2T, and 4T runs, each thread is assigned to a different module.
For the 8T runs, there are two threads assigned to each module."
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.uarch.config import ChipConfig


def spread_placement(chip: ChipConfig, thread_count: int) -> list[int]:
    """Threads per module under the paper's spread-first policy.

    Fills one thread per module before doubling up, e.g. on a 4-module
    2-thread chip: 1T→[1,0,0,0], 2T→[1,1,0,0], 4T→[1,1,1,1], 8T→[2,2,2,2].
    """
    if thread_count < 1:
        raise ConfigurationError("thread_count must be >= 1")
    if thread_count > chip.total_threads:
        raise ConfigurationError(
            f"{chip.name} supports at most {chip.total_threads} threads"
        )
    counts = [0] * chip.module_count
    for i in range(thread_count):
        counts[i % chip.module_count] += 1
    if max(counts) > chip.module.threads:
        raise ConfigurationError("placement exceeded per-module thread capacity")
    return counts


def packed_placement(chip: ChipConfig, thread_count: int) -> list[int]:
    """Threads per module packing modules full before moving on.

    The anti-policy to :func:`spread_placement`; used to study shared-
    resource interference at low thread counts.
    """
    if thread_count < 1:
        raise ConfigurationError("thread_count must be >= 1")
    if thread_count > chip.total_threads:
        raise ConfigurationError(
            f"{chip.name} supports at most {chip.total_threads} threads"
        )
    counts = [0] * chip.module_count
    remaining = thread_count
    for module in range(chip.module_count):
        take = min(remaining, chip.module.threads)
        counts[module] = take
        remaining -= take
    return counts
