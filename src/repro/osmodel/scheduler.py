"""OS interference model: timer ticks and natural dithering.

Paper Section III.A observes that on a Windows system the OS timer tick
(~16 ms) perturbs the relative phase of identical short loops running on
different cores — **natural dithering**.  Every tick, interrupt handling
steals a different number of cycles on each core, re-randomising the
alignment vector; when the phases happen to align, the resonant droop
maximises (the centre of Fig. 6's scope shot).

The model is deliberately simple: at each tick boundary every non-reference
core's phase offset is redrawn uniformly over the loop period.  That is
exactly the statistical behaviour the paper leverages, and it is the reason
the dithering *algorithm* (Section III.B) exists — relying on the OS to
align threads is not dependable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Windows timer tick period the paper observed (Section III.A: ~16 ms).
WINDOWS_TICK_S = 15.6e-3


@dataclass(frozen=True)
class TickPhases:
    """Alignment state during one tick interval."""

    start_s: float
    duration_s: float
    phases: tuple[int, ...]

    def misalignment(self, period: int) -> int:
        """Worst circular distance of any core from the reference core."""
        worst = 0
        for phase in self.phases:
            offset = phase % period
            worst = max(worst, min(offset, period - offset))
        return worst


class OsInterferenceModel:
    """Generates per-tick phase perturbations for a set of cores."""

    def __init__(
        self,
        *,
        tick_period_s: float = WINDOWS_TICK_S,
        seed: int | None = None,
    ):
        if tick_period_s <= 0:
            raise ConfigurationError("tick period must be positive")
        self.tick_period_s = tick_period_s
        self._rng = np.random.default_rng(seed)

    def natural_dithering(
        self,
        *,
        duration_s: float,
        cores: int,
        loop_period_cycles: int,
    ) -> list[TickPhases]:
        """Phase history over *duration_s* of running a short loop.

        Core 0 is the phase reference; the other ``cores - 1`` phases are
        redrawn uniformly in [0, loop_period_cycles) at every tick.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if cores < 1:
            raise ConfigurationError("need at least one core")
        if loop_period_cycles < 1:
            raise ConfigurationError("loop period must be >= 1 cycle")
        ticks = []
        t = 0.0
        while t < duration_s:
            span = min(self.tick_period_s, duration_s - t)
            others = self._rng.integers(0, loop_period_cycles, size=cores - 1)
            ticks.append(
                TickPhases(
                    start_s=t,
                    duration_s=span,
                    phases=(0, *map(int, others)),
                )
            )
            t += span
        return ticks

    def interrupt_cycle_cost(self, *, frequency_hz: float) -> int:
        """Cycles stolen by one tick's interrupt handling (randomised).

        Used by workload models to inject activity gaps; magnitude is a few
        microseconds of handler time.
        """
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        micros = self._rng.uniform(0.5, 3.0)
        return int(micros * 1e-6 * frequency_hz)
