"""Operating-system interference substrate: ticks, jitter, placement."""

from repro.osmodel.affinity import packed_placement, spread_placement
from repro.osmodel.scheduler import (
    WINDOWS_TICK_S,
    OsInterferenceModel,
    TickPhases,
)

__all__ = [
    "OsInterferenceModel",
    "TickPhases",
    "WINDOWS_TICK_S",
    "packed_placement",
    "spread_placement",
]
