"""The invariant-guard catalog: cheap checks between simulation layers.

Every guard is a pure function over the arrays a layer is about to hand
upward; on failure it raises :class:`~repro.errors.InvariantViolation`
with a stable ``guard`` name and the ``layer`` that fired, so telemetry
and the fault policy can attribute the corruption.  Guards are *always
on* — they cost a few vectorised passes over traces that each took a PDN
solve or a pipeline simulation to produce, so the overhead is noise.

Catalog (guard name → what it protects):

================== ====================================================
``voltage-finite``   every voltage sample is a finite float
``voltage-bounds``   voltage stays within [0, 2 x supply] — a droop equal
                     to the full rail is a solver blow-up, not physics
``current-finite``   every current sample is a finite float
``current-bounds``   load current is never negative (modules sink, the
                     model has no regeneration path)
``sensitivity``      per-cycle sensitivity weights are finite and >= 0
``trace-length``     voltage, current, and sensitivity traces agree on
                     length — a truncated capture must not score
``time-axis``        sample intervals are positive and agree across the
                     traces of one measurement (uniform monotonic time)
``module-energy``    per-cycle switching energy is finite and >= 0
``module-length``    a module's energy/sensitivity arrays agree on length
``module-activity``  an executed module dissipated *some* energy — an
                     all-zero energy trace means the accounting broke
================== ====================================================
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantViolation

#: guard name -> (layer it usually fires at, one-line description).
GUARD_CATALOG: dict[str, tuple[str, str]] = {
    "voltage-finite": ("platform", "voltage samples are finite"),
    "voltage-bounds": ("platform", "voltage within [0, 2 x supply]"),
    "current-finite": ("platform", "current samples are finite"),
    "current-bounds": ("platform", "load current is non-negative"),
    "sensitivity": ("platform", "sensitivity weights finite and >= 0"),
    "trace-length": ("platform", "voltage/current/sensitivity lengths agree"),
    "time-axis": ("platform", "positive dt, equal across traces"),
    "module-energy": ("uarch", "per-cycle energy finite and >= 0"),
    "module-length": ("uarch", "energy/sensitivity lengths agree"),
    "module-activity": ("uarch", "an executed module dissipated energy"),
}


def _fail(guard: str, layer: str, message: str) -> None:
    raise InvariantViolation(guard, layer, message)


def check_current_samples(samples: np.ndarray, *, layer: str) -> None:
    """Load current must be finite and non-negative."""
    samples = np.asarray(samples)
    if not np.isfinite(samples).all():
        bad = int(np.count_nonzero(~np.isfinite(samples)))
        _fail("current-finite", layer,
              f"{bad}/{samples.size} current samples are not finite")
    if samples.size and float(samples.min()) < 0.0:
        _fail("current-bounds", layer,
              f"negative load current {float(samples.min()):.3g} A")


def check_voltage_samples(
    samples: np.ndarray, *, supply_v: float, layer: str
) -> None:
    """Voltage must be finite and within [0, 2 x supply]."""
    samples = np.asarray(samples)
    if not np.isfinite(samples).all():
        bad = int(np.count_nonzero(~np.isfinite(samples)))
        _fail("voltage-finite", layer,
              f"{bad}/{samples.size} voltage samples are not finite")
    if samples.size:
        lo, hi = float(samples.min()), float(samples.max())
        if lo < 0.0 or hi > 2.0 * supply_v:
            _fail("voltage-bounds", layer,
                  f"voltage [{lo:.3g}, {hi:.3g}] V escapes "
                  f"[0, {2.0 * supply_v:.3g}] V at supply {supply_v:.3g} V")


def check_sensitivity(sensitivity: np.ndarray, *, layer: str) -> None:
    """Per-cycle sensitivity weights must be finite and non-negative."""
    sensitivity = np.asarray(sensitivity)
    if not np.isfinite(sensitivity).all():
        bad = int(np.count_nonzero(~np.isfinite(sensitivity)))
        _fail("sensitivity", layer,
              f"{bad}/{sensitivity.size} sensitivity weights are not finite")
    if sensitivity.size and float(sensitivity.min()) < 0.0:
        _fail("sensitivity", layer,
              f"negative sensitivity weight {float(sensitivity.min()):.3g}")


def check_time_axis(*dts: float, layer: str) -> None:
    """Sample intervals must be positive and agree across traces."""
    for dt in dts:
        if not (np.isfinite(dt) and dt > 0.0):
            _fail("time-axis", layer, f"non-positive sample interval {dt!r}")
    if dts and any(abs(dt - dts[0]) > 1e-18 for dt in dts[1:]):
        _fail("time-axis", layer,
              f"sample intervals disagree across traces: {dts!r}")


def check_module_trace(trace) -> None:
    """Guard a fresh :class:`~repro.uarch.module.ModuleTrace`."""
    energy = np.asarray(trace.energy_pj)
    sens = np.asarray(trace.sensitivity)
    if not np.isfinite(energy).all():
        bad = int(np.count_nonzero(~np.isfinite(energy)))
        _fail("module-energy", "uarch",
              f"{bad}/{energy.size} energy samples are not finite")
    if energy.size and float(energy.min()) < 0.0:
        _fail("module-energy", "uarch",
              f"negative per-cycle energy {float(energy.min()):.3g} pJ")
    if len(energy) != len(sens):
        _fail("module-length", "uarch",
              f"energy trace has {len(energy)} cycles but sensitivity "
              f"has {len(sens)}")
    check_sensitivity(sens, layer="uarch")
    if energy.size and float(energy.sum()) <= 0.0:
        _fail("module-activity", "uarch",
              "module executed a program but dissipated zero energy")


def check_measurement(measurement) -> None:
    """Guard a complete platform :class:`~repro.core.platform.Measurement`.

    Runs at the platform facade on whatever the backend returned, so a
    corrupt capture — simulated or real — is rejected before any cost
    function can turn it into a finite fitness.
    """
    voltage = measurement.voltage
    current = measurement.current
    sens = np.asarray(measurement.sensitivity)
    check_time_axis(voltage.dt, current.dt, layer="platform")
    if not (len(voltage) == len(current) == len(sens)):
        _fail("trace-length", "platform",
              f"trace lengths disagree: voltage {len(voltage)}, "
              f"current {len(current)}, sensitivity {len(sens)}")
    check_voltage_samples(
        voltage.samples, supply_v=measurement.supply_v, layer="platform")
    check_current_samples(current.samples, layer="platform")
    check_sensitivity(sens, layer="platform")
