"""Always-on runtime invariant guards for the measurement stack.

The guards in :mod:`repro.validation.invariants` are cheap finite-value,
bounds, and consistency checks wired into the chip simulator, the PDN
transient solver, and the measurement platform.  They turn corrupt
numerics into a structured :class:`~repro.errors.InvariantViolation`
(routed through the fault policy) instead of letting NaN/Inf or truncated
traces score as fitness.
"""

from repro.validation.invariants import (
    GUARD_CATALOG,
    check_current_samples,
    check_measurement,
    check_module_trace,
    check_sensitivity,
    check_time_axis,
    check_voltage_samples,
)

__all__ = [
    "GUARD_CATALOG",
    "check_current_samples",
    "check_measurement",
    "check_module_trace",
    "check_sensitivity",
    "check_time_axis",
    "check_voltage_samples",
]
