"""Deterministic corruption and fault injection for durability tests.

The supervision layer's claims — "a truncated checkpoint salvages", "a
full disk cannot destroy the last snapshot" — are only worth anything if
they are *tested*, and testing them needs reproducible damage.  This
module provides the damage:

* :func:`truncate_file` / :func:`bitflip_file` corrupt an on-disk file
  deterministically (seeded), simulating torn writes and bit rot.
* :func:`inject_write_failures` arms the write-fault seam inside
  :mod:`repro.core.atomicio` (shared by checkpoints, fleet artifacts,
  and the registry) so the next N atomic writes fail with a chosen
  ``errno`` (default ``ENOSPC``) *before* touching the target — exactly
  what a full disk does at the worst instant.

These complement the evaluation-level chaos in
:class:`~repro.core.faults.FaultInjectingBackend` (exceptions, hangs,
hang-forever, worker aborts, corrupt captures): together every failure
mode the supervisor handles has a reproducible trigger.
"""

from __future__ import annotations

import errno as errno_module
import os
import random
from contextlib import contextmanager
from pathlib import Path

from repro.core import atomicio as _atomicio
from repro.errors import ConfigurationError

__all__ = ["bitflip_file", "inject_write_failures", "truncate_file"]


def truncate_file(path, *, keep_fraction: float = 0.5,
                  keep_bytes: int | None = None) -> int:
    """Chop the tail off *path* (a torn / interrupted write).

    Returns the number of bytes kept.  ``keep_bytes`` overrides
    ``keep_fraction`` when given.
    """
    path = Path(path)
    size = path.stat().st_size
    if keep_bytes is None:
        if not 0.0 <= keep_fraction <= 1.0:
            raise ConfigurationError(
                f"keep_fraction must be in [0, 1], got {keep_fraction}"
            )
        keep_bytes = int(size * keep_fraction)
    keep_bytes = max(0, min(size, keep_bytes))
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return keep_bytes


def bitflip_file(path, *, offset: int | None = None, bit: int = 0,
                 seed: int = 0) -> int:
    """Flip one bit in *path* (bit rot); returns the byte offset flipped.

    With ``offset=None`` the position is drawn from ``random.Random(seed)``
    so tests are reproducible without hard-coding file layouts.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ConfigurationError(f"cannot bit-flip empty file {path}")
    if offset is None:
        offset = random.Random(seed).randrange(size)
    if not 0 <= offset < size:
        raise ConfigurationError(
            f"offset {offset} out of range for {size}-byte file {path}"
        )
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << (bit % 8))]))
        handle.flush()
        os.fsync(handle.fileno())
    return offset


@contextmanager
def inject_write_failures(*, count: int = 1,
                          errno: int = errno_module.ENOSPC,
                          match: str = ""):
    """Make the next *count* durable writes fail with *errno*.

    Arms the ``_write_fault_hook`` seam in :mod:`repro.core.atomicio`:
    every atomic write whose target path contains *match* (substring;
    empty matches all) raises ``OSError(errno)`` before any byte lands,
    until *count* failures have been delivered.  Yields a one-entry list
    whose element counts the failures actually injected.
    """
    remaining = [count]
    delivered = [0]

    def hook(path: Path) -> None:
        if match and match not in str(path):
            return
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        delivered[0] += 1
        raise OSError(errno, os.strerror(errno), str(path))

    previous = _atomicio._write_fault_hook
    _atomicio._write_fault_hook = hook
    try:
        yield delivered
    finally:
        _atomicio._write_fault_hook = previous
