"""Supervised process-pool execution: hard deadlines, crash recovery.

The :class:`~repro.core.engine.ParallelExecutor` trusts its workers: the
cooperative watchdog in :mod:`repro.core.faults` only measures an attempt's
wall time *after it returns*, so a genuinely hung evaluation stalls a
campaign forever, and a worker that dies (segfault, ``os._exit``, OOM kill)
surfaces as :class:`~concurrent.futures.process.BrokenProcessPool` and
aborts the whole run.  :class:`SupervisedExecutor` closes both gaps at the
process level:

hard deadlines
    Each task's wall time is tracked from submission.  Submission is
    throttled to the pool width, so a submitted task is (to within one
    scheduling quantum) a *running* task and the deadline measures real
    execution time.  A task that outlives ``task_timeout_s`` has its pool
    killed (``SIGKILL`` to every worker — a hung worker ignores polite
    requests), the pool is respawned, innocent in-flight tasks are
    requeued, and the hung task resolves to a :class:`SupervisorFault`
    sentinel instead of a result.  Hung tasks are *not* retried by the
    supervisor: each retry would burn another full deadline of wall
    clock.  The engine folds the sentinel into the existing
    :class:`~repro.core.faults.FaultPolicy` quarantine taxonomy.

crash recovery
    ``BrokenProcessPool`` condemns every in-flight future, so the culprit
    is unidentifiable from the exception alone.  The supervisor moves all
    condemned tasks into an *isolation* queue and replays them one at a
    time: a lone task that crashes again is definitively the culprit and
    takes a strike (``crash_retries`` strikes allowed — transient crashes
    deserve one more chance; deterministic crashers resolve to a
    ``SupervisorFault``), while innocent tasks simply complete on replay.
    Every pool rebuild — hang or crash — draws from one shared
    ``max_pool_rebuilds`` budget so a pathological batch cannot respawn
    forever; exhausting it raises :class:`SupervisionExhaustedError`.

Everything the supervisor does is narrated through
:class:`~repro.core.telemetry.SupervisorEvent` so operators can see hangs,
crashes, respawns, and requeues in the run summary.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.faults import QuarantineExhaustedError
from repro.core.telemetry import RunObserver, SupervisorEvent, notify
from repro.errors import ConfigurationError, ReproError

__all__ = [
    "SupervisedExecutor",
    "SupervisorFault",
    "SupervisionExhaustedError",
    "WorkerCrashError",
    "WorkerHangError",
    "kill_pool_processes",
]

#: Default total pool-rebuild budget per ``map`` call.  Generous enough for
#: a handful of poison genomes per generation, small enough that a
#: systemically broken platform fails fast instead of thrashing.
DEFAULT_MAX_POOL_REBUILDS = 5


class SupervisionExhaustedError(ReproError):
    """The supervised executor ran out of pool-rebuild budget.

    So many hangs/crashes occurred in one batch that continuing would mean
    respawning pools indefinitely — the platform (or the chaos injection
    rate) is systemically broken, not one bad genome.
    """


class WorkerHangError(QuarantineExhaustedError):
    """An evaluation blew its hard deadline and its worker was killed.

    Subclasses :class:`~repro.core.faults.QuarantineExhaustedError` so a
    hang surfaced with ``on_exhaust="raise"`` (or with no fault policy at
    all) classifies as a fault-budget failure (exit code 3), matching the
    cooperative-timeout taxonomy.
    """


class WorkerCrashError(QuarantineExhaustedError):
    """A worker process died (segfault / ``os._exit``) under an evaluation."""


@dataclass(frozen=True)
class SupervisorFault:
    """Sentinel result for a task the supervisor gave up on.

    Takes the slot an :class:`~repro.core.faults.EvalOutcome` (or plain
    fitness value) would occupy in the executor's result list.  The
    evaluation engine converts it into the fault-policy taxonomy —
    quarantine, penalty, or a raised :class:`WorkerHangError` /
    :class:`WorkerCrashError`.

    ``kind`` is ``"hang"`` or ``"crash"``; ``attempts`` counts executions
    (1 for a hang, 1 + retries for a crash); ``wall_s`` is the wall time
    burned across all attempts.
    """

    kind: str
    error: str
    attempts: int = 1
    wall_s: float = 0.0

    #: Parallels ``EvalOutcome.stats`` so stats-absorbing code can treat
    #: either uniformly.
    stats = None

    #: Parallels ``EvalOutcome.spans``: a killed worker's span buffer died
    #: with it, so there is never trace data to harvest from a fault.
    spans = ()


def kill_pool_processes(pool: ProcessPoolExecutor | None) -> None:
    """Hard-kill a pool's workers and abandon it.

    ``shutdown(wait=True)`` on a pool with a hung worker never returns, so
    the only reliable teardown is SIGKILL to each worker process first.
    Also used by the fleet orchestrator on hung/crashed shards.
    """
    if pool is None:
        return
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except OSError:  # pragma: no cover - already-reaped worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _Flight:
    """Book-keeping for one submitted task."""

    index: int
    submitted_at: float


class SupervisedExecutor:
    """Process-pool executor with hard deadlines and crash recovery.

    Drop-in :class:`~repro.core.engine.FitnessExecutor`: ``map`` preserves
    request order and propagates ordinary exceptions raised *by the task
    function* exactly like ``ParallelExecutor`` — supervision only
    intervenes when the worker process itself misbehaves (hang past
    ``task_timeout_s``, death under a task).  Those slots resolve to
    :class:`SupervisorFault` sentinels for the caller to adjudicate.

    With ``task_timeout_s=None`` the deadline sweep is disabled and only
    crash recovery is active; the executor then adds no polling overhead
    (the event loop blocks until a future completes).
    """

    name = "supervised"

    def __init__(
        self,
        workers: int,
        *,
        task_timeout_s: float | None = None,
        max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
        crash_retries: int = 1,
        observers: Sequence[RunObserver] = (),
        poll_s: float = 0.1,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive, got {task_timeout_s}"
            )
        if max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.crash_retries = max(0, crash_retries)
        self.observers = list(observers)
        self.poll_s = poll_s
        self.rebuilds = 0
        self._pool: ProcessPoolExecutor | None = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _kill_and_respawn(self, *, reason: str) -> None:
        """Destroy the current pool and account one rebuild."""
        kill_pool_processes(self._pool)
        self._pool = None
        self.rebuilds += 1
        notify(
            self.observers,
            SupervisorEvent(
                action="respawn", detail=reason, respawns=self.rebuilds
            ),
        )
        if self.rebuilds > self.max_pool_rebuilds:
            raise SupervisionExhaustedError(
                f"pool rebuilt {self.rebuilds} times (budget "
                f"{self.max_pool_rebuilds}); the platform is systemically "
                f"unstable — last cause: {reason}"
            )

    def _abort(self) -> None:
        """Tear down after a task-level exception (mirrors ParallelExecutor)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- the supervised event loop ----------------------------------------

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if not items:
            return []

        unset = object()
        results: list = [unset] * len(items)
        # Normal work queue, FIFO over item indexes.
        queue: deque[int] = deque(range(len(items)))
        # Isolation queue: tasks condemned by a pool crash, replayed one
        # at a time so a repeat crash identifies its culprit.
        suspects: deque[int] = deque()
        strikes: dict[int, int] = {}
        wall_spent: dict[int, float] = {}
        inflight: dict[Future, _Flight] = {}

        def submit_next() -> None:
            if suspects:
                # Isolation mode: drain in-flight work first, then replay
                # suspects strictly one at a time.
                if not inflight:
                    index = suspects.popleft()
                    future = self._ensure_pool().submit(fn, items[index])
                    inflight[future] = _Flight(index, time.monotonic())
                return
            while queue and len(inflight) < self.workers:
                index = queue.popleft()
                future = self._ensure_pool().submit(fn, items[index])
                inflight[future] = _Flight(index, time.monotonic())

        def condemn() -> list[_Flight]:
            """Collect every in-flight task; harvest finished results."""
            condemned: list[_Flight] = []
            for future, flight in inflight.items():
                if future.done():
                    try:
                        results[flight.index] = future.result()
                        continue
                    except BaseException:
                        # Died with the pool (or raised); adjudicate below.
                        pass
                condemned.append(flight)
            inflight.clear()
            return condemned

        try:
            while queue or suspects or inflight:
                submit_next()
                timeout = None
                if self.task_timeout_s is not None:
                    timeout = self.poll_s
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                crashed = False
                for future in done:
                    flight = inflight.pop(future)
                    try:
                        results[flight.index] = future.result()
                    except BrokenProcessPool:
                        # Put the flight back so condemn() sees it along
                        # with every other in-flight victim.
                        inflight[future] = flight
                        crashed = True
                        break
                    except Exception:
                        self._abort()
                        raise

                if crashed:
                    self._handle_crash(
                        condemn(), suspects, strikes, wall_spent, results
                    )
                    continue

                if self.task_timeout_s is not None:
                    self._sweep_deadlines(
                        inflight, queue, suspects, wall_spent, results
                    )
        except BaseException:
            kill_pool_processes(self._pool)
            self._pool = None
            raise

        assert not any(r is unset for r in results)
        return results

    # -- hang handling -----------------------------------------------------

    def _sweep_deadlines(self, inflight, queue, suspects, wall_spent, results):
        now = time.monotonic()
        hung = [
            (future, flight)
            for future, flight in inflight.items()
            if now - flight.submitted_at > self.task_timeout_s
            and not future.done()
        ]
        if not hung:
            return
        hung_indexes = {flight.index for _, flight in hung}
        for _, flight in hung:
            wall = now - flight.submitted_at
            notify(
                self.observers,
                SupervisorEvent(
                    action="hang-kill",
                    task=f"task[{flight.index}]",
                    detail=(
                        f"no result after {wall:.1f}s "
                        f"(deadline {self.task_timeout_s:.1f}s); "
                        f"worker pool killed"
                    ),
                    wall_s=wall,
                ),
            )
            results[flight.index] = SupervisorFault(
                kind="hang",
                error=(
                    f"evaluation hung: no result after {wall:.1f}s "
                    f"(hard deadline {self.task_timeout_s:.1f}s); "
                    f"worker killed"
                ),
                attempts=1,
                wall_s=wall + wall_spent.get(flight.index, 0.0),
            )
        # Innocent in-flight tasks go back to the *front* of their queue —
        # they were already scheduled, so they keep their place in line.
        innocents = [
            flight for _, flight in inflight.items()
            if flight.index not in hung_indexes
        ]
        for flight in innocents:
            wall_spent[flight.index] = (
                wall_spent.get(flight.index, 0.0) + (now - flight.submitted_at)
            )
            notify(
                self.observers,
                SupervisorEvent(
                    action="requeue",
                    task=f"task[{flight.index}]",
                    detail="in flight during a hang-kill; rescheduled",
                ),
            )
        target = suspects if suspects else queue
        target.extendleft(
            flight.index for flight in reversed(innocents)
        )
        inflight.clear()
        self._kill_and_respawn(
            reason=f"{len(hung)} task(s) past the {self.task_timeout_s:.1f}s "
            f"hard deadline"
        )

    # -- crash handling ----------------------------------------------------

    def _handle_crash(self, condemned, suspects, strikes, wall_spent, results):
        now = time.monotonic()
        notify(
            self.observers,
            SupervisorEvent(
                action="crash",
                detail=(
                    f"worker process died; {len(condemned)} in-flight "
                    f"task(s) condemned"
                ),
            ),
        )
        if len(condemned) == 1:
            # Running alone (isolation mode, or a one-task tail): the
            # culprit is identified beyond doubt.
            flight = condemned[0]
            index = flight.index
            strikes[index] = strikes.get(index, 0) + 1
            wall_spent[index] = (
                wall_spent.get(index, 0.0) + (now - flight.submitted_at)
            )
            if strikes[index] > self.crash_retries:
                notify(
                    self.observers,
                    SupervisorEvent(
                        action="give-up",
                        task=f"task[{index}]",
                        detail=(
                            f"crashed the worker {strikes[index]} time(s); "
                            f"handing to the fault policy"
                        ),
                    ),
                )
                results[index] = SupervisorFault(
                    kind="crash",
                    error=(
                        f"worker process died under this evaluation "
                        f"{strikes[index]} time(s) (segfault/os._exit?)"
                    ),
                    attempts=strikes[index],
                    wall_s=wall_spent[index],
                )
            else:
                suspects.appendleft(index)
        else:
            # The culprit is unidentifiable: isolate everyone.  No strikes
            # for the innocent — they are simply replayed one at a time.
            for flight in condemned:
                wall_spent[flight.index] = (
                    wall_spent.get(flight.index, 0.0)
                    + (now - flight.submitted_at)
                )
                notify(
                    self.observers,
                    SupervisorEvent(
                        action="requeue",
                        task=f"task[{flight.index}]",
                        detail="condemned by a worker crash; isolating",
                    ),
                )
            suspects.extend(flight.index for flight in condemned)
        self._kill_and_respawn(reason="worker process crash")
