"""Process supervision: hard watchdogs, crash recovery, graceful shutdown.

The cooperative fault layer in :mod:`repro.core.faults` handles errors a
worker can *report*; this package handles the failures it cannot — hung
evaluations (:class:`SupervisedExecutor` hard deadlines), dead worker
processes (pool respawn + crash isolation), operator interruption
(:class:`ShutdownCoordinator` → final checkpoint + distinct exit code),
and damaged checkpoints (verified salvage in
:mod:`repro.core.checkpoint`, exercised by :mod:`repro.supervision.chaos`).

See DESIGN.md §11 for the deadline/respawn/salvage state machine.
"""

from repro.supervision.executor import (
    SupervisedExecutor,
    SupervisionExhaustedError,
    SupervisorFault,
    WorkerCrashError,
    WorkerHangError,
    kill_pool_processes,
)
from repro.supervision.shutdown import ShutdownCoordinator

__all__ = [
    "ShutdownCoordinator",
    "SupervisedExecutor",
    "SupervisionExhaustedError",
    "SupervisorFault",
    "WorkerCrashError",
    "WorkerHangError",
    "kill_pool_processes",
]
