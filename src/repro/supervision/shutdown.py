"""Graceful-shutdown coordination: signals and wall-clock budgets.

A fleet host stops a campaign in one of two sanctioned ways: it sends
SIGTERM/SIGINT, or the run exhausts a ``--max-wall-clock`` budget.  Either
way the campaign should *finish its in-flight generation, write a final
checkpoint, and exit with the distinct* :data:`~repro.errors.EXIT_INTERRUPTED`
*code* — "try again later", not "crashed".

:class:`ShutdownCoordinator` funnels both triggers into one poll-style
API.  The GA loop calls :meth:`stop_requested` at each generation boundary
(right after the checkpoint for that boundary has landed) and raises
:class:`~repro.errors.CampaignInterrupted` when it returns a reason.

Signal handling is cooperative-with-an-escape-hatch: the *first* SIGTERM or
SIGINT requests a graceful stop; a *second* delivery of the same signal
restores the default disposition and re-raises it, so an operator who has
lost patience can still kill the process the ordinary way (Ctrl-C twice).

The coordinator degrades gracefully off the main thread (where Python
forbids ``signal.signal``): the wall-clock budget still works, signals are
simply not intercepted.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Sequence

from repro.core.telemetry import RunObserver, SupervisorEvent, notify
from repro.errors import ConfigurationError

__all__ = ["ShutdownCoordinator"]

_DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class ShutdownCoordinator:
    """Turns SIGTERM/SIGINT and wall-clock budgets into a stop reason.

    Use as a context manager around the campaign::

        coordinator = ShutdownCoordinator(max_wall_clock_s=3600)
        with coordinator:
            runner.run(..., stop=coordinator.stop_requested)

    ``stop_requested()`` returns ``None`` while the run may continue, or a
    human-readable reason string (``"signal SIGTERM"``,
    ``"wall-clock budget (3600.0s)"``) once a stop has been requested.
    The reason is sticky — once set it never clears.
    """

    def __init__(
        self,
        *,
        max_wall_clock_s: float | None = None,
        signals: Sequence[signal.Signals] = _DEFAULT_SIGNALS,
        observers: Sequence[RunObserver] = (),
    ):
        if max_wall_clock_s is not None and max_wall_clock_s < 0:
            raise ConfigurationError(
                f"max_wall_clock_s must be >= 0, got {max_wall_clock_s}"
            )
        self.max_wall_clock_s = max_wall_clock_s
        self.signals = tuple(signals)
        self.observers = list(observers)
        self.started_at = time.monotonic()
        self._reason: str | None = None
        self._announced = False
        self._previous: dict[int, object] = {}

    # -- signal plumbing ---------------------------------------------------

    def _on_signal(self, signum, frame) -> None:  # noqa: ARG002
        name = signal.Signals(signum).name
        if self._reason is not None:
            # Second delivery: the operator means it.  Restore the default
            # disposition and re-deliver so the process dies the normal way.
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self._request(f"signal {name}")

    def install(self) -> ShutdownCoordinator:
        """Install signal handlers (no-op off the main thread)."""
        for sig in self.signals:
            try:
                self._previous[sig] = signal.signal(sig, self._on_signal)
            except ValueError:
                # Not the main thread — wall-clock budget still applies.
                break
        return self

    def uninstall(self) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, TypeError):  # pragma: no cover
                pass
        self._previous.clear()

    def __enter__(self) -> ShutdownCoordinator:
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
        self.flush_observers()

    # -- the stop poll -----------------------------------------------------

    def _request(self, reason: str) -> None:
        if self._reason is None:
            self._reason = reason

    def request(self, reason: str) -> None:
        """Programmatically request a graceful stop (first request wins)."""
        self._request(reason)

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_at

    def stop_requested(self) -> str | None:
        """Return the stop reason, or ``None`` to keep running.

        Checks the wall-clock budget on every call, so a budget overrun is
        noticed at the next generation boundary without any timer thread.
        """
        if (
            self._reason is None
            and self.max_wall_clock_s is not None
            and self.elapsed_s() >= self.max_wall_clock_s
        ):
            self._request(
                f"wall-clock budget ({self.max_wall_clock_s:g}s)"
            )
        if self._reason is not None and not self._announced:
            self._announced = True
            notify(
                self.observers,
                SupervisorEvent(
                    action="shutdown",
                    detail=self._reason,
                    wall_s=self.elapsed_s(),
                ),
            )
            # A drain is the last chance buffered observers get before the
            # campaign unwinds: a SIGTERM that lands mid-generation must not
            # lose that generation's telemetry to an in-memory JSONL buffer.
            self.flush_observers()
        return self._reason

    def flush_observers(self) -> None:
        """Flush any attached observer that exposes a ``flush()``."""
        for observer in self.observers:
            flush = getattr(observer, "flush", None)
            if callable(flush):
                flush()
