"""Cache hierarchy model.

The testbed chips have per-module L2 and a shared L3 (paper Section IV).
Stressmark loops touch a working set that fits L1, so for generated code the
hierarchy contributes an L1 latency and energy; the synthetic benchmark
models (:mod:`repro.workloads`) use the deeper levels to shape their
memory-bound phases (a long-latency miss followed by a burst of activity is
one of the paper's named droop inducers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError


class CacheLevel(str, Enum):
    """Where a memory access hits."""

    L1 = "l1"
    L2 = "l2"
    L3 = "l3"
    MEMORY = "memory"


@dataclass(frozen=True)
class CacheLevelSpec:
    """Latency and access energy of one level."""

    latency_cycles: int
    energy_pj: float

    def __post_init__(self) -> None:
        if self.latency_cycles < 1:
            raise ConfigurationError("latency must be >= 1 cycle")
        if self.energy_pj < 0:
            raise ConfigurationError("energy must be non-negative")


@dataclass(frozen=True)
class CacheHierarchy:
    """The full hierarchy; defaults approximate the Bulldozer testbed."""

    l1: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(4, 110.0))
    l2: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(21, 360.0))
    l3: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(65, 820.0))
    memory: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(220, 1900.0))

    def spec(self, level: CacheLevel) -> CacheLevelSpec:
        """Return the spec for *level*."""
        mapping = {
            CacheLevel.L1: self.l1,
            CacheLevel.L2: self.l2,
            CacheLevel.L3: self.l3,
            CacheLevel.MEMORY: self.memory,
        }
        try:
            return mapping[level]
        except KeyError:
            raise ConfigurationError(f"unknown cache level: {level!r}") from None

    def load_latency(self, level: CacheLevel = CacheLevel.L1) -> int:
        """Load-to-use latency for a hit at *level*."""
        return self.spec(level).latency_cycles

    def access_energy(self, level: CacheLevel = CacheLevel.L1) -> float:
        """Energy of one access hitting at *level* (pJ)."""
        return self.spec(level).energy_pj
