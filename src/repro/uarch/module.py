"""Cycle-level module simulator.

Executes one or two :class:`~repro.isa.kernels.ThreadProgram` loops on a
module and produces the per-cycle **dynamic energy** and **path
sensitivity** traces the measurement platform converts into load current and
failure requirements.

The model is a steady-state loop scheduler with the structural hazards the
paper names (Section V.A.5): shared decode width, per-core integer unit
pools, the module-shared FP pipes (and optional FPU throttle), physical
register tokens, result buses, and true data dependencies through a rename
table.  NOPs retire at decode — they spend fetch/decode energy but no
back-end resources, which is why AUDIT's NOP-sprinkled loops can hold a
resonant period where an ADD-filled loop stretches (paper Section V.A.5,
reproduced by ``benchmarks/test_sec5a5_nop_analysis.py``).

Loops are assumed perfectly predicted (they are: a fixed-trip-count ``dec
rcx; jnz``), so there is no misprediction modelling here; benchmark-style
irregular activity is modelled separately in :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError
from repro.isa.data_patterns import toggle_factor
from repro.isa.instruction import Instruction
from repro.isa.kernels import ThreadProgram
from repro.isa.opcodes import IClass, OpcodeSpec, Unit
from repro.uarch.caches import CacheLevel
from repro.uarch.config import DECODE_ENERGY_PJ, ChipConfig
from repro.uarch.resources import PerCycleLimiter, TokenPool, UnitPool

#: Synthetic macro-fused loop-close op (dec rcx + jnz): one ALU slot per
#: iteration, no modelled operands (the rcx chain is 1-cycle and never binds).
LOOP_CLOSE_SPEC = OpcodeSpec(
    mnemonic="dec+jnz",
    iclass=IClass.BRANCH,
    unit=Unit.IALU,
    latency=1,
    issue_interval=1,
    energy_pj=110.0,
    num_sources=0,
    has_dest=False,
    operand_class=None,
)

#: Hard cap on simulated cycles per run — a scheduling bug must fail loudly,
#: not hang a GA generation.
_MAX_CYCLES = 2_000_000


class _InFlight:
    """A decoded, not-yet-issued (or executing) instruction."""

    __slots__ = ("inst", "producers", "ready_cycle", "is_loop_close", "token_pool")

    def __init__(self, inst: Instruction, producers: list["_InFlight"],
                 is_loop_close: bool = False):
        self.inst = inst
        self.producers = producers
        self.ready_cycle: int | None = None  # set at issue
        self.is_loop_close = is_loop_close
        self.token_pool: TokenPool | None = None


class _ThreadState:
    """Decode/issue state of one hardware thread."""

    def __init__(self, program: ThreadProgram, config: ChipConfig, tid: int):
        core = config.module.core
        self.tid = tid
        self.program = program
        body = list(program.kernel.body)
        loop_close = Instruction(spec=LOOP_CLOSE_SPEC)
        self.body: list[Instruction] = body + [loop_close]
        self.pos = 0
        self.iteration = 0
        self.target_iterations = program.iterations
        self.start_cycle = program.phase_cycles
        self.iter_start_cycles: list[int] = []
        self.window: list[_InFlight] = []
        self.window_capacity = core.scheduler_window
        self.rename: dict = {}
        self.ialu = UnitPool(core.int_alu_count, "ialu")
        self.agu = UnitPool(core.agu_count, "agu")
        self.imul = UnitPool(core.imul_count, "imul")
        self.result_bus = PerCycleLimiter(core.result_buses, "result-bus")
        self.int_tokens = TokenPool(core.int_phys_regs, "int-prf")
        self.rob: list[_InFlight] = []
        self.retire_width = core.retire_width

    @property
    def decode_done(self) -> bool:
        return self.iteration >= self.target_iterations

    @property
    def drained(self) -> bool:
        return self.decode_done and not self.window and not self.rob

    def next_instruction(self) -> Instruction:
        return self.body[self.pos]

    def advance(self) -> None:
        self.pos += 1
        if self.pos >= len(self.body):
            self.pos = 0
            self.iteration += 1


@dataclass(frozen=True)
class ModuleStats:
    """Occupancy and stall counters from one module run.

    The observability the paper's loop analysis relies on: which unit pools
    a stressmark exercises and which resource hazards throttled it
    ("physical register availability, decode width capabilities,
    token-based scheduling restrictions, and result bus utilization").
    """

    issues_by_unit: dict
    decode_stalls: dict
    decoded_instructions: int
    retired_instructions: int

    def issue_share(self, unit_name: str) -> float:
        """Fraction of all issued ops that went to *unit_name*."""
        total = sum(self.issues_by_unit.values())
        if total == 0:
            return 0.0
        return self.issues_by_unit.get(unit_name, 0) / total


@dataclass(frozen=True)
class ModuleTrace:
    """Result of one module run.

    ``energy_pj``/``sensitivity`` are per-cycle; ``iter_start_cycles`` holds,
    per thread, the decode cycle of each loop iteration's first instruction.
    """

    energy_pj: np.ndarray
    sensitivity: np.ndarray
    iter_start_cycles: tuple[tuple[int, ...], ...]
    cycles: int
    stats: ModuleStats | None = None

    def steady_period(self, thread: int = 0, *, max_group: int = 12) -> float | None:
        """Average steady-state cycles per loop iteration for *thread*.

        Real loops often settle into a repeating *group* of iteration
        spacings rather than a single constant (e.g. 14,15,15,15 when the
        true initiation interval is 14.75 cycles), so this returns a float:
        the mean spacing over the smallest repeating group found in the last
        iterations.  Returns None when no group of size <= *max_group*
        repeats.
        """
        starts = self.iter_start_cycles[thread]
        diffs = [b - a for a, b in zip(starts, starts[1:])]
        for group in range(1, max_group + 1):
            # Verify over several repetitions (not just one) so a short run
            # of equal spacings inside a longer pattern does not fool the
            # detector, while staying short enough to exclude the warm-up.
            window = min(len(diffs), max(12, 3 * group))
            if window < 3 * group:
                continue
            tail = diffs[-window:]
            if all(tail[i] == tail[i - group] for i in range(group, window)):
                return sum(tail[-group:]) / group
        return None

    def periodic_profile(
        self, *, max_group: int = 12
    ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """A verified steady-state period of the module-combined activity.

        Returns ``(energy_pj, sensitivity, period_cycles)`` for one full
        period of the *combined* (all threads) per-cycle activity, or None
        when the run never became periodic (heterogeneous threads that do
        not share a period — the caller then falls back to the raw trace).
        The check is literal: the extracted window must equal the window
        that precedes it, sample for sample.
        """
        starts = self.iter_start_cycles[0]
        for group in range(1, max_group + 1):
            if len(starts) < 2 * group + 2:
                break
            anchor = starts[-1]
            period = anchor - starts[-1 - group]
            if period <= 0 or anchor - 2 * period < 0:
                continue
            current = self.energy_pj[anchor - period : anchor]
            previous = self.energy_pj[anchor - 2 * period : anchor - period]
            if not np.allclose(current, previous, rtol=1e-9, atol=1e-9):
                continue
            sens = self.sensitivity[anchor - period : anchor]
            prev_sens = self.sensitivity[anchor - 2 * period : anchor - period]
            if not np.allclose(sens, prev_sens, rtol=1e-9, atol=1e-9):
                continue
            return current.copy(), sens.copy(), period
        return None


class ModuleSimulator:
    """Runs thread programs on one module of a :class:`ChipConfig`."""

    def __init__(self, config: ChipConfig):
        self.config = config

    def run(
        self,
        programs: list[ThreadProgram],
        *,
        max_iterations: int | None = None,
    ) -> ModuleTrace:
        """Simulate *programs* (one per thread) to completion.

        ``max_iterations`` caps each thread's loop trips below its program's
        own count — callers measuring a steady-state profile only need a few
        dozen iterations, not the M thousands a real run would execute.
        """
        module = self.config.module
        if not 1 <= len(programs) <= module.threads:
            raise SchedulingError(
                f"module supports 1..{module.threads} threads, got {len(programs)}"
            )
        for program in programs:
            self._check_extensions(program)

        threads = []
        for tid, program in enumerate(programs):
            state = _ThreadState(program, self.config, tid)
            if max_iterations is not None:
                state.target_iterations = min(state.target_iterations, max_iterations)
            threads.append(state)

        capacity = max(
            sum(t.target_iterations for t in threads) * (max(len(t.body) for t in threads) + 8) * 4,
            4096,
        )
        energy = np.zeros(capacity)
        sens = np.zeros(capacity)

        fp_pools = {
            Unit.FPU: UnitPool(module.fp_arith_pipes, "fp-arith"),
            Unit.FSIMD: UnitPool(module.fp_simd_pipes, "fp-simd"),
        }
        fp_tokens = TokenPool(module.fp_phys_regs, "fp-prf")
        fp_throttle = (
            PerCycleLimiter(module.fp_throttle, "fp-throttle")
            if module.fp_throttle is not None
            else None
        )

        counters = {
            "issues": {},
            "decode_stalls": {"window": 0, "int_tokens": 0, "fp_tokens": 0},
            "decoded": 0,
            "retired": 0,
        }
        cycle = 0
        last_cycle = 0
        while not all(t.drained for t in threads):
            if cycle >= _MAX_CYCLES:
                raise SchedulingError("simulation exceeded cycle cap")
            if cycle >= capacity:
                energy = np.concatenate([energy, np.zeros(capacity)])
                sens = np.concatenate([sens, np.zeros(capacity)])
                capacity *= 2
            fp_tokens.advance_to(cycle)
            for t in threads:
                t.int_tokens.advance_to(cycle)

            order = threads if cycle % 2 == 0 else list(reversed(threads))
            self._decode_cycle(order, module.decode_width, fp_tokens, energy,
                               cycle, counters)
            issued_any = self._issue_cycle(
                order, fp_pools, fp_tokens, fp_throttle, energy, sens, cycle,
                counters,
            )
            if issued_any or any(
                not t.decode_done and cycle >= t.start_cycle for t in threads
            ):
                last_cycle = cycle
            cycle += 1

        end = max(last_cycle + 1, 1)
        stats = ModuleStats(
            issues_by_unit=dict(counters["issues"]),
            decode_stalls=dict(counters["decode_stalls"]),
            decoded_instructions=counters["decoded"],
            retired_instructions=counters["retired"],
        )
        return ModuleTrace(
            energy_pj=energy[:end],
            sensitivity=sens[:end],
            iter_start_cycles=tuple(tuple(t.iter_start_cycles) for t in threads),
            cycles=end,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _check_extensions(self, program: ThreadProgram) -> None:
        available = self.config.extensions
        for inst in program.kernel.body:
            if not inst.spec.extensions <= available:
                missing = sorted(inst.spec.extensions - available)
                raise SchedulingError(
                    f"{self.config.name} does not support {inst.spec.mnemonic} "
                    f"(missing {missing})"
                )

    def _decode_cycle(self, order, decode_width, fp_tokens, energy,
                      cycle, counters) -> None:
        slots = decode_width
        blocked: set[int] = set()
        while slots > 0:
            progressed = False
            for t in order:
                if slots == 0:
                    break
                if t.tid in blocked or t.decode_done or cycle < t.start_cycle:
                    continue
                inst = t.next_instruction()
                if inst.is_nop:
                    energy[cycle] += inst.spec.energy_pj
                    counters["decoded"] += 1
                    if t.pos == 0:
                        t.iter_start_cycles.append(cycle)
                    t.advance()
                    slots -= 1
                    progressed = True
                    continue
                if len(t.window) >= t.window_capacity:
                    counters["decode_stalls"]["window"] += 1
                    blocked.add(t.tid)
                    continue
                if inst.spec.has_dest:
                    tokens = fp_tokens if inst.spec.is_fp else t.int_tokens
                    if not tokens.try_acquire():
                        key = "fp_tokens" if inst.spec.is_fp else "int_tokens"
                        counters["decode_stalls"][key] += 1
                        blocked.add(t.tid)
                        continue
                    acquired = tokens
                else:
                    acquired = None
                producers = [
                    t.rename[reg]
                    for reg in inst.reads
                    if reg in t.rename
                ]
                record = _InFlight(inst, producers,
                                   is_loop_close=inst.spec is LOOP_CLOSE_SPEC)
                record.token_pool = acquired
                t.window.append(record)
                t.rob.append(record)
                for reg in inst.writes:
                    t.rename[reg] = record
                energy[cycle] += DECODE_ENERGY_PJ
                counters["decoded"] += 1
                if t.pos == 0:
                    t.iter_start_cycles.append(cycle)
                t.advance()
                slots -= 1
                progressed = True
            if not progressed:
                break

    def _issue_cycle(
        self, order, fp_pools, fp_tokens, fp_throttle, energy, sens, cycle,
        counters,
    ) -> bool:
        caches = self.config.caches
        issued_any = False
        for t in order:
            still_waiting: list[_InFlight] = []
            for record in t.window:
                inst = record.inst
                spec = inst.spec
                if not self._deps_ready(record, cycle):
                    still_waiting.append(record)
                    continue
                unit = self._unit_pool(t, fp_pools, spec.unit)
                if unit.free_pipes(cycle) == 0:
                    still_waiting.append(record)
                    continue
                if spec.is_fp and fp_throttle is not None and (
                    fp_throttle.used(cycle) >= fp_throttle.limit
                ):
                    still_waiting.append(record)
                    continue
                if spec.has_dest and t.result_bus.used(cycle) >= t.result_bus.limit:
                    still_waiting.append(record)
                    continue
                # Commit the issue.
                unit.try_issue(cycle, spec.issue_interval)
                if spec.is_fp and fp_throttle is not None:
                    fp_throttle.try_take(cycle)
                if spec.has_dest:
                    t.result_bus.try_take(cycle)
                latency = spec.latency
                extra_energy = 0.0
                if spec.memory:
                    level = CacheLevel(inst.memory_level)
                    latency = max(latency, caches.load_latency(level))
                    extra_energy = caches.access_energy(level)
                record.ready_cycle = cycle + latency
                exec_energy = spec.energy_pj * toggle_factor(inst.data) + extra_energy
                energy[cycle] += exec_energy
                if spec.path_sensitivity > 0:
                    end = record.ready_cycle
                    window = sens[cycle:end]
                    np.maximum(window, spec.path_sensitivity, out=window)
                unit_key = spec.unit.value
                counters["issues"][unit_key] = (
                    counters["issues"].get(unit_key, 0) + 1
                )
                issued_any = True
            t.window = still_waiting
            t.result_bus.forget_before(cycle - 2)
            # In-order retirement: physical-register tokens free only when
            # the op retires behind all older ops (paper Section V.A.5's
            # "physical register availability" hazard).  A slow op at the
            # ROB head holds every younger op's registers live.
            retired = 0
            while (t.rob and retired < t.retire_width
                   and t.rob[0].ready_cycle is not None
                   and t.rob[0].ready_cycle <= cycle):
                record = t.rob.pop(0)
                if record.token_pool is not None:
                    record.token_pool.release_at(cycle + 1)
                counters["retired"] += 1
                retired += 1
        return issued_any

    @staticmethod
    def _deps_ready(record: _InFlight, cycle: int) -> bool:
        for producer in record.producers:
            if producer.ready_cycle is None or producer.ready_cycle > cycle:
                return False
        return True

    @staticmethod
    def _unit_pool(thread: _ThreadState, fp_pools: dict, unit: Unit) -> UnitPool:
        if unit is Unit.IALU:
            return thread.ialu
        if unit is Unit.AGU:
            return thread.agu
        if unit is Unit.IMUL:
            return thread.imul
        pool = fp_pools.get(unit)
        if pool is None:
            raise SchedulingError(f"no unit pool for {unit!r}")
        return pool
