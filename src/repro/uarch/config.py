"""Machine configuration: cores, modules, and whole chips.

The primary testbed mirrors the paper's (Section IV): four AMD Bulldozer
modules, each running two threads through a **shared front end and shared
floating-point unit** but dedicated integer clusters.  The secondary testbed
is a Phenom-II-like chip: four independent single-threaded cores, no FMA4,
and less aggressive power management.

These dataclasses are pure configuration; execution lives in
:mod:`repro.uarch.module` and :mod:`repro.uarch.chip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.power.energy import PowerParameters
from repro.uarch.caches import CacheHierarchy


@dataclass(frozen=True)
class CoreConfig:
    """Per-core (per-thread on Bulldozer) integer cluster resources.

    ``int_alu_count``/``agu_count``/``imul_count`` are the unit pools;
    ``int_phys_regs`` is the rename-register token pool; ``result_buses``
    limits register writebacks per cycle; ``scheduler_window`` is the
    per-thread out-of-order window.
    """

    int_alu_count: int = 2
    agu_count: int = 2
    imul_count: int = 1
    scheduler_window: int = 40
    int_phys_regs: int = 28
    result_buses: int = 4
    retire_width: int = 4

    def __post_init__(self) -> None:
        for name in (
            "int_alu_count",
            "agu_count",
            "imul_count",
            "scheduler_window",
            "int_phys_regs",
            "result_buses",
            "retire_width",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")


@dataclass(frozen=True)
class ModuleConfig:
    """One module: 1–2 threads sharing a front end and an FP unit.

    ``decode_width`` is shared between the module's threads (Bulldozer
    alternates decode between threads).  The shared FP unit has
    ``fp_arith_pipes`` FMAC pipes (FP add/mul/div/FMA) and ``fp_simd_pipes``
    SIMD-integer pipes; together they give the paper's "two threads together
    can only issue four floating point instructions per cycle".
    ``fp_throttle`` statically caps total FP-unit issues per cycle per module
    when set (paper Section V.B's FPU throttling mechanism).
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    threads: int = 2
    decode_width: int = 4
    fp_arith_pipes: int = 2
    fp_simd_pipes: int = 2
    fp_phys_regs: int = 48
    fp_throttle: int | None = None

    def __post_init__(self) -> None:
        if self.threads not in (1, 2):
            raise ConfigurationError("a module runs 1 or 2 threads")
        for name in ("decode_width", "fp_arith_pipes", "fp_simd_pipes",
                     "fp_phys_regs"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.fp_throttle is not None and not (
            1 <= self.fp_throttle <= self.fp_pipe_count
        ):
            raise ConfigurationError(
                "fp_throttle must be between 1 and fp_pipe_count"
            )

    @property
    def fp_pipe_count(self) -> int:
        """Total shared FP-unit issue width (arith + SIMD pipes)."""
        return self.fp_arith_pipes + self.fp_simd_pipes

    def with_fp_throttle(self, limit: int | None) -> "ModuleConfig":
        """Copy with the FPU throttle set (or cleared with None)."""
        return replace(self, fp_throttle=limit)


#: Energy charged per decoded instruction (front-end activity), pJ.
DECODE_ENERGY_PJ = 40.0


@dataclass(frozen=True)
class ChipConfig:
    """A whole processor: modules, clock, supply, ISA level, power model."""

    name: str
    module: ModuleConfig
    module_count: int
    frequency_hz: float
    vdd: float
    power: PowerParameters
    extensions: frozenset[str]
    caches: CacheHierarchy = field(default_factory=CacheHierarchy)

    def __post_init__(self) -> None:
        if self.module_count < 1:
            raise ConfigurationError("module_count must be >= 1")
        if self.frequency_hz <= 0 or self.vdd <= 0:
            raise ConfigurationError("frequency and vdd must be positive")

    @property
    def total_threads(self) -> int:
        return self.module_count * self.module.threads

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    def with_fp_throttle(self, limit: int | None) -> "ChipConfig":
        """Copy of the chip with FPU throttling applied to every module."""
        return replace(self, module=self.module.with_fp_throttle(limit))

    def with_vdd(self, vdd: float) -> "ChipConfig":
        """Copy of the chip at a different supply voltage (failure sweeps)."""
        return replace(self, vdd=vdd)


def bulldozer_chip() -> ChipConfig:
    """The paper's primary testbed: 4 Bulldozer modules, 8 threads, 3.2 GHz."""
    return ChipConfig(
        name="bulldozer",
        module=ModuleConfig(
            core=CoreConfig(),
            threads=2,
            decode_width=4,
            fp_arith_pipes=2,
            fp_simd_pipes=2,
            fp_phys_regs=48,
        ),
        module_count=4,
        frequency_hz=3.2e9,
        vdd=1.2,
        power=PowerParameters(
            leakage_a=1.5,
            idle_clock_a=3.0,
            clock_gating_efficiency=0.85,
        ),
        extensions=frozenset({"sse", "sse2", "sse3", "sse41", "sse42", "avx", "fma4"}),
    )


def phenom_chip() -> ChipConfig:
    """The secondary testbed: 45-nm Phenom II X4 — 4 single-threaded cores.

    No module-level sharing (one thread per "module"), no FMA4/SSE4.1+, a
    narrower FP unit, and much weaker clock gating ("less variation between
    high- and low-power regions because it does not manage power as
    aggressively", paper Section V.C).
    """
    return ChipConfig(
        name="phenom",
        module=ModuleConfig(
            core=CoreConfig(int_alu_count=3, agu_count=2, imul_count=1,
                            scheduler_window=24, int_phys_regs=40),
            threads=1,
            decode_width=3,
            fp_arith_pipes=1,
            fp_simd_pipes=1,
            fp_phys_regs=40,
        ),
        module_count=4,
        frequency_hz=2.8e9,
        vdd=1.3,
        power=PowerParameters(
            leakage_a=2.0,
            idle_clock_a=4.0,
            clock_gating_efficiency=0.40,
        ),
        extensions=frozenset({"sse", "sse2", "sse3"}),
    )
