"""Machine-model substrate: multi-module chips with shared-resource pipelines."""

from repro.uarch.caches import CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.uarch.chip import ChipSimulator
from repro.uarch.config import (
    DECODE_ENERGY_PJ,
    ChipConfig,
    CoreConfig,
    ModuleConfig,
    bulldozer_chip,
    phenom_chip,
)
from repro.uarch.module import LOOP_CLOSE_SPEC, ModuleSimulator, ModuleStats, ModuleTrace

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheLevelSpec",
    "ChipConfig",
    "ChipSimulator",
    "CoreConfig",
    "DECODE_ENERGY_PJ",
    "LOOP_CLOSE_SPEC",
    "ModuleConfig",
    "ModuleSimulator",
    "ModuleStats",
    "ModuleTrace",
    "bulldozer_chip",
    "phenom_chip",
]
