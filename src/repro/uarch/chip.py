"""Chip-level execution: modules → load current.

Modules are electrically independent current sinks on a shared PDN, so chip
current is the superposition of per-module currents plus the idle current of
unused modules.  ``ChipSimulator`` memoises module runs (a GA evaluates the
same homogeneous program on four modules — simulate once, reuse four times)
and converts per-cycle energy into amperes via the chip's
:class:`~repro.power.energy.EnergyModel`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SchedulingError
from repro.isa.kernels import ThreadProgram
from repro.power.energy import EnergyModel
from repro.power.trace import CurrentTrace
from repro.uarch.config import ChipConfig
from repro.uarch.module import ModuleSimulator, ModuleTrace
from repro.validation.invariants import check_module_trace

#: A placement maps each module to the programs on its threads; ``None``
#: entries are idle modules.
Placement = list

class ChipSimulator:
    """Executes thread placements on a chip and produces current traces."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self._module_sim = ModuleSimulator(config)
        self._energy_model = EnergyModel(config.power, config.vdd, config.frequency_hz)
        self._cache: dict[tuple, ModuleTrace] = {}
        #: Telemetry: distinct module simulations actually run, cache
        #: short-circuits, and wall time spent inside the module simulator.
        self.module_runs = 0
        self.module_cache_hits = 0
        self.sim_time_s = 0.0

    @property
    def dt(self) -> float:
        """Sample interval of produced traces (one clock cycle)."""
        return self.config.cycle_time_s

    @property
    def energy_model(self) -> EnergyModel:
        return self._energy_model

    def run_module(
        self,
        programs: tuple[ThreadProgram, ...] | list[ThreadProgram],
        *,
        max_iterations: int | None = None,
    ) -> ModuleTrace:
        """Run one module (memoised on the exact program tuple)."""
        key = (tuple(programs), max_iterations)
        trace = self._cache.get(key)
        if trace is None:
            start = time.perf_counter()
            trace = self._module_sim.run(list(programs), max_iterations=max_iterations)
            self.sim_time_s += time.perf_counter() - start
            self.module_runs += 1
            # Guard once per fresh simulation; cache hits re-serve a trace
            # that already passed.
            check_module_trace(trace)
            self._cache[key] = trace
        else:
            self.module_cache_hits += 1
        return trace

    def run_placement(
        self,
        placement: Placement,
        *,
        max_iterations: int | None = None,
    ) -> list[ModuleTrace | None]:
        """Run every module of a placement; idle modules yield None."""
        if len(placement) != self.config.module_count:
            raise SchedulingError(
                f"placement must cover {self.config.module_count} modules"
            )
        results: list[ModuleTrace | None] = []
        for programs in placement:
            if not programs:
                results.append(None)
            else:
                results.append(
                    self.run_module(tuple(programs), max_iterations=max_iterations)
                )
        return results

    # ------------------------------------------------------------------
    # Energy -> current
    # ------------------------------------------------------------------
    def module_current(
        self, energy_pj: np.ndarray, *, active_threads: int
    ) -> np.ndarray:
        """Per-cycle current (A) of one module from its energy trace.

        Leakage scales with the module's core count; the clock-tree term is
        gated on zero-energy cycles exactly like the single-core model.
        """
        if active_threads < 1:
            raise SchedulingError("an active module has at least one thread")
        em = self._energy_model
        p = self.config.power
        dynamic = (
            np.asarray(energy_pj, dtype=np.float64)
            * 1e-12
            / (self.config.vdd * self.config.cycle_time_s)
        )
        clock = np.full_like(dynamic, active_threads * p.idle_clock_a)
        gated = active_threads * p.idle_clock_a * (1.0 - p.clock_gating_efficiency)
        clock[dynamic == 0.0] = gated
        return active_threads * p.leakage_a + clock + dynamic

    def idle_module_current(self) -> float:
        """Current of a fully idle, clock-gated module (A)."""
        return self.config.module.threads * self._energy_model.idle_current()

    def chip_current(
        self,
        module_currents: list[np.ndarray | None],
        *,
        length: int | None = None,
    ) -> CurrentTrace:
        """Superpose per-module current arrays into the chip load trace.

        ``None`` entries (idle modules) contribute their constant idle
        current.  Arrays shorter than the final length are padded with the
        idle level (the module went quiet).
        """
        if len(module_currents) != self.config.module_count:
            raise SchedulingError("one entry per module required")
        arrays = [c for c in module_currents if c is not None]
        if length is None:
            if not arrays:
                raise SchedulingError("need at least one active module or a length")
            length = max(len(a) for a in arrays)
        idle = self.idle_module_current()
        total = np.zeros(length)
        for current in module_currents:
            if current is None:
                total += idle
                continue
            n = min(len(current), length)
            total[:n] += current[:n]
            if n < length:
                total[n:] += idle
        return CurrentTrace(total, self.dt)
