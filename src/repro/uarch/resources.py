"""Back-end resource trackers used by the pipeline scheduler.

These are the structural hazards the paper's loop analysis names explicitly
(Section V.A.5): "resource hazards such as physical register availability,
decode width capabilities, token-based scheduling restrictions, and result
bus utilization impact the final outcome".
"""

from __future__ import annotations

from repro.errors import SchedulingError


class TokenPool:
    """A counted resource pool with deferred releases (physical registers).

    ``acquire`` takes a token immediately; ``release_at`` schedules the
    token's return at a future cycle, applied by ``advance_to``.
    """

    def __init__(self, capacity: int, name: str = "tokens"):
        if capacity < 1:
            raise SchedulingError(f"{name}: capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._releases: dict[int, int] = {}

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def try_acquire(self) -> bool:
        """Take one token if available; return success."""
        if self._in_use >= self.capacity:
            return False
        self._in_use += 1
        return True

    def release_at(self, cycle: int) -> None:
        """Schedule one token to come back at *cycle*."""
        self._releases[cycle] = self._releases.get(cycle, 0) + 1

    def advance_to(self, cycle: int) -> None:
        """Apply all releases scheduled at or before *cycle*."""
        due = [c for c in self._releases if c <= cycle]
        for c in due:
            self._in_use -= self._releases.pop(c)
        if self._in_use < 0:
            raise SchedulingError(f"{self.name}: released more tokens than acquired")


class UnitPool:
    """A pool of identical execution pipes with per-pipe busy times.

    Fully pipelined ops occupy a pipe for one cycle; long ops (dividers)
    block a pipe for their issue interval.
    """

    def __init__(self, count: int, name: str = "unit"):
        if count < 1:
            raise SchedulingError(f"{name}: need at least one pipe")
        self.name = name
        self._busy_until = [0] * count

    def try_issue(self, cycle: int, occupy_cycles: int) -> bool:
        """Claim a free pipe at *cycle* for *occupy_cycles*; return success."""
        if occupy_cycles < 1:
            raise SchedulingError(f"{self.name}: occupy_cycles must be >= 1")
        for idx, busy_until in enumerate(self._busy_until):
            if busy_until <= cycle:
                self._busy_until[idx] = cycle + occupy_cycles
                return True
        return False

    def free_pipes(self, cycle: int) -> int:
        """Number of pipes idle at *cycle*."""
        return sum(1 for b in self._busy_until if b <= cycle)


class PerCycleLimiter:
    """Limits events per cycle (result buses, FP throttle).

    Stateless across cycles except a (cycle → count) map; ``try_take``
    increments the count for a cycle if under the limit.
    """

    def __init__(self, limit: int, name: str = "limiter"):
        if limit < 1:
            raise SchedulingError(f"{name}: limit must be >= 1")
        self.limit = limit
        self.name = name
        self._counts: dict[int, int] = {}

    def try_take(self, cycle: int) -> bool:
        """Reserve one slot in *cycle* if the limit allows."""
        used = self._counts.get(cycle, 0)
        if used >= self.limit:
            return False
        self._counts[cycle] = used + 1
        return True

    def used(self, cycle: int) -> int:
        return self._counts.get(cycle, 0)

    def forget_before(self, cycle: int) -> None:
        """Drop bookkeeping for cycles before *cycle* (bounded memory)."""
        stale = [c for c in self._counts if c < cycle]
        for c in stale:
            del self._counts[c]
