"""The ``fleet`` command family: run, inspect, and report scenario fleets."""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.cli._common import (
    EXIT_OK,
    _add_fault_args,
    _fault_policy,
    _observers,
    _shutdown_coordinator,
    _tracing_scope,
)
from repro.errors import CheckpointError, ConfigurationError
from repro.fleet.matrix import ScenarioMatrix, load_spec
from repro.fleet.orchestrator import FLEET_FILE, FleetOrchestrator
from repro.fleet.report import REPORT_FILE, FleetReport, report_from_payload
from repro.fleet.shard import load_result

_NO_MATRIX = (
    "fleet run needs a scenario matrix: --spec FILE, --matrix axis=v1,v2 "
    "(repeatable), or --resume DIR"
)


def _build_orchestrator(args, stop_check) -> tuple:
    """(orchestrator, jsonl observer) from the run flags."""
    observers, jsonl = _observers(args)
    supervision = {
        "shard_timeout_s": args.shard_timeout,
        "shard_retries": args.shard_retries,
        "stop_check": stop_check,
    }
    if args.max_pool_rebuilds is not None:
        supervision["max_pool_rebuilds"] = args.max_pool_rebuilds
    if args.resume is not None:
        orchestrator = FleetOrchestrator.resume(
            args.resume,
            workers=args.workers,
            observers=observers,
            registry_dir=args.registry,
            **supervision,
        )
        return orchestrator, jsonl
    options: dict = {}
    if args.spec is not None:
        matrix, options = load_spec(args.spec)
    elif args.matrix:
        matrix = ScenarioMatrix.from_cli(args.matrix)
    else:
        raise ConfigurationError(_NO_MATRIX)
    if args.dir is None:
        raise ConfigurationError("fleet run needs --dir for the fleet state")
    workers = args.workers
    if workers is None:
        workers = int(options.get("workers", 2))
    failure_voltage = args.failure_voltage or bool(options.get("failure_voltage", False))
    registry = args.registry
    if registry is None and options.get("registry"):
        registry = str(options["registry"])
    orchestrator = FleetOrchestrator(
        matrix,
        args.dir,
        workers=workers,
        qualify=args.qualify or bool(options.get("qualify", False)),
        failure_voltage=failure_voltage,
        fault_policy=_fault_policy(args),
        observers=observers,
        registry_dir=registry,
        **supervision,
    )
    return orchestrator, jsonl


def cmd_fleet_run(args) -> int:
    coordinator = _shutdown_coordinator(args, [])
    orchestrator, jsonl = _build_orchestrator(args, coordinator.stop_requested)
    coordinator.observers.extend(orchestrator.observers)
    scenarios = len(orchestrator.scenarios)
    workers = orchestrator.workers
    print(f"fleet: {scenarios} scenario(s), {workers} worker(s) -> {orchestrator.fleet_dir}")
    observers = list(orchestrator.observers)
    try:
        with _tracing_scope(args, observers), coordinator:
            report = orchestrator.run()
    finally:
        if jsonl is not None:
            jsonl.close()
    print(f"report: {orchestrator.fleet_dir / REPORT_FILE}")
    if args.telemetry_out:
        _export_fleet_telemetry(args.telemetry_out, orchestrator.fleet_dir)
    _print_summary(report)
    return report.exit_code


def _export_fleet_telemetry(trace_path, fleet_dir: Path) -> None:
    """Render the campaign trace as ``telemetry.md`` next to the report."""
    from repro.obs import analyze_trace, render_markdown

    try:
        analysis = analyze_trace(trace_path)
    except (ConfigurationError, OSError) as error:
        print(f"telemetry export skipped: {error}", file=sys.stderr)
        return
    out = fleet_dir / "telemetry.md"
    out.write_text(render_markdown(
        analysis, title=f"Fleet telemetry: {fleet_dir.name}"
    ))
    print(f"telemetry: {out}")


def _print_summary(report: FleetReport) -> None:
    ok = len(report.ok_shards)
    failed = len(report.failed_shards)
    print(f"shards: {ok} ok, {failed} failed, {len(report.missing)} missing")
    for key, result in report.best_per_platform().items():
        droop = result.droop_v or 0.0
        print(f"best[{key}]: {result.scenario_id} ({droop * 1e3:.1f} mV droop)")
    for result in report.failed_shards:
        line = f"failed: {result.scenario_id} exit {result.exit_code}: {result.error}"
        print(line, file=sys.stderr)


def _fleet_dir(args) -> Path:
    directory = Path(args.dir)
    meta_path = directory / FLEET_FILE
    if not meta_path.exists():
        msg = f"no fleet meta at {meta_path} (was this directory written by `repro fleet run`?)"
        raise CheckpointError(msg)
    return directory


def cmd_fleet_status(args) -> int:
    directory = _fleet_dir(args)
    orchestrator = FleetOrchestrator.resume(directory)
    done = 0
    for scenario in orchestrator.scenarios:
        shard_dir = orchestrator.shard_dir(scenario)
        result = load_result(shard_dir)
        if result is not None:
            done += 1
            droop = result.droop_v or 0.0
            line = f"ok      {scenario.scenario_id}  {droop * 1e3:.1f} mV"
        elif (shard_dir / "state.json").exists():
            generation = _banked_generation(shard_dir / "state.json")
            line = f"partial {scenario.scenario_id}  generation {generation} banked"
        else:
            line = f"pending {scenario.scenario_id}"
        print(line)
    print(f"{done}/{len(orchestrator.scenarios)} shard(s) complete")
    return EXIT_OK


def _banked_generation(state_path: Path):
    try:
        return json.loads(state_path.read_text()).get("generation", "?")
    except (OSError, json.JSONDecodeError):
        return "?"


def cmd_fleet_report(args) -> int:
    directory = _fleet_dir(args)
    report_path = directory / REPORT_FILE
    if args.rebuild or not report_path.exists():
        orchestrator = FleetOrchestrator.resume(directory)
        report = orchestrator.collect_report()
        orchestrator.write_report(report)
    else:
        try:
            report = report_from_payload(json.loads(report_path.read_text()))
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(f"cannot read fleet report {report_path}: {error}") from error
    if args.md_out:
        Path(args.md_out).write_text(report.to_markdown())
    else:
        print(report.to_markdown(), end="")
    if args.check:
        return report.exit_code
    return EXIT_OK


def register(sub) -> None:
    fleet = sub.add_parser(
        "fleet",
        help="run a scenario matrix as a sharded, resumable fleet",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    run = fleet_sub.add_parser("run", help="expand a scenario matrix and run every shard")
    source = run.add_mutually_exclusive_group()
    source.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="TOML/JSON fleet spec with a [matrix] table of axes and an optional [fleet] table (workers/qualify/failure_voltage)",
    )
    source.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume the fleet in DIR: banked shards are kept, half-run shards continue from their campaign checkpoint, and the final report is bit-identical to an uninterrupted run",
    )
    run.add_argument(
        "--matrix",
        action="append",
        default=[],
        metavar="AXIS=V1,V2",
        help="matrix axis values (repeatable), e.g. --matrix chip=bulldozer,phenom --matrix threads=2,4; axes: chip, pdn, threads, budget (POPxGEN), mode, seed",
    )
    run.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="fleet state directory (meta, per-shard checkpoints, report)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="global worker budget: how many shards run concurrently (default: the spec's fleet.workers, else 2; 1 = in-process)",
    )
    run.add_argument(
        "--qualify",
        action="store_true",
        help="qualify every shard's winner under perturbations",
    )
    run.add_argument(
        "--failure-voltage",
        action="store_true",
        help="sweep each winner's voltage-at-failure (Table 3 column)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="narrate shard and fleet progress to stderr",
    )
    run.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="append per-event telemetry as JSON lines to PATH",
    )
    run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="hard wall-clock deadline per running shard: a hung shard's "
             "worker pool is killed and respawned, innocent shards resume "
             "from their checkpoints, and the hung shard is retried "
             "(--shard-retries) before being declared failed",
    )
    run.add_argument(
        "--shard-retries", type=int, default=1, metavar="N",
        help="hang/crash retries per shard before it is declared failed "
             "(default 1; retries resume from the shard checkpoint)",
    )
    run.add_argument(
        "--max-pool-rebuilds", type=int, default=None, metavar="N",
        help="total shard-pool respawns (hangs + crashes) tolerated per "
             "fleet run before the host is declared systemically unstable "
             "(default 5)",
    )
    run.add_argument(
        "--registry", default=None, metavar="DIR",
        help="publish every OK shard's winner into the stressmark registry "
             "at DIR once the report is banked (the fleet directory name "
             "becomes the campaign label; persisted in fleet.json, so a "
             "resumed fleet keeps publishing)",
    )
    run.add_argument(
        "--max-wall-clock", type=float, default=None, metavar="SECONDS",
        help="stop the fleet gracefully after this much wall time: drain "
             "in-flight shards to their final checkpoints, write the "
             "report, exit 75 (same path as SIGTERM)",
    )
    _add_fault_args(run)
    run.set_defaults(fn=cmd_fleet_run)

    status = fleet_sub.add_parser("status", help="show per-shard progress of a fleet directory")
    status.add_argument("dir", metavar="DIR")
    status.set_defaults(fn=cmd_fleet_status)

    report = fleet_sub.add_parser(
        "report",
        help="print (or rebuild) a fleet's cross-scenario report",
    )
    report.add_argument("dir", metavar="DIR")
    report.add_argument(
        "--rebuild",
        action="store_true",
        help="re-aggregate from the banked shard results instead of reading report.json",
    )
    report.add_argument(
        "--md-out",
        default=None,
        metavar="PATH",
        help="write the markdown report to PATH instead of stdout",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="exit with the report's aggregate exit code (CI gating)",
    )
    report.set_defaults(fn=cmd_fleet_report)
