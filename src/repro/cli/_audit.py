"""The ``audit`` command: the full closed loop, checkpointable and batched."""

from __future__ import annotations

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.checkpoint import CampaignCheckpoint, validate_campaign_meta
from repro.core.ga import GaConfig
from repro.core.qualify import QualificationCheckpoint, QualifyConfig
from repro.core.telemetry import TelemetryCollector
from repro.errors import CheckpointError
from repro.isa.encoder import encode_program

from repro.cli._common import (
    _add_batch_arg,
    _add_campaign_args,
    _add_registry_args,
    _add_supervision_args,
    _add_telemetry_args,
    _batched,
    _fault_policy,
    _make_supervised_executor,
    _observers,
    _platform_factory,
    _publish_record,
    _shutdown_coordinator,
    _tracing_scope,
)


def cmd_audit(args) -> int:
    from repro.cli import _platform

    checkpoint = None
    resume = False
    if args.resume is not None:
        # The stored campaign meta is authoritative: the run continues with
        # the exact chip/config it started with, so the same seeds keep
        # producing the same stressmark no matter what flags accompany
        # --resume.
        checkpoint = CampaignCheckpoint(args.resume)
        meta = validate_campaign_meta(checkpoint.read_meta(),
                                      path=checkpoint.meta_path)
        resume = True
        args.chip = meta["chip"]
        args.throttle = meta["throttle"]
        args.threads = meta["threads"]
        args.mode = meta["mode"]
        args.population = meta["population"]
        args.generations = meta["generations"]
        args.seed = meta["seed"]
    elif args.checkpoint_dir is not None:
        checkpoint = CampaignCheckpoint(args.checkpoint_dir)
        checkpoint.write_meta({
            "chip": args.chip,
            "throttle": args.throttle,
            "threads": args.threads,
            "mode": args.mode,
            "population": args.population,
            "generations": args.generations,
            "seed": args.seed,
        })
    platform = _batched(_platform(args.chip, args.throttle), args)
    mode = StressmarkMode(args.mode)
    config = AuditConfig(
        threads=args.threads,
        mode=mode,
        ga=GaConfig(population_size=args.population,
                    generations=args.generations, seed=args.seed),
    )
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = _make_supervised_executor(args, observers)
    runner = AuditRunner(
        platform,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip, args.throttle),
        fault_policy=_fault_policy(args),
    )
    qualify_config = None
    qualify_checkpoint = None
    if args.qualify:
        qualify_config = QualifyConfig(seed=args.seed)
        if checkpoint is not None:
            qualify_checkpoint = QualificationCheckpoint(checkpoint.directory)
    if resume:
        state = checkpoint.load()
        if state is None:
            raise CheckpointError(
                f"nothing to resume in {args.resume!r}: no checkpointed "
                "generation yet"
            )
        if state.salvaged:
            print(f"checkpoint salvage: {state.salvage_reason}")
        print(f"resuming campaign from generation {state.ga.generation} "
              f"({state.ga.evaluations} evaluations banked)")
    coordinator = _shutdown_coordinator(args, observers)
    try:
        with _tracing_scope(args, observers), coordinator:
            result = runner.run(checkpoint=checkpoint, resume=resume,
                                qualify=qualify_config,
                                qualify_checkpoint=qualify_checkpoint,
                                stop=coordinator.stop_requested)
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(f"resonance: {result.resonance.resonance_hz / 1e6:.1f} MHz")
    print(f"GA evaluations: {result.ga_result.evaluations}")
    print(f"{result.name} droop at {args.threads}T: "
          f"{result.max_droop_v * 1e3:.1f} mV")
    if result.qualification is not None:
        qual = result.qualification
        print("\n" + qual.chosen_report.summary_table())
        if qual.demoted:
            print(f"GA winner demoted as {qual.winner_report.verdict}; "
                  f"promoted {qual.chosen_report.stressmark} "
                  f"({qual.verdict}, robustness "
                  f"{qual.chosen_report.robustness:.2f})")
        else:
            print(f"qualification: {qual.verdict} "
                  f"(robustness {qual.chosen_report.robustness:.2f})")
    if args.registry is not None:
        from repro.registry import (
            platform_descriptor,
            provenance_stamp,
            record_from_audit,
            telemetry_summary,
        )

        record = record_from_audit(
            result,
            platform=platform,
            descriptor=platform_descriptor(args.chip, throttle=args.throttle),
            seed=args.seed,
            provenance=provenance_stamp(
                campaign=args.registry_campaign,
                extra={"telemetry": telemetry_summary(collector)},
            ),
        )
        _publish_record(args, record, observers)
    asm = encode_program(result.program(), name=result.name.lower().replace("-", "_"))
    if args.asm_out:
        with open(args.asm_out, "w") as handle:
            handle.write(asm)
        print(f"stressmark written to {args.asm_out}")
    else:
        print("\n" + asm)
    if args.telemetry:
        print("\n" + collector.summary_table(platform.stats()))
    return 0


def register(sub) -> None:
    audit = sub.add_parser("audit", help="run the full AUDIT closed loop")
    audit.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    audit.add_argument("--threads", type=int, default=4)
    audit.add_argument("--mode", default="resonant",
                       choices=("resonant", "excitation"))
    audit.add_argument("--throttle", type=int, default=None,
                       help="enable the FPU throttle at this issue limit")
    audit.add_argument("--population", type=int, default=16)
    audit.add_argument("--generations", type=int, default=10)
    audit.add_argument("--seed", type=int, default=1)
    audit.add_argument("--asm-out", default=None,
                       help="write the winning stressmark as NASM to a file")
    _add_telemetry_args(audit)
    _add_batch_arg(audit)
    _add_campaign_args(audit)
    _add_supervision_args(audit)
    _add_registry_args(audit)
    audit.add_argument("--telemetry", action="store_true",
                       help="print the run-telemetry summary table")
    audit.add_argument(
        "--qualify", action="store_true",
        help="qualify the GA winner under perturbations (jitter seeds, SMT "
             "offsets, supply span, PDN tolerances); an ARTIFACT winner is "
             "demoted for the best-qualified runner-up")
    audit.set_defaults(fn=cmd_audit)
