"""The ``registry`` command family: list, query, verify, share records."""

from __future__ import annotations

import json

from repro.analysis.report import format_table
from repro.errors import EXIT_FAILURE, EXIT_OK, RegistryError

from repro.cli._common import _observers

_COMPARE_HELP = (
    "a record id (or unique prefix), or campaign:LABEL for a whole campaign"
)


def _registry(args, observers=()):
    from repro.registry import StressmarkRegistry

    return StressmarkRegistry(args.dir, observers=observers)


def _entry_rows(entries) -> list[list[str]]:
    rows = []
    for entry in entries:
        droop = entry.get("droop_v")
        rows.append([
            entry["record_id"][:12],
            entry.get("kind", "?"),
            entry.get("name", "?"),
            f"{entry.get('chip', '?')}"
            + (f" x{entry['pdn_scale']:g}" if entry.get("pdn_scale", 1.0) != 1.0
               else ""),
            str(entry.get("threads", "?")),
            (f"{droop * 1e3:.1f} mV"
             if isinstance(droop, (int, float)) else "-"),
            entry.get("verdict") or "-",
            entry.get("campaign") or "-",
        ])
    return rows


def _print_entries(entries) -> None:
    if not entries:
        print("no records")
        return
    print(format_table(
        ["id", "kind", "name", "platform", "threads", "droop", "verdict",
         "campaign"],
        _entry_rows(entries),
    ))
    print(f"{len(entries)} record(s)")


def cmd_registry_list(args) -> int:
    registry = _registry(args)
    _print_entries(registry.query(
        kind=args.kind, chip=args.chip, verdict=args.verdict,
        campaign=args.campaign,
    ))
    return EXIT_OK


def cmd_registry_show(args) -> int:
    registry = _registry(args)
    record = registry.get(args.ref)
    print(json.dumps(record.to_payload(), indent=2, sort_keys=True))
    return EXIT_OK


def cmd_registry_query(args) -> int:
    registry = _registry(args)
    entries = registry.query(
        kind=args.kind, chip=args.chip, verdict=args.verdict,
        campaign=args.campaign, platform_hash=args.platform_hash,
        min_droop_v=args.min_droop, max_droop_v=args.max_droop,
    )
    if args.ids_only:
        for entry in entries:
            print(entry["record_id"])
    else:
        _print_entries(entries)
    return EXIT_OK


def cmd_registry_verify(args) -> int:
    observers, jsonl = _observers(args)
    registry = _registry(args, observers)
    try:
        from repro.registry import verify_record

        record = registry.get(args.ref)
        print(f"verifying {record.record_id[:12]} ({record.kind}/{record.name}, "
              f"{record.platform.get('chip')}, {record.threads}T)")
        result = verify_record(record, observers=observers)
    finally:
        if jsonl is not None:
            jsonl.close()
    print(result.describe())
    print(f"replay wall time: {result.wall_s:.2f}s")
    return EXIT_OK if result.ok else EXIT_FAILURE


def cmd_registry_compare(args) -> int:
    from repro.registry import (
        compare_campaigns,
        compare_records,
        render_campaign_comparison,
        render_record_comparison,
    )

    registry = _registry(args)
    a_campaign = args.a.startswith("campaign:")
    b_campaign = args.b.startswith("campaign:")
    if a_campaign != b_campaign:
        raise RegistryError(
            "compare needs two records or two campaigns, not one of each"
        )
    if a_campaign:
        diff = compare_campaigns(
            registry,
            args.a.removeprefix("campaign:"),
            args.b.removeprefix("campaign:"),
        )
        print(render_campaign_comparison(diff))
        return EXIT_OK
    rows = compare_records(registry.get(args.a), registry.get(args.b))
    print(render_record_comparison(rows))
    return EXIT_OK


def cmd_registry_export(args) -> int:
    observers, jsonl = _observers(args)
    registry = _registry(args, observers)
    try:
        from repro.registry import export_records

        exported = export_records(
            registry, args.out, refs=args.id or None, observers=observers,
        )
    finally:
        if jsonl is not None:
            jsonl.close()
    print(f"exported {len(exported)} record(s) -> {args.out}")
    return EXIT_OK


def cmd_registry_import(args) -> int:
    observers, jsonl = _observers(args)
    registry = _registry(args, observers)
    try:
        from repro.registry import import_archive

        outcome = import_archive(registry, args.archive, observers=observers)
    finally:
        if jsonl is not None:
            jsonl.close()
    print(f"imported {len(outcome.imported)} new record(s), "
          f"{len(outcome.deduped)} already present")
    return EXIT_OK


def register(sub) -> None:
    registry = sub.add_parser(
        "registry",
        help="the stressmark library: list, query, verify, and share "
             "published results",
    )
    registry_sub = registry.add_subparsers(dest="registry_command",
                                           required=True)

    def add(name, fn, help_text, telemetry=False):
        parser = registry_sub.add_parser(name, help=help_text)
        parser.add_argument("dir", metavar="DIR",
                            help="registry directory")
        if telemetry:
            from repro.cli._common import _add_telemetry_args

            _add_telemetry_args(parser)
        parser.set_defaults(fn=fn)
        return parser

    lst = add("list", cmd_registry_list, "list records (newest last)")
    for parser in (lst,):
        parser.add_argument("--kind", default=None,
                            choices=("audit", "qualify", "fleet"))
        parser.add_argument("--chip", default=None,
                            choices=("bulldozer", "phenom"))
        parser.add_argument("--verdict", default=None,
                            choices=("PASS", "FRAGILE", "ARTIFACT"))
        parser.add_argument("--campaign", default=None, metavar="LABEL")

    show = add("show", cmd_registry_show, "print one record as JSON")
    show.add_argument("ref", metavar="ID",
                      help="record id or unique prefix")

    query = add("query", cmd_registry_query,
                "filter records by platform hash, verdict, droop range")
    query.add_argument("--kind", default=None,
                       choices=("audit", "qualify", "fleet"))
    query.add_argument("--chip", default=None,
                       choices=("bulldozer", "phenom"))
    query.add_argument("--verdict", default=None,
                       choices=("PASS", "FRAGILE", "ARTIFACT"))
    query.add_argument("--campaign", default=None, metavar="LABEL")
    query.add_argument("--platform-hash", default=None, metavar="HASH",
                       help="exact platform configuration hash")
    query.add_argument("--min-droop", type=float, default=None,
                       metavar="VOLTS", help="minimum recorded droop")
    query.add_argument("--max-droop", type=float, default=None,
                       metavar="VOLTS", help="maximum recorded droop")
    query.add_argument("--ids-only", action="store_true",
                       help="print full record ids, one per line")

    verify = add("verify", cmd_registry_verify,
                 "re-measure a stored record; the droop must be "
                 "bit-identical to the recorded value", telemetry=True)
    verify.add_argument("ref", metavar="ID",
                        help="record id or unique prefix")

    compare = add("compare", cmd_registry_compare,
                  "per-axis deltas between two records or two campaigns")
    compare.add_argument("a", metavar="A", help=_COMPARE_HELP)
    compare.add_argument("b", metavar="B", help=_COMPARE_HELP)

    export = add("export", cmd_registry_export,
                 "write records to a portable tarball", telemetry=True)
    export.add_argument("out", metavar="TARBALL",
                        help="output archive path (.tar.gz)")
    export.add_argument("--id", action="append", default=[], metavar="REF",
                        help="export only this record (repeatable; "
                             "default: all)")

    imp = add("import", cmd_registry_import,
              "publish a tarball's records into the registry",
              telemetry=True)
    imp.add_argument("archive", metavar="TARBALL",
                     help="archive produced by `repro registry export`")
