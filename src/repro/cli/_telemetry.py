"""The ``telemetry`` command family: analyze, compare, export traces.

Operates on the JSONL traces that ``--telemetry-out`` appends: ``analyze``
answers "where did the campaign spend its time" from the reconstructed
span tree, ``compare`` gates two replays of one seeded campaign on their
deterministic counts (the timing ratios are informational — CI machines
do not share a clock), and ``export`` renders the fleet-report-style
markdown summary.
"""

from __future__ import annotations

from pathlib import Path

from repro.cli._common import EXIT_FAILURE, EXIT_OK
from repro.obs import analyze_trace, compare_traces, render_analysis, render_markdown


def cmd_telemetry_analyze(args) -> int:
    analysis = analyze_trace(args.trace)
    if args.md:
        print(render_markdown(analysis, top=args.top), end="")
    else:
        print(render_analysis(analysis, top=args.top), end="")
    return EXIT_OK


def cmd_telemetry_compare(args) -> int:
    comparison = compare_traces(args.baseline, args.current)
    print(comparison.render(), end="")
    if args.check and not comparison.ok:
        return EXIT_FAILURE
    return EXIT_OK


def cmd_telemetry_export(args) -> int:
    analysis = analyze_trace(args.trace)
    title = "Telemetry report"
    if args.campaign:
        title = f"Telemetry report: {args.campaign}"
    markdown = render_markdown(analysis, title=title, top=args.top)
    if args.md_out:
        Path(args.md_out).write_text(markdown)
        print(f"telemetry report written to {args.md_out}")
    else:
        print(markdown, end="")
    return EXIT_OK


def register(sub) -> None:
    telemetry = sub.add_parser(
        "telemetry",
        help="analyze, compare, and export --telemetry-out JSONL traces",
    )
    telemetry_sub = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )

    analyze = telemetry_sub.add_parser(
        "analyze",
        help="span-tree breakdown of one trace: self time per span kind, "
             "hot spans, cache and fault rollups",
    )
    analyze.add_argument("trace", metavar="TRACE")
    analyze.add_argument("--top", type=int, default=10, metavar="N",
                         help="how many individual hot spans to list")
    analyze.add_argument("--md", action="store_true",
                         help="render markdown instead of text tables")
    analyze.set_defaults(fn=cmd_telemetry_analyze)

    compare = telemetry_sub.add_parser(
        "compare",
        help="compare two traces: deterministic counts must match, "
             "timings are informational",
    )
    compare.add_argument("baseline", metavar="BASELINE")
    compare.add_argument("current", metavar="CURRENT")
    compare.add_argument(
        "--check", action="store_true",
        help="exit 1 when any deterministic count differs (CI gating)")
    compare.set_defaults(fn=cmd_telemetry_compare)

    export = telemetry_sub.add_parser(
        "export",
        help="render one trace as a markdown telemetry report",
    )
    export.add_argument("trace", metavar="TRACE")
    export.add_argument("--md-out", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    export.add_argument("--campaign", default="", metavar="LABEL",
                        help="campaign label for the report title")
    export.add_argument("--top", type=int, default=10, metavar="N",
                        help="how many individual hot spans to list")
    export.set_defaults(fn=cmd_telemetry_export)
