"""Standalone tooling commands: ``sweep``, ``bench-evals``, ``netlist``."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.audit import AuditConfig, AuditRunner
from repro.core.engine import make_executor
from repro.core.ga import GaConfig
from repro.core.resonance import find_resonance
from repro.core.telemetry import TelemetryCollector
from repro.isa.opcodes import default_table

from repro.cli._common import (
    _add_batch_arg,
    _add_telemetry_args,
    _batched,
    _observers,
    _platform_factory,
)


def cmd_sweep(args) -> int:
    from repro.cli import _platform

    platform = _platform(args.chip)
    sweep = find_resonance(platform, default_table(), threads=1,
                           period_candidates=list(range(8, 133, 4)))
    rows = [
        [p.period_cycles if p.period_cycles is not None else "-",
         f"{p.droop_v * 1e3:.1f} mV"]
        for p in sweep.points
    ]
    print(format_table(["loop period (cycles)", "max droop"], rows,
                       title=f"resonance sweep on {args.chip}"))
    print(f"\nresonance: {sweep.resonance_hz / 1e6:.1f} MHz "
          f"({sweep.best_period_cycles} cycles)")
    return 0


def cmd_bench_evals(args) -> int:
    """A short AUDIT loop instrumented end to end: the perf canary.

    Prints the telemetry summary table (evals/sec, cache hit rates, module
    simulator vs. PDN-solve time split) so evaluation-path regressions are
    observable from the command line.
    """
    from repro.cli import _platform

    platform = _batched(_platform(args.chip), args)
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    config = AuditConfig(
        threads=args.threads,
        ga=GaConfig(population_size=args.population,
                    generations=args.generations, seed=args.seed,
                    stagnation_patience=max(6, args.generations)),
    )
    runner = AuditRunner(
        platform,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip),
    )
    try:
        result = runner.run()
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(f"{result.name} droop at {args.threads}T: "
          f"{result.max_droop_v * 1e3:.1f} mV "
          f"({result.ga_result.evaluations} evaluations, "
          f"executor: {executor.name})")
    print("\n" + collector.summary_table(platform.stats()))
    return 0


def cmd_netlist(args) -> int:
    from repro.cli import _platform
    from repro.pdn.netlist import export_netlist
    from repro.workloads.stressmarks import a_res_canned, stressmark_program

    platform = _platform(args.chip)
    pool = default_table().supported_on(platform.chip.extensions)
    program = stressmark_program(a_res_canned(pool))
    measurement = platform.measure_program(program, args.threads)
    load = measurement.current.tile(args.periods)
    deck = export_netlist(
        platform.pdn, load,
        title=f"A-Res {args.threads}T current profile on {args.chip}",
    )
    with open(args.out, "w") as handle:
        handle.write(deck)
    print(f"HSPICE deck ({len(load)} samples, "
          f"{load.duration_s * 1e9:.0f} ns) written to {args.out}")
    return 0


def register_sweep(sub) -> None:
    sweep = sub.add_parser("sweep", help="run the resonance-frequency sweep")
    sweep.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    sweep.set_defaults(fn=cmd_sweep)


def register_bench(sub) -> None:
    bench = sub.add_parser(
        "bench-evals",
        help="run a short AUDIT loop and print the telemetry summary "
             "(evals/sec, cache hit rates, simulator vs PDN time split)",
    )
    bench.add_argument("--chip", default="bulldozer",
                       choices=("bulldozer", "phenom"))
    bench.add_argument("--threads", type=int, default=4)
    bench.add_argument("--population", type=int, default=12)
    bench.add_argument("--generations", type=int, default=4)
    bench.add_argument("--seed", type=int, default=1)
    _add_telemetry_args(bench)
    _add_batch_arg(bench)
    bench.set_defaults(fn=cmd_bench_evals)


def register_netlist(sub) -> None:
    netlist = sub.add_parser(
        "netlist",
        help="export an HSPICE deck of the A-Res current profile",
    )
    netlist.add_argument("--chip", default="bulldozer",
                         choices=("bulldozer", "phenom"))
    netlist.add_argument("--threads", type=int, default=4)
    netlist.add_argument("--periods", type=int, default=40,
                         help="loop periods of current to include")
    netlist.add_argument("--out", default="a_res_pdn.sp")
    netlist.set_defaults(fn=cmd_netlist)
