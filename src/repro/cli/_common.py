"""Shared CLI plumbing: exit codes, flags, platform builders, telemetry.

Everything here is command-agnostic; the per-command modules
(:mod:`repro.cli._audit`, :mod:`repro.cli._qualify`, …) import from this
module only, never from each other.
"""

from __future__ import annotations

import argparse
import functools

from repro.core.faults import FaultPolicy
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import (
    ConsoleObserver,
    JsonlObserver,
    RecentEventsObserver,
)
from repro.errors import (  # noqa: F401 — canonical home is repro.errors
    EXIT_CONFIG,
    EXIT_CRASH,
    EXIT_FAILURE,
    EXIT_FAULTS,
    EXIT_INTERRUPTED,
    EXIT_INVARIANT,
    EXIT_OK,
    CampaignInterrupted,
    ConfigurationError,
    ReproError,
)
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.pipeline.batch import BatchMeasurementBackend

#: Flight recorder for crash reports; reset per ``main`` invocation.
_flight_recorder = RecentEventsObserver()


def _platform(chip: str, throttle: int | None = None):
    if chip == "bulldozer":
        return bulldozer_testbed(fp_throttle=throttle)
    if chip == "phenom":
        if throttle is not None:
            raise ReproError("--throttle is only modelled on the bulldozer chip")
        return phenom_testbed()
    raise ReproError(f"unknown chip {chip!r} (expected bulldozer or phenom)")


def _platform_factory(chip: str, throttle: int | None = None):
    """A picklable platform builder for process-pool workers."""
    return functools.partial(_platform, chip, throttle)


def _batched(platform, args):
    """Wrap *platform* for vectorized PDN solves when ``--batch-measure``.

    Batching runs in-process (the whole point is one scipy call over many
    candidates), so it is mutually exclusive with ``--workers``.
    """
    if not getattr(args, "batch_measure", False):
        return platform
    if (getattr(args, "workers", None) or 1) > 1:
        raise ConfigurationError(
            "--batch-measure batches PDN solves in-process and cannot be "
            "combined with --workers"
        )
    return MeasurementPlatform(
        backend=BatchMeasurementBackend(platform.backend)
    )


def _observers(args):
    """Telemetry sinks selected by CLI flags; returns (observers, jsonl)."""
    observers = [_flight_recorder]
    jsonl = None
    if getattr(args, "progress", False):
        observers.append(ConsoleObserver())
    telemetry_out = getattr(args, "telemetry_out", None)
    if telemetry_out:
        try:
            # Buffered writes keep tracing overhead off the campaign's
            # critical path; ShutdownCoordinator flushes the buffer on a
            # graceful drain and close() flushes on the way out.
            jsonl = JsonlObserver(telemetry_out, flush_every=32)
        except OSError as error:
            raise ConfigurationError(
                f"cannot open telemetry log {telemetry_out!r}: {error}"
            ) from error
        observers.append(jsonl)
    return observers, jsonl


def _tracing_scope(args, observers):
    """Scoped ambient tracer, active whenever a telemetry sink is on.

    The tracer holds the live *observers* list, so sinks appended after
    this call (the run collector, for instance) still see every span.
    With no telemetry flags the scope installs ``None`` and the span call
    sites stay no-ops.
    """
    from repro.obs.spans import Tracer, tracing

    wanted = (
        getattr(args, "telemetry_out", None)
        or getattr(args, "progress", False)
        or getattr(args, "telemetry", False)
    )
    return tracing(Tracer(observers) if wanted else None)


def _fault_policy(args) -> FaultPolicy | None:
    """A FaultPolicy from the campaign CLI flags (None = fail-fast)."""
    if (args.eval_retries is None and args.eval_timeout is None
            and args.on_fault is None):
        return None
    return FaultPolicy(
        max_retries=args.eval_retries if args.eval_retries is not None else 2,
        backoff_s=args.eval_backoff,
        eval_timeout_s=args.eval_timeout,
        on_exhaust=args.on_fault or "raise",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="evaluate GA generations on this many worker processes "
             "(default: serial in-process; worker-side measurement "
             "counters are merged into the run summary)")
    parser.add_argument(
        "--progress", action="store_true",
        help="narrate generations and phases to stderr")
    parser.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="append per-event telemetry as JSON lines to PATH")


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """Process-supervision knobs shared by audit/qualify/fleet campaigns."""
    parser.add_argument(
        "--eval-hard-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-evaluation deadline under --workers: a stuck worker "
             "is killed, the pool respawned, and the genome handed to the "
             "fault policy (unlike --eval-timeout, which only measures "
             "attempts that return)")
    parser.add_argument(
        "--max-pool-rebuilds", type=int, default=None, metavar="N",
        help="total worker-pool respawns (hangs + crashes) tolerated per "
             "evaluation batch before the run is declared systemically "
             "unstable (default 5)")
    parser.add_argument(
        "--max-wall-clock", type=float, default=None, metavar="SECONDS",
        help="stop gracefully after this much wall time: finish the "
             "in-flight generation, write a final checkpoint, exit 75 "
             "(same path as SIGTERM)")


def _shutdown_coordinator(args, observers):
    """A ShutdownCoordinator wired to SIGTERM/SIGINT + --max-wall-clock."""
    from repro.supervision import ShutdownCoordinator

    return ShutdownCoordinator(
        max_wall_clock_s=getattr(args, "max_wall_clock", None),
        observers=observers,
    )


def _make_supervised_executor(args, observers):
    """The campaign executor from --workers + supervision flags."""
    from repro.core.engine import make_executor
    from repro.supervision.executor import DEFAULT_MAX_POOL_REBUILDS

    rebuilds = getattr(args, "max_pool_rebuilds", None)
    return make_executor(
        getattr(args, "workers", None),
        hard_timeout_s=getattr(args, "eval_hard_timeout", None),
        max_pool_rebuilds=(
            rebuilds if rebuilds is not None else DEFAULT_MAX_POOL_REBUILDS
        ),
        observers=observers,
    )


def _add_batch_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-measure", action="store_true",
        help="vectorize compatible PDN solves across candidates (one "
             "matrix solve per generation/grid; results are bit-identical "
             "to serial measurement; incompatible with --workers)")


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write an atomic campaign snapshot (GA population, RNG state, "
             "fitness cache) to DIR every generation")
    group.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume the campaign checkpointed in DIR and keep "
             "checkpointing there; run parameters come from the stored "
             "meta, and the final stressmark is identical to an "
             "uninterrupted run")
    _add_fault_args(parser)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--eval-retries", type=int, default=None, metavar="N",
        help="retry a faulting measurement up to N times before the "
             "--on-fault action (enables the fault policy)")
    parser.add_argument(
        "--eval-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base backoff between retries (doubles per attempt)")
    parser.add_argument(
        "--eval-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog budget per evaluation; slower attempts count as "
             "faults (enables the fault policy)")
    parser.add_argument(
        "--on-fault", default=None, choices=("raise", "skip", "penalize"),
        help="what to do with a genome once retries are exhausted: kill "
             "the run, quarantine at -inf fitness, or quarantine at the "
             "penalty fitness (enables the fault policy)")


def _add_registry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry", default=None, metavar="DIR",
        help="publish the result into the stressmark registry at DIR "
             "(content-addressed; republishing an identical result "
             "deduplicates)")
    parser.add_argument(
        "--registry-campaign", default="", metavar="LABEL",
        help="campaign label stored in the record's provenance "
             "(used by `repro registry compare campaign:A campaign:B`)")


def _publish_record(args, record, observers) -> None:
    """Publish *record* into ``args.registry`` and narrate the outcome."""
    from repro.registry import StressmarkRegistry

    registry = StressmarkRegistry(args.registry, observers=observers)
    outcome = registry.publish(record)
    state = "already published as" if outcome.deduped else "published as"
    print(f"registry: {state} {outcome.record_id[:12]} in {args.registry}")
