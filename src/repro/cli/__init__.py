"""Command-line interface: run AUDIT and regenerate paper experiments.

Usage (also available as ``python -m repro``)::

    python -m repro sweep --chip bulldozer
    python -m repro audit --threads 4 --mode resonant --asm-out a_res.asm
    python -m repro audit --workers 4 --progress --telemetry-out run.jsonl
    python -m repro audit --batch-measure --telemetry
    python -m repro audit --generations 40 --checkpoint-dir campaign/
    python -m repro audit --resume campaign/
    python -m repro audit --eval-retries 3 --on-fault penalize
    python -m repro audit --qualify --checkpoint-dir campaign/
    python -m repro fleet run --matrix chip=bulldozer,phenom \\
        --matrix threads=2,4 --dir fleet/ --workers 4
    python -m repro fleet run --resume fleet/
    python -m repro fleet status fleet/
    python -m repro fleet report fleet/ --check
    python -m repro qualify a-res --threads 4
    python -m repro audit --registry library/ --registry-campaign nightly
    python -m repro registry list library/
    python -m repro registry verify library/ <id-prefix>
    python -m repro registry compare library/ campaign:before campaign:after
    python -m repro registry export library/ marks.tar.gz
    python -m repro telemetry analyze run.jsonl
    python -m repro telemetry compare golden.jsonl run.jsonl --check
    python -m repro telemetry export run.jsonl --md-out telemetry.md
    python -m repro bench-evals --generations 6
    python -m repro experiment table1
    python -m repro list

Exit codes: 0 success, 1 run error, 2 bad configuration, 3 fault policy
exhausted, 4 invariant violation (corrupt numerics), 70 internal crash
(a ``crash_report.json`` is written next to the checkpoint, or in the
working directory).

The package is split by concern: :mod:`repro.cli._common` (shared flags
and platform builders), one module per command family, and
:mod:`repro.cli._main` (parser assembly + crash reporting).
"""

from __future__ import annotations

from repro.cli._common import (
    EXIT_CONFIG,
    EXIT_CRASH,
    EXIT_FAULTS,
    EXIT_FAILURE,
    EXIT_INVARIANT,
    EXIT_OK,
    _batched,
    _fault_policy,
    _observers,
    _platform,
    _platform_factory,
)
from repro.cli._audit import cmd_audit
from repro.cli._experiments import EXPERIMENTS, cmd_experiment, cmd_list
from repro.cli._fleet import cmd_fleet_report, cmd_fleet_run, cmd_fleet_status
from repro.cli._main import build_parser, main
from repro.cli._qualify import CANNED_STRESSMARKS, cmd_qualify
from repro.cli._registry import (
    cmd_registry_compare,
    cmd_registry_export,
    cmd_registry_import,
    cmd_registry_list,
    cmd_registry_query,
    cmd_registry_show,
    cmd_registry_verify,
)
from repro.cli._telemetry import (
    cmd_telemetry_analyze,
    cmd_telemetry_compare,
    cmd_telemetry_export,
)
from repro.cli._tools import cmd_bench_evals, cmd_netlist, cmd_sweep

__all__ = [
    "CANNED_STRESSMARKS",
    "EXIT_CONFIG",
    "EXIT_CRASH",
    "EXIT_FAILURE",
    "EXIT_FAULTS",
    "EXIT_INVARIANT",
    "EXIT_OK",
    "EXPERIMENTS",
    "build_parser",
    "cmd_audit",
    "cmd_bench_evals",
    "cmd_experiment",
    "cmd_fleet_report",
    "cmd_fleet_run",
    "cmd_fleet_status",
    "cmd_list",
    "cmd_netlist",
    "cmd_qualify",
    "cmd_registry_compare",
    "cmd_registry_export",
    "cmd_registry_import",
    "cmd_registry_list",
    "cmd_registry_query",
    "cmd_registry_show",
    "cmd_registry_verify",
    "cmd_sweep",
    "cmd_telemetry_analyze",
    "cmd_telemetry_compare",
    "cmd_telemetry_export",
    "main",
    "_batched",
    "_fault_policy",
    "_observers",
    "_platform",
    "_platform_factory",
]
