"""The ``qualify`` command: perturbation sweep + verdict for canned marks."""

from __future__ import annotations

from repro.core.engine import make_executor
from repro.core.qualify import (
    QualificationCheckpoint,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.core.telemetry import TelemetryCollector
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import CANNED_STRESSMARKS

from repro.cli._common import (
    EXIT_OK,
    _add_batch_arg,
    _add_registry_args,
    _add_telemetry_args,
    _batched,
    _observers,
    _platform_factory,
    _publish_record,
    _tracing_scope,
)

def cmd_qualify(args) -> int:
    """Qualify one canned stressmark: perturbation sweep + verdict."""
    from repro.cli import _platform

    platform = _batched(_platform(args.chip), args)
    pool = default_table().supported_on(platform.chip.extensions)
    from repro.workloads.stressmarks import canned_stressmark, stressmark_program

    program = stressmark_program(canned_stressmark(args.stressmark, pool))
    config = QualifyConfig(
        seed=args.seed,
        jitter_repeats=args.jitter_repeats,
        supply_span_v=args.supply_span,
        supply_points=args.supply_points,
        pdn_tolerance=args.pdn_tolerance,
    )
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    checkpoint = (QualificationCheckpoint(args.checkpoint_dir)
                  if args.checkpoint_dir else None)
    qualifier = StressmarkQualifier(
        platform,
        threads=args.threads,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip),
        checkpoint=checkpoint,
    )
    try:
        with _tracing_scope(args, observers):
            report = qualifier.qualify_program(program, name=args.stressmark)
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(report.summary_table())
    print(f"\nverdict: {report.verdict} "
          f"(robustness {report.robustness:.2f}, "
          f"{report.evaluations} evaluations, "
          f"{report.cache_hits} cache hits, {report.wall_s:.1f}s)")
    if args.registry is not None:
        from repro.registry import (
            platform_descriptor,
            provenance_stamp,
            record_from_qualification,
        )

        record = record_from_qualification(
            report,
            platform=platform,
            descriptor=platform_descriptor(args.chip),
            provenance=provenance_stamp(campaign=args.registry_campaign),
        )
        _publish_record(args, record, observers)
    if args.telemetry:
        print("\n" + collector.summary_table(platform.stats()))
    return EXIT_OK


def register(sub) -> None:
    qualify = sub.add_parser(
        "qualify",
        help="re-measure a canned stressmark under perturbations and "
             "render a PASS/FRAGILE/ARTIFACT verdict",
    )
    qualify.add_argument("stressmark", choices=CANNED_STRESSMARKS)
    qualify.add_argument("--chip", default="bulldozer",
                         choices=("bulldozer", "phenom"))
    qualify.add_argument("--threads", type=int, default=4)
    qualify.add_argument("--seed", type=int, default=0,
                         help="seed of the perturbation grid")
    qualify.add_argument("--jitter-repeats", type=int, default=4,
                         help="SMT jitter reseeds to sweep")
    qualify.add_argument("--supply-span", type=float, default=0.05,
                         metavar="VOLTS",
                         help="supply sweep half-width around nominal Vdd")
    qualify.add_argument("--supply-points", type=int, default=5)
    qualify.add_argument("--pdn-tolerance", type=float, default=0.10,
                         help="relative R/L/C/ESR component tolerance")
    qualify.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist measured perturbations to DIR after every axis; "
             "rerunning resumes from the banked measurements")
    qualify.add_argument("--telemetry", action="store_true",
                         help="print the run-telemetry summary table")
    _add_telemetry_args(qualify)
    _add_batch_arg(qualify)
    _add_registry_args(qualify)
    qualify.set_defaults(fn=cmd_qualify)
