"""The ``qualify`` command: perturbation sweep + verdict for canned marks."""

from __future__ import annotations

from repro.core.engine import make_executor
from repro.core.qualify import (
    QualificationCheckpoint,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.core.telemetry import TelemetryCollector
from repro.errors import ConfigurationError
from repro.isa.opcodes import default_table

from repro.cli._common import (
    EXIT_OK,
    _add_batch_arg,
    _add_telemetry_args,
    _batched,
    _observers,
    _platform_factory,
)

#: Canned stressmarks ``repro qualify`` can re-measure by name.
CANNED_STRESSMARKS = ("a-res", "a-ex", "sm-res", "sm1", "sm2", "joseph-brooks")


def _canned_kernel(name: str, pool):
    from repro.workloads import stressmarks as sm

    builders = {
        "a-res": sm.a_res_canned,
        "a-ex": sm.a_ex_canned,
        "sm-res": sm.sm_res,
        "sm1": sm.sm1,
        "sm2": sm.sm2,
        "joseph-brooks": sm.joseph_brooks,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown stressmark {name!r} "
            f"(expected one of {', '.join(CANNED_STRESSMARKS)})"
        ) from None
    return builder(pool)


def cmd_qualify(args) -> int:
    """Qualify one canned stressmark: perturbation sweep + verdict."""
    from repro.cli import _platform

    platform = _batched(_platform(args.chip), args)
    pool = default_table().supported_on(platform.chip.extensions)
    from repro.workloads.stressmarks import stressmark_program

    program = stressmark_program(_canned_kernel(args.stressmark, pool))
    config = QualifyConfig(
        seed=args.seed,
        jitter_repeats=args.jitter_repeats,
        supply_span_v=args.supply_span,
        supply_points=args.supply_points,
        pdn_tolerance=args.pdn_tolerance,
    )
    observers, jsonl = _observers(args)
    collector = TelemetryCollector()
    observers.append(collector)
    executor = make_executor(args.workers)
    checkpoint = (QualificationCheckpoint(args.checkpoint_dir)
                  if args.checkpoint_dir else None)
    qualifier = StressmarkQualifier(
        platform,
        threads=args.threads,
        config=config,
        executor=executor,
        observers=observers,
        platform_factory=_platform_factory(args.chip),
        checkpoint=checkpoint,
    )
    try:
        report = qualifier.qualify_program(program, name=args.stressmark)
    finally:
        executor.close()
        if jsonl is not None:
            jsonl.close()
    print(report.summary_table())
    print(f"\nverdict: {report.verdict} "
          f"(robustness {report.robustness:.2f}, "
          f"{report.evaluations} evaluations, "
          f"{report.cache_hits} cache hits, {report.wall_s:.1f}s)")
    if args.telemetry:
        print("\n" + collector.summary_table(platform.stats()))
    return EXIT_OK


def register(sub) -> None:
    qualify = sub.add_parser(
        "qualify",
        help="re-measure a canned stressmark under perturbations and "
             "render a PASS/FRAGILE/ARTIFACT verdict",
    )
    qualify.add_argument("stressmark", choices=CANNED_STRESSMARKS)
    qualify.add_argument("--chip", default="bulldozer",
                         choices=("bulldozer", "phenom"))
    qualify.add_argument("--threads", type=int, default=4)
    qualify.add_argument("--seed", type=int, default=0,
                         help="seed of the perturbation grid")
    qualify.add_argument("--jitter-repeats", type=int, default=4,
                         help="SMT jitter reseeds to sweep")
    qualify.add_argument("--supply-span", type=float, default=0.05,
                         metavar="VOLTS",
                         help="supply sweep half-width around nominal Vdd")
    qualify.add_argument("--supply-points", type=int, default=5)
    qualify.add_argument("--pdn-tolerance", type=float, default=0.10,
                         help="relative R/L/C/ESR component tolerance")
    qualify.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist measured perturbations to DIR after every axis; "
             "rerunning resumes from the banked measurements")
    qualify.add_argument("--telemetry", action="store_true",
                         help="print the run-telemetry summary table")
    _add_telemetry_args(qualify)
    _add_batch_arg(qualify)
    qualify.set_defaults(fn=cmd_qualify)
