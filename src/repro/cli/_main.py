"""Parser assembly, crash reporting, and the ``main`` entry point."""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from pathlib import Path

from repro.core.faults import QuarantineExhaustedError
from repro.core.telemetry import RecentEventsObserver
from repro.errors import (
    CampaignInterrupted,
    ConfigurationError,
    InvariantViolation,
    ReproError,
)

from repro import package_version
from repro.cli import (
    _audit,
    _common,
    _experiments,
    _fleet,
    _qualify,
    _registry,
    _telemetry,
    _tools,
)
from repro.cli._common import (
    EXIT_CONFIG,
    EXIT_CRASH,
    EXIT_FAULTS,
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_INVARIANT,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AUDIT reproduction: di/dt stressmark generation",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    _tools.register_sweep(sub)
    _audit.register(sub)
    _fleet.register(sub)
    _qualify.register(sub)
    _registry.register(sub)
    _telemetry.register(sub)
    _tools.register_bench(sub)
    _tools.register_netlist(sub)
    _experiments.register(sub)
    return parser


def _crash_report(args, error: BaseException) -> str | None:
    """Write ``crash_report.json`` for an unhandled exception.

    The report lands next to the campaign checkpoint when one is
    configured (the natural place to look after an overnight run died),
    otherwise in the working directory.  It carries the parsed CLI args,
    the traceback, and the tail of the telemetry event stream — enough
    to reconstruct what the run was doing when it went down.
    """
    directory = (getattr(args, "checkpoint_dir", None)
                 or getattr(args, "resume", None)
                 or getattr(args, "dir", None) or ".")
    path = Path(directory) / "crash_report.json"
    payload = {
        "command": getattr(args, "command", None),
        "args": {
            key: value for key, value in vars(args).items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
        "version": package_version(),
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "recent_events": _common._flight_recorder.tail(),
        "written_at": time.time(),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError:
        return None  # never let the crash reporter mask the crash
    return str(path)


def main(argv: list[str] | None = None) -> int:
    _common._flight_recorder = RecentEventsObserver()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CampaignInterrupted as error:
        # A *sanctioned* stop (signal or wall-clock budget): the final
        # checkpoint landed, so this run is resumable — exit 75, not 1.
        print(f"interrupted: {error}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ConfigurationError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    except QuarantineExhaustedError as error:
        print(f"fault policy exhausted: {error}", file=sys.stderr)
        return EXIT_FAULTS
    except InvariantViolation as error:
        print(f"invariant violation: {error}", file=sys.stderr)
        return EXIT_INVARIANT
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE
    except KeyboardInterrupt:
        raise
    except Exception as error:  # noqa: BLE001 — last-resort crash report
        report = _crash_report(args, error)
        where = f" (crash report: {report})" if report else ""
        print(f"internal error: {type(error).__name__}: {error}{where}",
              file=sys.stderr)
        return EXIT_CRASH
