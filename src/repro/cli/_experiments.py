"""The paper-experiment registry and its ``experiment``/``list`` commands."""

from __future__ import annotations

import sys

from repro.analysis.report import format_table
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.isa.opcodes import default_table


def _run_fig3():
    from repro.experiments import fig3_resonances as mod

    return mod.report(mod.run_fig3(bulldozer_testbed()))


def _run_fig4():
    from repro.experiments import fig4_excitation_vs_resonance as mod

    return mod.report(mod.run_fig4(bulldozer_testbed(), default_table()))


def _run_fig6():
    from repro.core.resonance import probe_program
    from repro.experiments import fig6_natural_dithering as mod

    program = probe_program(default_table(), hp_count=32, lp_nops=95)
    return mod.report(mod.run_fig6(bulldozer_testbed(), program))


def _run_fig9():
    from repro.experiments import fig9_droop_comparison as mod

    return mod.report(mod.run_fig9(bulldozer_testbed(), default_table()))


def _run_fig10():
    from repro.experiments import fig10_histograms as mod

    return mod.report(mod.run_fig10(bulldozer_testbed(), default_table(),
                                    samples=1_000_000))


def _run_table1():
    from repro.experiments import table1_failure as mod

    return mod.report(mod.run_table1(bulldozer_testbed(), default_table()))


def _run_table2():
    from repro.experiments import table2_throttling as mod

    return mod.report(mod.run_table2(
        bulldozer_testbed(), bulldozer_testbed(fp_throttle=1), default_table()
    ))


def _run_table3():
    from repro.experiments import table3_phenom as mod

    return mod.report(mod.run_table3(phenom_testbed(), default_table()))


def _run_sec3b():
    from repro.experiments import sec3b_dithering_cost as mod

    return mod.report(mod.run_sec3b())


def _run_sec3c():
    from repro.experiments import sec3c_hierarchical as mod

    return mod.report(mod.run_sec3c(bulldozer_testbed(), default_table()))


def _run_sec3_data():
    from repro.experiments import sec3_data_values as mod

    return mod.report(mod.run_sec3_data_values(bulldozer_testbed(),
                                               default_table()))


def _run_sec5a1():
    from repro.experiments import sec5a1_barrier as mod

    return mod.report(mod.run_sec5a1(bulldozer_testbed(), default_table()))


def _run_sec5a5():
    from repro.experiments import sec5a5_nop_analysis as mod

    return mod.report(mod.run_sec5a5(bulldozer_testbed(), default_table()))


def _run_sec5_sim():
    from repro.experiments import sec5_simulator_insights as mod

    return mod.report(mod.run_sec5_simulator_insights(bulldozer_testbed(),
                                                      default_table()))


def _run_sec5_qualify():
    from repro.experiments import sec5_qualification as mod

    return mod.report(mod.run_sec5_qualification(bulldozer_testbed(),
                                                 default_table()))


EXPERIMENTS = {
    "fig3": ("PDN resonances, frequency + time domain", _run_fig3),
    "fig4": ("excitation vs resonance", _run_fig4),
    "fig6": ("natural dithering scope shot", _run_fig6),
    "fig9": ("droop comparison grid (slow)", _run_fig9),
    "fig10": ("Vdd histograms", _run_fig10),
    "table1": ("voltage at failure", _run_table1),
    "table2": ("FPU throttling impact", _run_table2),
    "table3": ("Phenom II processor swap", _run_table3),
    "sec3b": ("dithering sweep cost", _run_sec3b),
    "sec3c": ("hierarchical vs flat GA (slow)", _run_sec3c),
    "sec3-data": ("operand data values vs droop", _run_sec3_data),
    "sec5a1": ("barrier release skew", _run_sec5a1),
    "sec5a5": ("NOP vs ADD loop analysis", _run_sec5a5),
    "sec5-sim": ("simulator vs hardware insights", _run_sec5_sim),
    "sec5-qualify": ("qualified stressmarks: droop vs robustness vs failure",
                     _run_sec5_qualify),
}


def cmd_experiment(args) -> int:
    try:
        _description, runner = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; see 'list'", file=sys.stderr)
        return 2
    print(runner())
    return 0


def cmd_list(_args) -> int:
    rows = [[name, description] for name, (description, _fn) in EXPERIMENTS.items()]
    print(format_table(["experiment", "description"], rows,
                       title="available experiments"))
    return 0


def register(sub) -> None:
    experiment = sub.add_parser("experiment",
                                help="regenerate one paper table/figure")
    experiment.add_argument("name")
    experiment.set_defaults(fn=cmd_experiment)

    listing = sub.add_parser("list", help="list available experiments")
    listing.set_defaults(fn=cmd_list)
