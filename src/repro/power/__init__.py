"""Power substrate: per-cycle energy → load-current waveforms."""

from repro.power.energy import EnergyModel, PowerParameters
from repro.power.trace import CurrentTrace, square_wave, step_load, sum_traces

__all__ = [
    "CurrentTrace",
    "EnergyModel",
    "PowerParameters",
    "square_wave",
    "step_load",
    "sum_traces",
]
