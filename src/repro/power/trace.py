"""Current traces: sampled load-current waveforms.

A :class:`CurrentTrace` is a numpy-backed, uniformly sampled current
waveform.  The machine model emits one trace per core; traces from all cores
are summed into the chip load current that drives the PDN.  Periodic
stressmark traces are stored as a single period and tiled / phase-rolled,
which is what makes GA fitness evaluation and dithering sweeps fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CurrentTrace:
    """A uniformly sampled current waveform.

    Attributes
    ----------
    samples:
        Current in amperes, one value per sample interval.
    dt:
        Sample interval in seconds (usually one clock cycle).
    """

    samples: np.ndarray
    dt: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ConfigurationError("current trace must be one-dimensional")
        if samples.size == 0:
            raise ConfigurationError("current trace may not be empty")
        if self.dt <= 0:
            raise ConfigurationError("dt must be positive")
        object.__setattr__(self, "samples", samples)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return len(self.samples) * self.dt

    @property
    def mean_a(self) -> float:
        return float(self.samples.mean())

    @property
    def peak_a(self) -> float:
        return float(self.samples.max())

    @property
    def swing_a(self) -> float:
        """Peak-to-trough current swing (the raw di driver of di/dt)."""
        return float(self.samples.max() - self.samples.min())

    def tile(self, repetitions: int) -> "CurrentTrace":
        """Repeat the waveform *repetitions* times (loop iterations)."""
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        return CurrentTrace(np.tile(self.samples, repetitions), self.dt)

    def roll(self, shift_samples: int) -> "CurrentTrace":
        """Circularly shift the waveform by *shift_samples* (phase offset).

        Positive shift delays the waveform.  Only meaningful for periodic
        traces (one period or whole tiles).
        """
        return CurrentTrace(np.roll(self.samples, shift_samples), self.dt)

    def pad(self, leading: int = 0, trailing: int = 0, level: float = 0.0) -> "CurrentTrace":
        """Extend the trace with constant-current samples on either end."""
        if leading < 0 or trailing < 0:
            raise ConfigurationError("padding must be non-negative")
        samples = np.concatenate([
            np.full(leading, level),
            self.samples,
            np.full(trailing, level),
        ])
        return CurrentTrace(samples, self.dt)

    def __add__(self, other: "CurrentTrace") -> "CurrentTrace":
        """Sum two equally sampled, equal-length traces (core superposition)."""
        if not isinstance(other, CurrentTrace):
            return NotImplemented
        if abs(other.dt - self.dt) > 1e-18:
            raise ConfigurationError("cannot add traces with different dt")
        if len(other) != len(self):
            raise ConfigurationError("cannot add traces with different lengths")
        return CurrentTrace(self.samples + other.samples, self.dt)

    def scaled(self, factor: float) -> "CurrentTrace":
        """Trace with all samples multiplied by *factor*."""
        return CurrentTrace(self.samples * factor, self.dt)


def sum_traces(traces: list[CurrentTrace] | tuple[CurrentTrace, ...]) -> CurrentTrace:
    """Sum many traces (all cores into the shared PDN load).

    Shorter traces are zero-padded at the end to the longest length —
    a core that finishes early simply stops drawing dynamic current.
    """
    if not traces:
        raise ConfigurationError("sum_traces needs at least one trace")
    dt = traces[0].dt
    longest = max(len(t) for t in traces)
    total = np.zeros(longest, dtype=np.float64)
    for t in traces:
        if abs(t.dt - dt) > 1e-18:
            raise ConfigurationError("all traces must share the same dt")
        total[: len(t)] += t.samples
    return CurrentTrace(total, dt)


def square_wave(
    high_a: float,
    low_a: float,
    high_samples: int,
    low_samples: int,
    periods: int,
    dt: float,
) -> CurrentTrace:
    """An idealised HP/LP periodic load (paper Fig. 7).

    Used by the resonance sweep and by tests that need a known-frequency
    excitation without running the pipeline model.
    """
    if high_samples < 0 or low_samples < 0 or high_samples + low_samples == 0:
        raise ConfigurationError("need a positive period length")
    if periods < 1:
        raise ConfigurationError("periods must be >= 1")
    one = np.concatenate([
        np.full(high_samples, float(high_a)),
        np.full(low_samples, float(low_a)),
    ])
    return CurrentTrace(np.tile(one, periods), dt)


def step_load(
    low_a: float,
    high_a: float,
    low_samples: int,
    high_samples: int,
    dt: float,
) -> CurrentTrace:
    """A single low→high current step (first-droop excitation event)."""
    if low_samples < 1 or high_samples < 1:
        raise ConfigurationError("step_load needs samples on both sides")
    samples = np.concatenate([
        np.full(low_samples, float(low_a)),
        np.full(high_samples, float(high_a)),
    ])
    return CurrentTrace(samples, dt)
