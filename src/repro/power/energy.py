"""Energy-to-current conversion: the electrical side of the power model.

The pipeline model produces *per-cycle dynamic energy* (picojoules) from
instruction activity.  This module converts that to the *load current*
waveform the PDN sees:

    I(cycle) = I_leak + I_idle_clk + E_dyn(cycle) / (Vdd * T_clk)

where ``I_leak`` is leakage (always present), ``I_idle_clk`` is the clock
tree and always-on logic of an active core, and the last term is switching
current.  Aggressive power management (Bulldozer) gates the clock tree in
idle regions, giving a larger swing between HP and LP phases; the older
Phenom II "does not manage power as aggressively" (paper Section V.C), which
we model with a larger non-gateable idle fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerParameters:
    """Electrical constants of one core.

    Parameters
    ----------
    leakage_a:
        Leakage current per core (A), independent of activity.
    idle_clock_a:
        Current of the running clock tree / always-on logic per core (A).
    clock_gating_efficiency:
        Fraction of ``idle_clock_a`` removed during cycles with zero dynamic
        energy (clock gating).  1.0 = perfect gating (big di/dt swing),
        0.0 = no gating (Phenom-like, small swing).
    """

    leakage_a: float = 1.5
    idle_clock_a: float = 3.0
    clock_gating_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.leakage_a < 0 or self.idle_clock_a < 0:
            raise ConfigurationError("currents must be non-negative")
        if not 0.0 <= self.clock_gating_efficiency <= 1.0:
            raise ConfigurationError("clock_gating_efficiency must be in [0, 1]")


class EnergyModel:
    """Convert per-cycle dynamic energy into per-cycle load current.

    One instance is bound to an operating point (supply voltage and clock
    frequency); changing the operating point (e.g. the voltage-at-failure
    sweep of paper Section V.A.4) means building a new instance.
    """

    def __init__(self, params: PowerParameters, vdd: float, frequency_hz: float):
        if vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.params = params
        self.vdd = vdd
        self.frequency_hz = frequency_hz
        self.cycle_time_s = 1.0 / frequency_hz

    def current_from_energy(self, energies_pj: np.ndarray) -> np.ndarray:
        """Per-cycle core current (A) from per-cycle dynamic energy (pJ).

        Cycles with zero dynamic energy are treated as clock-gated: the
        gateable fraction of the idle-clock current is removed.
        """
        energies_pj = np.asarray(energies_pj, dtype=np.float64)
        if np.any(energies_pj < 0):
            raise ConfigurationError("per-cycle energies must be non-negative")
        dynamic = energies_pj * 1e-12 / (self.vdd * self.cycle_time_s)
        p = self.params
        active_clock = p.idle_clock_a * np.ones_like(dynamic)
        gated = p.idle_clock_a * (1.0 - p.clock_gating_efficiency)
        active_clock[dynamic == 0.0] = gated
        return p.leakage_a + active_clock + dynamic

    def idle_current(self) -> float:
        """Current of a fully idle (clock-gated) core (A)."""
        p = self.params
        return p.leakage_a + p.idle_clock_a * (1.0 - p.clock_gating_efficiency)

    def energy_to_amps(self, energy_pj: float) -> float:
        """Scalar conversion: dynamic energy in one cycle to amps."""
        return energy_pj * 1e-12 / (self.vdd * self.cycle_time_s)
