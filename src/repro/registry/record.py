"""Registry records: content-addressed results with provenance.

A :class:`RegistryRecord` is the durable form of one discovered (or
qualified) stressmark: what was run (genome or canned kernel), where it
was run (platform descriptor + configuration hash), how (threads, mode,
seed), and what came out (droop, fitness, qualification verdict).

The record id is the sha256 of the *identity payload* — every field
above, canonically serialised.  Provenance (timestamps, git describe,
argv, campaign label, telemetry summary) travels with the record but is
excluded from the hash, so re-running the same campaign tomorrow
republishes the same id and the store deduplicates instead of growing a
twin.  Floats survive the JSON round-trip bit-exactly (Python serialises
them via shortest round-trip repr), which is what lets ``registry
verify`` demand bit-identical droops.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import RegistryError
from repro.registry.provenance import hash_platform, platform_descriptor

#: Bumped when the record layout changes incompatibly.
RECORD_VERSION = 1

#: How one record's program is described: a raw genome (the common case
#: for campaign winners) or a canned stressmark built by name.
PROGRAM_SOURCES = ("genome", "canned")


@dataclass(frozen=True)
class RegistryRecord:
    """One content-addressed stressmark result."""

    kind: str
    """``"audit"``, ``"qualify"``, or ``"fleet"`` — which pipeline
    published the record."""
    name: str
    """Stressmark label (``A-Res``, a scenario id, a canned name)."""
    program: dict
    """``{"source": "genome", "subblock": [...], "lp_nops": int,
    "replications": int}`` or ``{"source": "canned", "stressmark": str}``."""
    platform: dict
    """Platform descriptor (see
    :func:`repro.registry.provenance.platform_descriptor`)."""
    platform_hash: str
    """Configuration fingerprint of the constructed platform."""
    threads: int
    droop_v: float
    mode: str = ""
    seed: int | None = None
    best_fitness: float | None = None
    evaluations: int | None = None
    resonance_hz: float | None = None
    verdict: str = ""
    robustness: float | None = None
    qualification: dict | None = None
    provenance: dict = field(default_factory=dict)
    """Context excluded from the content hash: created_at, git,
    repro_version, argv, campaign, telemetry summary."""

    # ------------------------------------------------------------------
    def identity(self) -> dict:
        """The fields the record id is computed over."""
        return {
            "record_version": RECORD_VERSION,
            "kind": self.kind,
            "name": self.name,
            "program": self.program,
            "platform": self.platform,
            "platform_hash": self.platform_hash,
            "threads": self.threads,
            "droop_v": self.droop_v,
            "mode": self.mode,
            "seed": self.seed,
            "best_fitness": self.best_fitness,
            "evaluations": self.evaluations,
            "resonance_hz": self.resonance_hz,
            "verdict": self.verdict,
            "robustness": self.robustness,
            "qualification": self.qualification,
        }

    @property
    def record_id(self) -> str:
        data = json.dumps(self.identity(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(data).hexdigest()

    def to_payload(self) -> dict:
        return {
            "record_id": self.record_id,
            **self.identity(),
            "provenance": self.provenance,
        }

    @classmethod
    def from_payload(cls, payload: dict, *, source="record") -> "RegistryRecord":
        """Decode a stored object, re-verifying its content hash.

        The recomputed id must match the stored one — a mismatch means
        the object was hand-edited, bit-rotted, or tampered with in
        transit (import), and is rejected rather than trusted.
        """
        if not isinstance(payload, dict):
            raise RegistryError(
                f"corrupt registry object {source}: expected a JSON "
                f"object, found {type(payload).__name__}"
            )
        version = payload.get("record_version")
        if version != RECORD_VERSION:
            raise RegistryError(
                f"registry record version {version!r} in {source} is not "
                f"supported (expected {RECORD_VERSION})"
            )
        try:
            record = cls(
                kind=str(payload["kind"]),
                name=str(payload["name"]),
                program=dict(payload["program"]),
                platform=dict(payload["platform"]),
                platform_hash=str(payload["platform_hash"]),
                threads=int(payload["threads"]),
                droop_v=float(payload["droop_v"]),
                mode=str(payload.get("mode", "")),
                seed=payload.get("seed"),
                best_fitness=payload.get("best_fitness"),
                evaluations=payload.get("evaluations"),
                resonance_hz=payload.get("resonance_hz"),
                verdict=str(payload.get("verdict", "")),
                robustness=payload.get("robustness"),
                qualification=payload.get("qualification"),
                provenance=dict(payload.get("provenance") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise RegistryError(
                f"corrupt registry object {source}: {error}"
            ) from error
        if record.program.get("source") not in PROGRAM_SOURCES:
            raise RegistryError(
                f"corrupt registry object {source}: program source "
                f"{record.program.get('source')!r} is not one of "
                f"{PROGRAM_SOURCES}"
            )
        stored_id = payload.get("record_id")
        if stored_id != record.record_id:
            raise RegistryError(
                f"registry object {source} fails its content hash "
                f"(stored {str(stored_id)[:12]}…, recomputed "
                f"{record.record_id[:12]}…) — tampered or corrupt"
            )
        return record

    # ------------------------------------------------------------------
    def index_entry(self) -> dict:
        """The one-line summary the JSONL index carries."""
        return {
            "record_id": self.record_id,
            "kind": self.kind,
            "name": self.name,
            "chip": self.platform.get("chip", ""),
            "pdn_scale": self.platform.get("pdn_scale", 1.0),
            "platform_hash": self.platform_hash,
            "threads": self.threads,
            "mode": self.mode,
            "seed": self.seed,
            "droop_v": self.droop_v,
            "verdict": self.verdict,
            "campaign": self.provenance.get("campaign", ""),
            "created_at": self.provenance.get("created_at", 0.0),
        }


# ----------------------------------------------------------------------
# Builders for the three publish paths
# ----------------------------------------------------------------------
def _genome_program(genome, replications: int) -> dict:
    return {
        "source": "genome",
        "subblock": list(genome.subblock),
        "lp_nops": int(genome.lp_nops),
        "replications": int(replications),
    }


def record_from_audit(result, *, platform, descriptor: dict,
                      seed: int | None = None,
                      provenance: dict | None = None) -> RegistryRecord:
    """A record for one :class:`~repro.core.audit.AuditResult`."""
    config = result.config
    qualification = None
    verdict = ""
    robustness = None
    if result.qualification is not None:
        chosen = result.qualification.chosen_report
        verdict = result.qualification.verdict
        robustness = chosen.robustness
        qualification = chosen.to_payload()
    return RegistryRecord(
        kind="audit",
        name=result.name,
        program=_genome_program(result.genome, result.space.replications),
        platform=dict(descriptor),
        platform_hash=hash_platform(platform),
        threads=result.threads,
        droop_v=float(result.max_droop_v),
        mode=(config.mode.value if config is not None else ""),
        seed=seed,
        best_fitness=float(result.ga_result.best_fitness),
        evaluations=int(result.ga_result.evaluations),
        resonance_hz=float(result.resonance.resonance_hz),
        verdict=verdict,
        robustness=robustness,
        qualification=qualification,
        provenance=dict(provenance or {}),
    )


def record_from_qualification(report, *, platform, descriptor: dict,
                              provenance: dict | None = None) -> RegistryRecord:
    """A record for one standalone ``repro qualify`` run.

    The program is the canned stressmark by name; the recorded droop is
    the *nominal* (unperturbed) droop, which is exactly what a replay of
    the canned kernel re-measures.
    """
    return RegistryRecord(
        kind="qualify",
        name=report.stressmark,
        program={"source": "canned", "stressmark": report.stressmark},
        platform=dict(descriptor),
        platform_hash=hash_platform(platform),
        threads=report.threads,
        droop_v=float(report.nominal_droop_v),
        seed=int(report.config.seed),
        evaluations=int(report.evaluations),
        verdict=report.verdict,
        robustness=float(report.robustness),
        qualification=report.to_payload(),
        provenance=dict(provenance or {}),
    )


def record_from_shard(result, *, provenance: dict | None = None) -> RegistryRecord:
    """A record for one banked OK fleet shard (:class:`ShardResult`)."""
    from repro.core.audit import AuditConfig
    from repro.registry.provenance import build_platform

    if result.genome is None:
        raise RegistryError(
            f"shard {result.scenario_id} banked no genome; only OK shards "
            f"can be published"
        )
    scenario = result.scenario
    scale = _pdn_label_scale(scenario.get("pdn", "nominal"))
    descriptor = platform_descriptor(scenario["chip"], pdn_scale=scale)
    # Fleet shards run the default audit replication count.
    replications = AuditConfig(threads=int(scenario["threads"])).replications
    genome = _GenomeView(
        subblock=tuple(result.genome["subblock"]),
        lp_nops=int(result.genome["lp_nops"]),
    )
    return RegistryRecord(
        kind="fleet",
        name=result.scenario_id,
        program=_genome_program(genome, replications),
        platform=descriptor,
        platform_hash=hash_platform(build_platform(descriptor)),
        threads=int(scenario["threads"]),
        droop_v=float(result.droop_v),
        mode=str(scenario.get("mode", "")),
        seed=int(scenario["seed"]),
        best_fitness=result.best_fitness,
        evaluations=result.evaluations,
        resonance_hz=result.resonance_hz,
        verdict=result.verdict or "",
        robustness=result.robustness,
        qualification=None,
        provenance=dict(provenance or {}),
    )


@dataclass(frozen=True)
class _GenomeView:
    """Duck-typed stand-in so shard genome dicts reuse _genome_program."""

    subblock: tuple
    lp_nops: int


def _pdn_label_scale(label: str) -> float:
    from repro.fleet.matrix import parse_pdn_label

    return parse_pdn_label(label)
