"""The stressmark registry: a content-addressed library of AUDIT results.

AUDIT's product is its artifacts — stressmarks, their measured droops,
their qualification verdicts — and this package gives them a durable,
queryable, deduplicated home.  ``repro audit``, ``repro qualify`` and
``repro fleet run`` publish a :class:`RegistryRecord` per result into a
:class:`StressmarkRegistry` (``--registry DIR``); the ``repro registry``
command group lists, queries, compares, exports/imports, and — because
the whole simulation stack is deterministic — *verifies* records by
re-measuring them and demanding the recorded droop bit for bit.

Layout and schema are documented in DESIGN.md §12.
"""

from repro.registry.archive import ImportOutcome, export_records, import_archive
from repro.registry.compare import (
    compare_campaigns,
    compare_records,
    render_campaign_comparison,
    render_record_comparison,
)
from repro.registry.provenance import (
    build_platform,
    git_describe,
    hash_platform,
    platform_descriptor,
    provenance_stamp,
    telemetry_summary,
)
from repro.registry.record import (
    RECORD_VERSION,
    RegistryRecord,
    record_from_audit,
    record_from_qualification,
    record_from_shard,
)
from repro.registry.store import PublishOutcome, StressmarkRegistry
from repro.registry.verify import VerifyResult, rebuild_program, verify_record

__all__ = [
    "RECORD_VERSION",
    "ImportOutcome",
    "PublishOutcome",
    "RegistryRecord",
    "StressmarkRegistry",
    "VerifyResult",
    "build_platform",
    "compare_campaigns",
    "compare_records",
    "export_records",
    "git_describe",
    "hash_platform",
    "import_archive",
    "platform_descriptor",
    "provenance_stamp",
    "rebuild_program",
    "record_from_audit",
    "record_from_qualification",
    "record_from_shard",
    "render_campaign_comparison",
    "render_record_comparison",
    "telemetry_summary",
    "verify_record",
]
