"""Provenance for registry records: platforms, hashes, environment.

A registry record must outlive the session that produced it, so the
identity of the measurement platform cannot be a live object — it is a
tiny *descriptor* (chip preset name, optional FP throttle, PDN die-stage
scale) from which :func:`build_platform` reconstructs the exact
:class:`~repro.core.platform.MeasurementPlatform` the CLI testbeds and
the fleet's :func:`~repro.fleet.shard.scenario_platform` build today.
:func:`hash_platform` then fingerprints the *constructed* configuration
(every chip and PDN parameter, via the frozen dataclasses' reprs), so
``registry verify`` can detect that a preset drifted since publication
even before re-measuring.

:func:`provenance_stamp` collects the non-identity context — wall-clock
time, ``git describe``, package version, CLI argv — that travels with a
record but is excluded from its content hash (see
:mod:`repro.registry.record`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import sys
import time

from repro import package_version
from repro.core.platform import MeasurementPlatform
from repro.errors import RegistryError
from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.uarch.config import bulldozer_chip, phenom_chip

_CHIP_PRESETS = {"bulldozer": bulldozer_chip, "phenom": phenom_chip}
_PDN_PRESETS = {"bulldozer": bulldozer_pdn, "phenom": phenom_pdn}

#: Die-stage fields scaled by the pdn tolerance axis — must match
#: :data:`repro.fleet.shard._DIE_FIELDS`.
_DIE_FIELDS = ("resistance_ohm", "inductance_h", "capacitance_f", "esr_ohm")


def platform_descriptor(chip: str, *, throttle: int | None = None,
                        pdn_scale: float = 1.0) -> dict:
    """The portable description of a measurement platform."""
    if chip not in _CHIP_PRESETS:
        raise RegistryError(
            f"unknown chip preset {chip!r} "
            f"(expected one of {', '.join(sorted(_CHIP_PRESETS))})"
        )
    return {
        "chip": chip,
        "throttle": None if throttle is None else int(throttle),
        "pdn_scale": float(pdn_scale),
    }


def build_platform(descriptor: dict) -> MeasurementPlatform:
    """Reconstruct the platform a descriptor was taken from.

    Mirrors the CLI testbeds (chip preset + optional FP throttle, default
    jitter seed) and the fleet's die-stage PDN scaling, so a record
    published by any of the three paths rebuilds bit-identically.
    """
    chip_name = descriptor.get("chip")
    if chip_name not in _CHIP_PRESETS:
        raise RegistryError(
            f"record platform names unknown chip preset {chip_name!r}"
        )
    chip = _CHIP_PRESETS[chip_name]()
    throttle = descriptor.get("throttle")
    if throttle is not None:
        chip = chip.with_fp_throttle(int(throttle))
    pdn = _PDN_PRESETS[chip_name](vdd=chip.vdd)
    scale = float(descriptor.get("pdn_scale", 1.0))
    if scale != 1.0:
        scaled = {name: getattr(pdn.die, name) * scale for name in _DIE_FIELDS}
        pdn = dataclasses.replace(pdn, die=dataclasses.replace(pdn.die, **scaled))
    return MeasurementPlatform(chip, pdn)


def hash_platform(platform) -> str:
    """sha256 prefix over the full chip + PDN configuration.

    ``ChipConfig`` and the PDN parameter classes are frozen dataclasses,
    so :func:`dataclasses.asdict` enumerates every field; the canonical
    JSON rendering (sets sorted — their iteration order is randomized
    per process) fingerprints the complete electrical model a droop was
    measured on.  Two platforms with equal hashes produce bit-identical
    measurements for the same program.
    """
    payload = {
        "chip": _canonical(dataclasses.asdict(platform.chip)),
        "pdn": _canonical(dataclasses.asdict(platform.pdn)),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _canonical(value):
    """JSON-serializable form with deterministic ordering for sets."""
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def git_describe() -> str:
    """``git describe --always --dirty`` of the source tree, or ``""``.

    Best-effort: a deployed package has no repository, and provenance
    must never fail a publish.
    """
    from pathlib import Path

    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if out.returncode != 0:
        return ""
    return out.stdout.strip()


def telemetry_summary(collector) -> dict:
    """A compact counter + span rollup for a record's provenance stamp.

    Provenance is excluded from the content hash, so the summary may
    carry run-specific numbers (wall clock, span counts) without
    breaking registry deduplication.
    """
    summary = {
        "evaluations": collector.evaluations,
        "cache_hits": collector.cache_hits,
        "eval_wall_s": round(collector.eval_wall_s, 3),
        "generations": collector.generations,
    }
    span_counts = getattr(collector, "span_counts", None)
    if span_counts:
        summary["spans"] = dict(sorted(span_counts.items()))
        summary["span_wall_s"] = {
            name: round(wall, 3)
            for name, wall in sorted(collector.span_wall_s.items())
        }
    if getattr(collector, "spans_lost", 0):
        summary["spans_lost"] = int(collector.spans_lost)
    return summary


def provenance_stamp(*, argv: list | None = None, campaign: str = "",
                     extra: dict | None = None) -> dict:
    """The non-identity context stored alongside a record.

    Excluded from the content hash by design: republishing the same
    result tomorrow, from a different checkout, must deduplicate.
    """
    stamp = {
        "created_at": time.time(),
        "git": git_describe(),
        "repro_version": package_version(),
        "python": sys.version.split()[0],
        "argv": list(sys.argv if argv is None else argv),
        "campaign": campaign,
    }
    if extra:
        stamp.update(extra)
    return stamp
