"""The on-disk registry: locked single-writer layout, JSONL index.

Layout under the registry directory::

    registry.json          # store meta (version), written once
    index.jsonl            # append-only, one summary line per record
    objects/<id[:2]>/<id>.json   # full record payloads, content-addressed
    .lock                  # writer mutual exclusion (flock)

Writers (publish, import, salvage) take an exclusive ``flock`` on
``.lock`` for the whole operation, so two processes publishing
simultaneously serialise instead of interleaving index appends.  Objects
land via :func:`~repro.core.atomicio.atomic_write_json` and index lines
via :func:`~repro.core.atomicio.append_jsonl`, so a crash can tear at
most the final index line — and because the objects are the ground truth
(the index is a derived summary), a damaged or missing index is
*salvaged* by rebuilding it from the object store rather than treated as
data loss.

Readers never take the lock: the index reader is lenient (damaged lines
are counted and skipped) and object reads re-verify the content hash.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.core.atomicio import append_jsonl, atomic_write_bytes, atomic_write_json
from repro.core.telemetry import RegistryEvent, notify
from repro.errors import CheckpointError, RegistryError
from repro.registry.record import RegistryRecord

REGISTRY_FILE = "registry.json"
INDEX_FILE = "index.jsonl"
OBJECTS_DIR = "objects"
LOCK_FILE = ".lock"

#: Bumped when the store layout changes incompatibly.
REGISTRY_VERSION = 1

#: Shortest record-id prefix ``get`` will resolve.
MIN_REF_LENGTH = 6


@dataclass(frozen=True)
class PublishOutcome:
    """What one publish did: the id, where it landed, and whether the
    record was already present (content-addressed dedup)."""

    record_id: str
    path: str
    deduped: bool
    wall_s: float = 0.0


class StressmarkRegistry:
    """A content-addressed stressmark library at *directory*."""

    def __init__(self, directory, *, observers=()):
        self.directory = Path(directory)
        self.observers = tuple(observers)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            (self.directory / OBJECTS_DIR).mkdir(exist_ok=True)
        except OSError as error:
            raise RegistryError(
                f"cannot create registry directory {directory!r}: {error}"
            ) from error
        if not self.meta_path.exists():
            # Two processes may race to initialise the same directory;
            # the writer lock serialises them (atomic_write_bytes uses a
            # fixed-name tmp sibling, so unserialised twins can steal
            # each other's tmp file mid-replace).
            try:
                with self._locked():
                    if not self.meta_path.exists():
                        atomic_write_json(
                            self.meta_path,
                            {"registry_version": REGISTRY_VERSION},
                        )
            except CheckpointError as error:
                raise RegistryError(str(error)) from error
        self._check_meta()

    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.directory / REGISTRY_FILE

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_FILE

    @property
    def lock_path(self) -> Path:
        return self.directory / LOCK_FILE

    def object_path(self, record_id: str) -> Path:
        return self.directory / OBJECTS_DIR / record_id[:2] / f"{record_id}.json"

    def _check_meta(self) -> None:
        try:
            payload = json.loads(self.meta_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise RegistryError(
                f"corrupt registry meta {self.meta_path}: {error}"
            ) from error
        version = payload.get("registry_version") if isinstance(payload, dict) else None
        if version != REGISTRY_VERSION:
            raise RegistryError(
                f"registry version {version!r} at {self.meta_path} is not "
                f"supported (expected {REGISTRY_VERSION})"
            )

    @contextmanager
    def _locked(self):
        """Exclusive writer lock for the whole operation.

        ``flock`` blocks until the competing writer finishes — publishes
        are milliseconds, so waiting beats failing.  On platforms without
        ``fcntl`` the store degrades to lockless (single-writer is then
        the operator's responsibility).
        """
        handle = open(self.lock_path, "a+b")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(self, record: RegistryRecord) -> PublishOutcome:
        """Land one record; a no-op (dedup) when its id is already stored."""
        start = time.perf_counter()
        record_id = record.record_id
        path = self.object_path(record_id)
        try:
            with self._locked():
                deduped = path.exists()
                if not deduped:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    atomic_write_json(path, record.to_payload())
                    append_jsonl(self.index_path, record.index_entry())
        except CheckpointError as error:
            raise RegistryError(str(error)) from error
        outcome = PublishOutcome(
            record_id=record_id,
            path=str(path),
            deduped=deduped,
            wall_s=time.perf_counter() - start,
        )
        notify(self.observers, RegistryEvent(
            action="publish",
            record_id=record_id,
            path=str(path),
            detail=f"{record.kind}/{record.name}",
            deduped=deduped,
            wall_s=outcome.wall_s,
        ))
        return outcome

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def _read_index(self) -> tuple[list[dict], int]:
        """All parseable index entries plus the count of damaged lines."""
        entries: list[dict] = []
        skipped = 0
        try:
            lines = self.index_path.read_bytes().splitlines()
        except FileNotFoundError:
            return [], 0
        except OSError as error:
            raise RegistryError(
                f"cannot read registry index {self.index_path}: {error}"
            ) from error
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                skipped += 1
                continue
            if isinstance(entry, dict) and isinstance(entry.get("record_id"), str):
                entries.append(entry)
            else:
                skipped += 1
        return entries, skipped

    def _object_ids(self) -> list[str]:
        ids = []
        objects = self.directory / OBJECTS_DIR
        if not objects.is_dir():
            return ids
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                ids.append(path.stem)
        return ids

    def entries(self) -> list[dict]:
        """The index, salvaging it from the objects when damaged or stale.

        The objects are ground truth; any damaged index line — or any
        stored object the index has no line for (a crash between the
        object write and the append) — triggers a locked rebuild.
        """
        entries, skipped = self._read_index()
        known = {entry["record_id"] for entry in entries}
        missing = [rid for rid in self._object_ids() if rid not in known]
        if skipped or missing:
            return self.rebuild_index()
        return entries

    def rebuild_index(self) -> list[dict]:
        """Regenerate ``index.jsonl`` from the object store, atomically."""
        entries = []
        unreadable = 0
        for record_id in self._object_ids():
            try:
                record = self._load_object(record_id)
            except RegistryError:
                unreadable += 1
                continue
            entries.append(record.index_entry())
        entries.sort(key=lambda e: (e.get("created_at", 0.0), e["record_id"]))
        lines = "".join(json.dumps(entry) + "\n" for entry in entries)
        try:
            with self._locked():
                atomic_write_bytes(self.index_path, lines.encode("utf-8"))
        except CheckpointError as error:
            raise RegistryError(str(error)) from error
        detail = f"index rebuilt from {len(entries)} object(s)"
        if unreadable:
            detail += f" ({unreadable} unreadable object(s) skipped)"
        notify(self.observers, RegistryEvent(
            action="salvage", path=str(self.index_path), detail=detail,
        ))
        return entries

    def _load_object(self, record_id: str) -> RegistryRecord:
        path = self.object_path(record_id)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise RegistryError(
                f"registry object {record_id[:12]}… is missing from "
                f"{self.directory}"
            ) from None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise RegistryError(
                f"corrupt registry object {path}: {error}"
            ) from error
        return RegistryRecord.from_payload(payload, source=str(path))

    def get(self, ref: str) -> RegistryRecord:
        """Resolve a full record id or a unique prefix to its record."""
        ref = ref.strip().lower()
        if len(ref) < MIN_REF_LENGTH:
            raise RegistryError(
                f"record reference {ref!r} is too short "
                f"(need at least {MIN_REF_LENGTH} hex characters)"
            )
        matches = sorted({
            rid for rid in self._object_ids() if rid.startswith(ref)
        })
        if not matches:
            raise RegistryError(
                f"no record matches {ref!r} in {self.directory}"
            )
        if len(matches) > 1:
            preview = ", ".join(rid[:12] for rid in matches[:4])
            raise RegistryError(
                f"record reference {ref!r} is ambiguous "
                f"({len(matches)} matches: {preview}…)"
            )
        return self._load_object(matches[0])

    def query(self, *, kind: str | None = None, chip: str | None = None,
              verdict: str | None = None, campaign: str | None = None,
              platform_hash: str | None = None,
              min_droop_v: float | None = None,
              max_droop_v: float | None = None) -> list[dict]:
        """Index entries matching every given filter."""
        selected = []
        for entry in self.entries():
            if kind is not None and entry.get("kind") != kind:
                continue
            if chip is not None and entry.get("chip") != chip:
                continue
            if verdict is not None and entry.get("verdict") != verdict:
                continue
            if campaign is not None and entry.get("campaign") != campaign:
                continue
            if platform_hash is not None and (
                    entry.get("platform_hash") != platform_hash):
                continue
            droop = entry.get("droop_v")
            if min_droop_v is not None and (
                    not isinstance(droop, (int, float)) or droop < min_droop_v):
                continue
            if max_droop_v is not None and (
                    not isinstance(droop, (int, float)) or droop > max_droop_v):
                continue
            selected.append(entry)
        return selected

    def records(self) -> list[RegistryRecord]:
        """Every stored record, index order."""
        return [self._load_object(e["record_id"]) for e in self.entries()]
