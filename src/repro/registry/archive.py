"""Portable registry archives: export/import as a tarball.

An export is a ``.tar.gz`` holding a manifest plus the selected records'
full object payloads::

    registry-export/manifest.json
    registry-export/objects/<record_id>.json

Import never extracts to the filesystem — members are read in memory and
republished through the normal store path, so a hostile archive cannot
path-traverse, and every record re-proves its content hash (tampered
payloads are rejected by :meth:`RegistryRecord.from_payload`).  Because
publishing is content-addressed, importing an archive twice — or into a
registry that already holds some of its records — deduplicates.
"""

from __future__ import annotations

import io
import json
import tarfile
import time
from dataclasses import dataclass

from repro import package_version
from repro.core.telemetry import RegistryEvent, notify
from repro.errors import RegistryError
from repro.registry.record import RegistryRecord
from repro.registry.store import StressmarkRegistry

#: Bumped when the archive layout changes incompatibly.
ARCHIVE_VERSION = 1

_ROOT = "registry-export"


@dataclass(frozen=True)
class ImportOutcome:
    """What one import did: new records vs. already-present ones."""

    imported: tuple
    deduped: tuple

    @property
    def total(self) -> int:
        return len(self.imported) + len(self.deduped)


def export_records(registry: StressmarkRegistry, out_path, *,
                   refs=None, observers=()) -> list[str]:
    """Write the selected records (default: all) to *out_path*.

    Returns the exported record ids.
    """
    if refs:
        records = [registry.get(ref) for ref in refs]
    else:
        records = registry.records()
    if not records:
        raise RegistryError(f"nothing to export from {registry.directory}")
    manifest = {
        "archive_version": ARCHIVE_VERSION,
        "exported_at": time.time(),
        "repro_version": package_version(),
        "records": [record.record_id for record in records],
    }
    try:
        with tarfile.open(out_path, "w:gz") as tar:
            _add_member(tar, f"{_ROOT}/manifest.json", manifest)
            for record in records:
                _add_member(
                    tar,
                    f"{_ROOT}/objects/{record.record_id}.json",
                    record.to_payload(),
                )
    except OSError as error:
        raise RegistryError(
            f"cannot write archive {out_path}: {error}"
        ) from error
    notify(observers, RegistryEvent(
        action="export", path=str(out_path),
        detail=f"{len(records)} record(s)",
    ))
    return [record.record_id for record in records]


def import_archive(registry: StressmarkRegistry, archive_path, *,
                   observers=()) -> ImportOutcome:
    """Publish every record of *archive_path* into *registry*."""
    try:
        tar = tarfile.open(archive_path, "r:*")
    except (OSError, tarfile.TarError) as error:
        raise RegistryError(
            f"cannot read archive {archive_path}: {error}"
        ) from error
    imported: list[str] = []
    deduped: list[str] = []
    with tar:
        manifest = _read_manifest(tar, archive_path)
        expected = manifest.get("records")
        members = [
            member for member in tar.getmembers()
            if member.isfile()
            and member.name.startswith(f"{_ROOT}/objects/")
            and member.name.endswith(".json")
        ]
        if not members:
            raise RegistryError(f"archive {archive_path} holds no records")
        for member in members:
            payload = _read_json(tar, member, archive_path)
            record = RegistryRecord.from_payload(
                payload, source=f"{archive_path}:{member.name}"
            )
            outcome = registry.publish(record)
            (deduped if outcome.deduped else imported).append(outcome.record_id)
        if isinstance(expected, list):
            seen = set(imported) | set(deduped)
            missing = [rid for rid in expected if rid not in seen]
            if missing:
                raise RegistryError(
                    f"archive {archive_path} manifest lists "
                    f"{len(missing)} record(s) absent from the archive "
                    f"(first: {str(missing[0])[:12]}…)"
                )
    notify(observers, RegistryEvent(
        action="import", path=str(archive_path),
        detail=f"{len(imported)} new, {len(deduped)} already present",
    ))
    return ImportOutcome(imported=tuple(imported), deduped=tuple(deduped))


# ----------------------------------------------------------------------
def _add_member(tar: tarfile.TarFile, name: str, payload: dict) -> None:
    data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
    info = tarfile.TarInfo(name)
    info.size = len(data)
    # Fixed mtime keeps same-content exports byte-comparable.
    info.mtime = 0
    tar.addfile(info, io.BytesIO(data))


def _read_manifest(tar: tarfile.TarFile, archive_path) -> dict:
    payload = None
    for member in tar.getmembers():
        if member.name == f"{_ROOT}/manifest.json" and member.isfile():
            payload = _read_json(tar, member, archive_path)
            break
    if payload is None:
        raise RegistryError(
            f"archive {archive_path} has no {_ROOT}/manifest.json "
            f"(not a registry export?)"
        )
    version = payload.get("archive_version")
    if version != ARCHIVE_VERSION:
        raise RegistryError(
            f"archive version {version!r} in {archive_path} is not "
            f"supported (expected {ARCHIVE_VERSION})"
        )
    return payload


def _read_json(tar: tarfile.TarFile, member: tarfile.TarInfo,
               archive_path) -> dict:
    handle = tar.extractfile(member)
    if handle is None:  # pragma: no cover - isfile() filtered already
        raise RegistryError(
            f"archive member {member.name} in {archive_path} is unreadable"
        )
    try:
        payload = json.loads(handle.read().decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise RegistryError(
            f"corrupt archive member {member.name} in {archive_path}: "
            f"{error}"
        ) from error
    if not isinstance(payload, dict):
        raise RegistryError(
            f"corrupt archive member {member.name} in {archive_path}: "
            f"expected a JSON object"
        )
    return payload
