"""Replay verification: re-measure a stored record, demand bit identity.

The whole simulation stack is deterministic — same genome, same platform
configuration, same thread count ⇒ the same voltage trace to the last
ulp — so a registry record doubles as a regression oracle: rebuild the
platform from its descriptor, rebuild the program from its genome (or
canned name), re-measure, and the droop must equal the recorded value
*bit for bit* (floats survive the JSON round trip exactly).

A mismatch therefore means the *code* changed the physics (a PDN solver
tweak, a scheduler fix, a preset edit) since the record was published —
precisely the class of silent regression the AUDIT methodology exists to
catch.  A platform-hash mismatch is reported separately: it pinpoints
"the preset drifted" before any measurement runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.codegen import DEFAULT_ITERATIONS, genome_to_kernel
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.core.telemetry import RegistryEvent, notify
from repro.errors import RegistryError
from repro.isa.kernels import ThreadProgram
from repro.isa.opcodes import default_table
from repro.registry.provenance import build_platform, hash_platform
from repro.registry.record import RegistryRecord


@dataclass(frozen=True)
class VerifyResult:
    """The outcome of replaying one record."""

    record_id: str
    recorded_droop_v: float
    measured_droop_v: float
    platform_hash_recorded: str
    platform_hash_rebuilt: str
    wall_s: float

    @property
    def droop_identical(self) -> bool:
        """Bit-identical replay (NaN never verifies)."""
        return self.measured_droop_v == self.recorded_droop_v

    @property
    def platform_drifted(self) -> bool:
        return self.platform_hash_rebuilt != self.platform_hash_recorded

    @property
    def ok(self) -> bool:
        return self.droop_identical and not self.platform_drifted

    def describe(self) -> str:
        if self.ok:
            return (
                f"OK: droop {self.measured_droop_v * 1e3:.6f} mV "
                f"reproduced bit-identically"
            )
        parts = []
        if self.platform_drifted:
            parts.append(
                f"platform drift: recorded config hash "
                f"{self.platform_hash_recorded}, rebuilt "
                f"{self.platform_hash_rebuilt} (a chip/PDN preset changed "
                f"since publication)"
            )
        if not self.droop_identical:
            delta = self.measured_droop_v - self.recorded_droop_v
            parts.append(
                f"droop mismatch: recorded {self.recorded_droop_v!r} V, "
                f"measured {self.measured_droop_v!r} V (delta {delta:+.3e} V)"
            )
        return "FAILED: " + "; ".join(parts)


def rebuild_program(record: RegistryRecord, platform) -> ThreadProgram:
    """The runnable program a record describes, against *platform*'s pool.

    Genome records rebuild through the same
    :func:`~repro.core.codegen.genome_to_kernel` path the campaign used
    (kernel named after the record, so instruction scheduling is
    identical); canned records rebuild through the shared
    :func:`~repro.workloads.stressmarks.canned_stressmark` table.
    """
    program = record.program
    pool = default_table().supported_on(platform.chip.extensions)
    source = program.get("source")
    if source == "genome":
        try:
            genome = StressmarkGenome(
                subblock=tuple(program["subblock"]),
                lp_nops=int(program["lp_nops"]),
            )
            replications = int(program["replications"])
        except (KeyError, TypeError, ValueError) as error:
            raise RegistryError(
                f"record {record.record_id[:12]}… has a malformed genome "
                f"program: {error}"
            ) from error
        space = GenomeSpace(
            table=pool,
            slots=len(genome.subblock),
            replications=replications,
            lp_nops_min=0,
            lp_nops_max=max(genome.lp_nops, 0),
        )
        kernel = genome_to_kernel(genome, space, name=record.name)
        return ThreadProgram(kernel, DEFAULT_ITERATIONS)
    if source == "canned":
        from repro.workloads.stressmarks import canned_stressmark, stressmark_program

        return stressmark_program(
            canned_stressmark(program.get("stressmark", ""), pool)
        )
    raise RegistryError(
        f"record {record.record_id[:12]}… has unknown program source "
        f"{source!r}"
    )


def verify_record(record: RegistryRecord, *, observers=()) -> VerifyResult:
    """Re-run *record* through the measurement pipeline and compare."""
    start = time.perf_counter()
    platform = build_platform(record.platform)
    rebuilt_hash = hash_platform(platform)
    program = rebuild_program(record, platform)
    measurement = platform.measure_program(program, record.threads)
    result = VerifyResult(
        record_id=record.record_id,
        recorded_droop_v=float(record.droop_v),
        measured_droop_v=float(measurement.max_droop_v),
        platform_hash_recorded=record.platform_hash,
        platform_hash_rebuilt=rebuilt_hash,
        wall_s=time.perf_counter() - start,
    )
    notify(observers, RegistryEvent(
        action="verify",
        record_id=record.record_id,
        detail=result.describe(),
        wall_s=result.wall_s,
    ))
    return result
