"""Comparisons: two records, or two campaigns, axis by axis.

Record comparison lines up the measured quantities (droop, fitness,
evaluations, resonance, robustness) plus the structural axes (platform,
threads, mode, genome) and reports per-axis deltas.  Campaign comparison
joins two campaigns' records *by scenario name* — the natural key when
the same matrix ran before and after a code change — and summarises
which scenarios improved, regressed, or held bit-identical, which is the
longitudinal view the registry exists to provide.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.errors import RegistryError
from repro.registry.record import RegistryRecord
from repro.registry.store import StressmarkRegistry


def compare_records(a: RegistryRecord, b: RegistryRecord) -> list[dict]:
    """Per-axis rows ``{axis, a, b, delta}`` (delta for numeric axes)."""
    rows: list[dict] = []

    def row(axis, va, vb):
        delta = None
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            delta = vb - va
        rows.append({"axis": axis, "a": va, "b": vb, "delta": delta})

    row("kind", a.kind, b.kind)
    row("name", a.name, b.name)
    row("chip", a.platform.get("chip"), b.platform.get("chip"))
    row("pdn_scale", a.platform.get("pdn_scale"), b.platform.get("pdn_scale"))
    row("platform_hash", a.platform_hash, b.platform_hash)
    row("threads", a.threads, b.threads)
    row("mode", a.mode, b.mode)
    row("seed", a.seed, b.seed)
    row("droop_v", a.droop_v, b.droop_v)
    row("best_fitness", a.best_fitness, b.best_fitness)
    row("evaluations", a.evaluations, b.evaluations)
    row("resonance_hz", a.resonance_hz, b.resonance_hz)
    row("verdict", a.verdict, b.verdict)
    row("robustness", a.robustness, b.robustness)
    row("genome", _genome_label(a), _genome_label(b))
    row("genome slots changed", *_genome_difference(a, b))
    return rows


def render_record_comparison(rows: list[dict]) -> str:
    table = []
    for entry in rows:
        delta = entry["delta"]
        table.append([
            entry["axis"],
            _fmt(entry["a"]),
            _fmt(entry["b"]),
            "" if delta is None else f"{delta:+g}",
        ])
    return format_table(["axis", "a", "b", "delta"], table,
                        title="record comparison")


def _genome_label(record: RegistryRecord) -> str:
    program = record.program
    if program.get("source") == "canned":
        return f"canned:{program.get('stressmark', '?')}"
    subblock = program.get("subblock") or []
    return f"{len(subblock)} slots, {program.get('lp_nops', '?')} LP nops"


def _genome_difference(a: RegistryRecord, b: RegistryRecord):
    sa = a.program.get("subblock")
    sb = b.program.get("subblock")
    if not isinstance(sa, list) or not isinstance(sb, list):
        return "-", "-"
    if len(sa) != len(sb):
        return f"len {len(sa)}", f"len {len(sb)}"
    changed = sum(1 for x, y in zip(sa, sb) if x != y)
    return 0, changed


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
def compare_campaigns(registry: StressmarkRegistry, campaign_a: str,
                      campaign_b: str) -> dict:
    """Join two campaigns' records by name; per-scenario droop deltas."""
    a_entries = _campaign_entries(registry, campaign_a)
    b_entries = _campaign_entries(registry, campaign_b)
    names = sorted(set(a_entries) | set(b_entries))
    scenarios = []
    identical = improved = regressed = 0
    for name in names:
        ea, eb = a_entries.get(name), b_entries.get(name)
        entry = {
            "name": name,
            "a_droop_v": None if ea is None else ea.get("droop_v"),
            "b_droop_v": None if eb is None else eb.get("droop_v"),
            "a_verdict": "" if ea is None else ea.get("verdict", ""),
            "b_verdict": "" if eb is None else eb.get("verdict", ""),
            "delta_v": None,
        }
        if ea is not None and eb is not None:
            da, db = ea.get("droop_v"), eb.get("droop_v")
            if isinstance(da, (int, float)) and isinstance(db, (int, float)):
                entry["delta_v"] = db - da
                if db == da:
                    identical += 1
                elif db > da:
                    improved += 1
                else:
                    regressed += 1
        scenarios.append(entry)
    return {
        "campaign_a": campaign_a,
        "campaign_b": campaign_b,
        "scenarios": scenarios,
        "shared": identical + improved + regressed,
        "identical": identical,
        "improved": improved,
        "regressed": regressed,
    }


def render_campaign_comparison(diff: dict) -> str:
    rows = []
    for entry in diff["scenarios"]:
        rows.append([
            entry["name"],
            _fmt_droop(entry["a_droop_v"]),
            _fmt_droop(entry["b_droop_v"]),
            "" if entry["delta_v"] is None else f"{entry['delta_v'] * 1e3:+.3f} mV",
            "/".join(v for v in (entry["a_verdict"], entry["b_verdict"]) if v),
        ])
    table = format_table(
        ["scenario", diff["campaign_a"], diff["campaign_b"], "delta", "verdicts"],
        rows,
        title="campaign comparison",
    )
    summary = (
        f"{diff['shared']} shared scenario(s): {diff['identical']} "
        f"bit-identical, {diff['improved']} improved (deeper droop), "
        f"{diff['regressed']} regressed"
    )
    return f"{table}\n{summary}"


def _campaign_entries(registry: StressmarkRegistry, campaign: str) -> dict:
    entries = registry.query(campaign=campaign)
    if not entries:
        raise RegistryError(
            f"no records for campaign {campaign!r} in {registry.directory}"
        )
    return {entry.get("name", entry["record_id"]): entry for entry in entries}


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _fmt_droop(value) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 1e3:.3f} mV"
