"""Batch measurement backend: vectorized PDN solves over candidate sets.

Wraps a pipeline-backed backend (the :class:`SimulatorBackend`) and adds
``measure_programs``: the platform hands it a whole GA generation,
qualification grid, or resonance sweep, and compatible candidates solve
the PDN stage as one stacked matrix instead of one row at a time.
Single measurements delegate to the wrapped backend unchanged.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BatchMeasurementBackend:
    """Adds vectorized ``measure_programs`` to a simulator backend.

    Results are bit-identical to per-candidate serial measurement; only
    the wall-clock of the PDN stage changes (one frequency-response
    evaluation and one filter call amortized across the whole batch).
    """

    def __init__(self, inner):
        if getattr(inner, "pipeline", None) is None:
            raise ConfigurationError(
                "BatchMeasurementBackend requires a pipeline-backed "
                f"(simulator) backend; {type(inner).__name__} has no pipeline"
            )
        self.inner = inner
        self.chip = inner.chip

    @property
    def pipeline(self):
        return self.inner.pipeline

    def measure_program(self, program, threads, **kwargs):
        return self.inner.measure_program(program, threads, **kwargs)

    def measure_programs(self, requests):
        return self.inner.pipeline.measure_batch(requests)

    def measure_current(self, current, **kwargs):
        return self.inner.measure_current(current, **kwargs)

    def stats(self):
        return self.inner.stats()
