"""Typed, content-hashed artifacts flowing through the measurement pipeline.

Each measurement is a chain of four artifacts::

    MeasureRequest -> CompiledProgram -> ActivityProfile -> PdnResponse
                                                         -> Measurement

Every intermediate carries a ``key`` — a short content hash over the
inputs that produced it — which is what the per-stage caches index on:
two requests that compile to the same placement share one activity
profile; two profiles measured at the same phases and supply share one
PDN response.  The artifacts are deliberately dumb frozen dataclasses so
they can cross process boundaries and be reasoned about in tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.isa.kernels import ThreadProgram
from repro.pdn.transient import VoltageTrace
from repro.power.trace import CurrentTrace


def artifact_key(*parts) -> str:
    """Short content hash over the reprs of *parts* (cache key)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class MeasureRequest:
    """One measurement the pipeline (or a batch of them) should perform."""

    program: ThreadProgram
    threads: int
    module_phases: tuple | None = None
    supply_v: float | None = None
    smt_phase_cycles: int | None = None


@dataclass(frozen=True)
class CompiledProgram:
    """Stage 1 output: a program placed onto the chip's modules."""

    program: ThreadProgram
    threads: int
    placement: tuple
    """Threads per module, spread-first (one entry per module)."""
    smt_phase_cycles: int | None
    key: str


@dataclass(frozen=True)
class ModuleActivity:
    """One module's simulated activity inside an :class:`ActivityProfile`."""

    trace: object
    """The raw :class:`~repro.uarch.module.ModuleTrace`."""
    profile: tuple | None
    """``(energy_pj, sensitivity, period)`` when the module's activity is
    verified periodic, else ``None``."""
    count: int
    """Threads running on this module (1 or 2)."""


@dataclass(frozen=True)
class ActivityProfile:
    """Stage 2 output: per-module activity plus the dispatch decision.

    Phase- and supply-independent by construction — dithering scans and
    failure sweeps reuse one profile across the whole grid and re-run only
    the PDN stage.
    """

    modules: tuple
    """One :class:`ModuleActivity` or ``None`` (idle) per module."""
    period_cycles: int | None
    """The common activity period when every module is verified periodic."""
    iteration_cycles: float | None
    smt: bool
    path: str
    """PDN dispatch: ``"periodic"``, ``"jittered"``, or ``"transient"``."""
    fallback_reason: str
    """Why the transient fallback fired (empty on the fast paths)."""
    key: str

    @property
    def active(self) -> list:
        return [m for m in self.modules if m is not None]


@dataclass(frozen=True)
class PdnResponse:
    """Stage 3 output: the solved supply-voltage response."""

    voltage: VoltageTrace
    sensitivity: np.ndarray
    current: CurrentTrace
    period_cycles: int | None
    supply_v: float
    batched: bool = False


@dataclass(frozen=True)
class Measurement:
    """One platform measurement of a running program or workload."""

    voltage: VoltageTrace
    sensitivity: np.ndarray
    current: CurrentTrace
    period_cycles: int | None
    supply_v: float
    iteration_cycles: float | None = None
    """Average cycles per loop iteration (may be fractional); the loop's
    fundamental repetition rate.  ``period_cycles`` is the exactly-repeating
    activity window, which can span several iterations."""

    @property
    def max_droop_v(self) -> float:
        return self.voltage.max_droop_v

    @property
    def max_overshoot_v(self) -> float:
        return self.voltage.max_overshoot_v

    @property
    def mean_current_a(self) -> float:
        return self.current.mean_a

    @property
    def mean_power_w(self) -> float:
        return self.mean_current_a * self.supply_v

    @property
    def steady_frequency_hz(self) -> float | None:
        """Fundamental (per-iteration) frequency of the activity, if periodic."""
        if self.iteration_cycles is not None:
            return 1.0 / (self.iteration_cycles * self.current.dt)
        if self.period_cycles is None:
            return None
        return 1.0 / (self.period_cycles * self.current.dt)
