"""The four measurement stages: compile → activity → pdn → analyze.

Each stage is a small object with a ``name`` and a ``run`` method taking
the previous stage's artifact (the :class:`Stage` protocol).  The numeric
bodies are the former ``SimulatorBackend`` internals moved here verbatim —
the decomposition changes where the code lives and what gets cached, never
a single float.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.osmodel.affinity import spread_placement
from repro.pdn.elements import PdnParameters
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver, VoltageTrace
from repro.pipeline.artifacts import (
    ActivityProfile,
    CompiledProgram,
    Measurement,
    MeasureRequest,
    ModuleActivity,
    PdnResponse,
    artifact_key,
)
from repro.pipeline.cache import StageCache
from repro.power.energy import EnergyModel
from repro.power.trace import CurrentTrace
from repro.uarch.chip import ChipSimulator
from repro.uarch.config import ChipConfig

#: Iterations simulated per module run: enough for any kernel that will
#: stabilise to do so and leave >= 3 repetitions for verification.
DEFAULT_WARMUP_ITERATIONS = 48

#: Cycles of idle machine prepended on the transient fallback path.
IDLE_PAD_CYCLES = 512

#: Periods of steady activity tiled on the transient fallback path.
FALLBACK_TILE_CYCLES = 20_000

#: Default seed of the SMT loop-phase random walk (kept stable so seed
#: benches reproduce; configurable via ``MeasurementPlatform(jitter_seed=)``).
DEFAULT_JITTER_SEED = 0xD17D7


@dataclass
class PipelineCounters:
    """Mutable counters shared by every stage of one pipeline (or several
    pipelines sharing stages, e.g. the qualifier's perturbed backends)."""

    measurements: int = 0
    pdn_time_s: float = 0.0
    path_counts: dict = field(
        default_factory=lambda: {"periodic": 0, "jittered": 0, "transient": 0}
    )
    stage_wall_s: dict = field(default_factory=dict)
    profile_cache_hits: int = 0
    pdn_cache_hits: int = 0
    batched_solves: int = 0
    batched_rows: int = 0

    def record_stage(self, stage: str, wall_s: float) -> None:
        self.stage_wall_s[stage] = self.stage_wall_s.get(stage, 0.0) + wall_s

    def to_metrics(self):
        """Project the ledger onto a :class:`~repro.obs.metrics.MetricsRegistry`.

        Scalar counters land under ``pipeline.<name>``; the per-path and
        per-stage dicts fan out to ``pipeline.path.<path>`` and
        ``pipeline.stage_wall_s.<stage>``.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("pipeline.measurements", self.measurements)
        registry.inc("pipeline.pdn_time_s", self.pdn_time_s)
        registry.inc("pipeline.profile_cache_hits", self.profile_cache_hits)
        registry.inc("pipeline.pdn_cache_hits", self.pdn_cache_hits)
        registry.inc("pipeline.batched_solves", self.batched_solves)
        registry.inc("pipeline.batched_rows", self.batched_rows)
        for path, count in self.path_counts.items():
            registry.inc(f"pipeline.path.{path}", count)
        for stage, wall in self.stage_wall_s.items():
            registry.inc(f"pipeline.stage_wall_s.{stage}", wall)
        return registry

    @classmethod
    def from_metrics(cls, registry) -> "PipelineCounters":
        counters = cls()
        counters.measurements = int(registry.counter("pipeline.measurements", 0))
        counters.pdn_time_s = float(registry.counter("pipeline.pdn_time_s", 0.0))
        counters.profile_cache_hits = int(
            registry.counter("pipeline.profile_cache_hits", 0)
        )
        counters.pdn_cache_hits = int(registry.counter("pipeline.pdn_cache_hits", 0))
        counters.batched_solves = int(registry.counter("pipeline.batched_solves", 0))
        counters.batched_rows = int(registry.counter("pipeline.batched_rows", 0))
        for name in registry.names():
            if name.startswith("pipeline.path."):
                counters.path_counts[name[len("pipeline.path."):]] = int(
                    registry.counter(name, 0)
                )
            elif name.startswith("pipeline.stage_wall_s."):
                counters.stage_wall_s[name[len("pipeline.stage_wall_s."):]] = float(
                    registry.counter(name, 0.0)
                )
        return counters

    def merge(self, other: "PipelineCounters") -> "PipelineCounters":
        """Order-independent merge via the metrics registry (counters sum)."""
        return PipelineCounters.from_metrics(
            self.to_metrics().merge(other.to_metrics())
        )


@runtime_checkable
class Stage(Protocol):
    """One pipeline stage: consumes the upstream artifact, emits its own."""

    name: str

    def run(self, *artifacts, **params): ...


class CompileStage:
    """Stage 1: place the program's threads onto the chip's modules."""

    name = "compile"

    def __init__(self, chip: ChipConfig):
        self.chip = chip
        self.cache = StageCache("compile")

    def run(self, request: MeasureRequest) -> CompiledProgram:
        # Memoised on the (hashable) program object: the content hash over
        # its repr is computed once per distinct program, not per call.
        cache_key = (request.program, request.threads, request.smt_phase_cycles)
        cached = self.cache.get(cache_key)
        if cached is not None:
            return cached
        counts = spread_placement(self.chip, request.threads)
        placement = tuple(counts)
        key = artifact_key(
            self.chip.name,
            request.program,
            request.threads,
            request.smt_phase_cycles,
            placement,
        )
        compiled = CompiledProgram(
            program=request.program,
            threads=request.threads,
            placement=placement,
            smt_phase_cycles=request.smt_phase_cycles,
            key=key,
        )
        self.cache.put(cache_key, compiled)
        return compiled


class ActivityStage:
    """Stage 2: simulate per-module activity and verify its periodicity.

    Owns the chip simulator (and therefore the module-trace memoisation)
    plus the profile cache: a supply or phase sweep over one compiled
    program hits the cache and never touches the simulator again.
    """

    name = "activity"

    def __init__(self, chip: ChipConfig, warmup_iterations: int,
                 counters: PipelineCounters):
        self.chip = chip
        self.warmup_iterations = warmup_iterations
        self.counters = counters
        self.chip_sim = ChipSimulator(chip)
        self.cache = StageCache("activity")

    def run(self, compiled: CompiledProgram) -> ActivityProfile:
        cached = self.cache.get(compiled.key)
        if cached is not None:
            self.counters.profile_cache_hits += 1
            return cached
        profile = self._build(compiled)
        self.cache.put(compiled.key, profile)
        return profile

    def _build(self, compiled: CompiledProgram) -> ActivityProfile:
        modules = []
        for count in compiled.placement:
            if count == 0:
                modules.append(None)
                continue
            programs = self._module_programs(
                compiled.program, count, compiled.smt_phase_cycles
            )
            trace = self.chip_sim.run_module(
                programs, max_iterations=self.warmup_iterations
            )
            modules.append(
                ModuleActivity(trace=trace, profile=trace.periodic_profile(),
                               count=count)
            )
        active = [m for m in modules if m is not None]
        periods = {m.profile[2] for m in active if m.profile is not None}
        all_periodic = (
            all(m.profile is not None for m in active) and len(periods) == 1
        )
        iteration_cycles = active[0].trace.steady_period(0) if active else None
        smt = any(count == 2 for count in compiled.placement)
        fallback_reason = ""
        if all_periodic:
            path = "jittered" if smt else "periodic"
            period_cycles = next(iter(periods))
        else:
            path = "transient"
            period_cycles = None
            nonperiodic = [
                i for i, m in enumerate(modules)
                if m is not None and m.profile is None
            ]
            if nonperiodic:
                fallback_reason = (
                    f"modules {nonperiodic} never reached a verified periodic "
                    f"profile within {self.warmup_iterations} iterations"
                )
            else:
                fallback_reason = (
                    f"modules disagree on activity period "
                    f"({sorted(periods)} cycles)"
                )
        return ActivityProfile(
            modules=tuple(modules),
            period_cycles=period_cycles,
            iteration_cycles=iteration_cycles,
            smt=smt,
            path=path,
            fallback_reason=fallback_reason,
            key=compiled.key,
        )

    def _module_programs(self, program, count: int,
                         smt_phase_cycles: int | None):
        """Programs for one module, applying the natural SMT phase offset."""
        if count == 1:
            return (program,)
        if smt_phase_cycles is None:
            # The natural misalignment of SMT siblings: half the period the
            # loop actually runs at when both threads share the module
            # (probed with a lockstep pair; memoised, so this costs one
            # extra simulation per distinct kernel).
            pair = self.chip_sim.run_module(
                (program, program), max_iterations=self.warmup_iterations
            )
            period = pair.steady_period(0)
            smt_phase_cycles = int(round(period / 2)) if period else 0
        return (program,) + tuple(
            program.with_phase(program.phase_cycles + smt_phase_cycles)
            for _ in range(count - 1)
        )


class PdnStage:
    """Stage 3: solve the PDN for a profile at given phases and supply.

    Keeps one :class:`TransientSolver` per supply voltage, a bounded
    response cache keyed ``(profile, phases, supply)``, and the batched
    row-assembly helpers the :class:`BatchMeasurementBackend` stacks into
    matrix solves.
    """

    name = "pdn"

    #: Loop repetitions simulated on the jittered (SMT-interference) path.
    JITTER_REPETITIONS = 80

    #: Per-repetition phase random-walk step bound (cycles), the modelled
    #: magnitude of shared-FPU loop-length perturbation.
    JITTER_STEP_CYCLES = 2

    def __init__(
        self,
        chip: ChipConfig,
        pdn: PdnParameters,
        *,
        jitter_seed: int,
        jitter_step_cycles: int,
        counters: PipelineCounters,
        cache_entries: int = 256,
    ):
        self.chip = chip
        self.pdn = pdn
        self.jitter_seed = jitter_seed
        self.jitter_step_cycles = jitter_step_cycles
        self.counters = counters
        self.cache = StageCache("pdn", max_entries=cache_entries)
        self._solvers: dict[float, TransientSolver] = {}
        self._energy_model = EnergyModel(chip.power, chip.vdd, chip.frequency_hz)

    # ------------------------------------------------------------------
    # Solvers per supply voltage (failure sweeps reuse module simulations)
    # ------------------------------------------------------------------
    def solver_at(self, supply_v: float) -> TransientSolver:
        solver = self._solvers.get(supply_v)
        if solver is None:
            params = PdnParameters(
                vdd_nominal=supply_v,
                board=self.pdn.board,
                package=self.pdn.package,
                die=self.pdn.die,
                load_line_ohm=self.pdn.load_line_ohm,
            )
            solver = TransientSolver(PdnNetwork(params), self.chip.cycle_time_s)
            self._solvers[supply_v] = solver
        return solver

    def solve(self, solve_fn, *args, **kwargs):
        start = time.perf_counter()
        result = solve_fn(*args, **kwargs)
        self.counters.pdn_time_s += time.perf_counter() - start
        return result

    def current_from_energy(
        self, energy_pj: np.ndarray, *, active_threads: int, supply_v: float
    ) -> np.ndarray:
        """Per-cycle module current at an arbitrary supply voltage.

        Lower supply means more current for the same switching energy —
        the feedback that deepens droops as the failure sweep descends.
        """
        p = self.chip.power
        dynamic = (
            np.asarray(energy_pj, dtype=np.float64)
            * 1e-12
            / (supply_v * self.chip.cycle_time_s)
        )
        clock = np.full_like(dynamic, active_threads * p.idle_clock_a)
        gated = active_threads * p.idle_clock_a * (1.0 - p.clock_gating_efficiency)
        clock[dynamic == 0.0] = gated
        return active_threads * p.leakage_a + clock + dynamic

    def idle_module_current(self) -> float:
        return self.chip.module.threads * self._energy_model.idle_current()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def response_key(self, profile: ActivityProfile, phases, supply: float):
        return (profile.key, tuple(phases), float(supply))

    def run(self, profile: ActivityProfile, *, phases, supply: float,
            use_cache: bool = True) -> PdnResponse:
        key = self.response_key(profile, phases, supply)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                self.counters.pdn_cache_hits += 1
                return cached
        if profile.path == "periodic":
            response = self._measure_periodic(profile, phases, supply)
        elif profile.path == "jittered":
            response = self._measure_jittered(profile, phases, supply)
        else:
            response = self._measure_transient(profile, phases, supply)
        self.cache.put(key, response)
        return response

    # ------------------------------------------------------------------
    # Row assembly (shared by the serial paths and the batched solver)
    # ------------------------------------------------------------------
    def _active_phases(self, profile: ActivityProfile, phases):
        return [
            (m, phases[i]) for i, m in enumerate(profile.modules) if m is not None
        ]

    def periodic_rows(self, profile: ActivityProfile, phases, supply: float):
        """One candidate's periodic current/sensitivity row (one period)."""
        active = self._active_phases(profile, phases)
        period = profile.period_cycles
        idle_count = self.chip.module_count - len(active)
        total_current = np.full(period, idle_count * self.idle_module_current())
        total_sens = np.zeros(period)
        for module, phase in active:
            energy, sens, _p = module.profile
            current = self.current_from_energy(
                energy, active_threads=module.count, supply_v=supply
            )
            total_current += np.roll(current, phase)
            np.maximum(total_sens, np.roll(sens, phase), out=total_sens)
        return total_current, total_sens

    def jittered_rows(self, profile: ActivityProfile, phases, supply: float):
        """One candidate's phase-random-walk row plus its DC baseline."""
        active = self._active_phases(profile, phases)
        period = profile.period_cycles
        reps = self.JITTER_REPETITIONS
        idle_count = self.chip.module_count - len(active)
        idle_level = idle_count * self.idle_module_current()
        length = reps * period
        total_current = np.full(length, idle_level)
        total_sens = np.zeros(length)
        rng = np.random.default_rng(self.jitter_seed)
        for module, phase in active:
            energy, sens, _p = module.profile
            current = self.current_from_energy(
                energy, active_threads=module.count, supply_v=supply
            )
            steps = rng.integers(
                -self.jitter_step_cycles, self.jitter_step_cycles + 1, size=reps
            )
            offsets = phase + np.cumsum(steps)
            module_current = np.concatenate(
                [np.roll(current, int(off)) for off in offsets]
            )
            module_sens = np.concatenate(
                [np.roll(sens, int(off)) for off in offsets]
            )
            total_current += module_current
            np.maximum(total_sens, module_sens, out=total_sens)
        return total_current, total_sens, float(total_current.mean())

    # ------------------------------------------------------------------
    # Serial solves
    # ------------------------------------------------------------------
    def _measure_periodic(self, profile, phases, supply: float) -> PdnResponse:
        total_current, total_sens = self.periodic_rows(profile, phases, supply)
        trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self.solve(self.solver_at(supply).steady_state_periodic, trace)
        return PdnResponse(
            voltage=voltage,
            sensitivity=total_sens,
            current=trace,
            period_cycles=profile.period_cycles,
            supply_v=supply,
        )

    def _measure_jittered(self, profile, phases, supply: float) -> PdnResponse:
        """SMT-pair measurement: loop phase wanders, resonance decoheres.

        Paper Section V.A.2: with two threads per module the shared FPU
        "shifts the loop lengths, making it difficult ... to oscillate at
        the resonant frequency".  Each module's periodic profile is tiled
        with a per-repetition phase random walk (independent per module)
        and the result is integrated in the time domain — spectral energy
        spreads off the resonance peak exactly as on hardware.
        """
        total_current, total_sens, baseline = self.jittered_rows(
            profile, phases, supply
        )
        trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self.solve(
            self.solver_at(supply).simulate,
            trace, baseline_current_a=baseline,
        )
        return PdnResponse(
            voltage=voltage,
            sensitivity=total_sens,
            current=trace,
            period_cycles=profile.period_cycles,
            supply_v=supply,
        )

    def _measure_transient(self, profile, phases, supply: float) -> PdnResponse:
        active = self._active_phases(profile, phases)
        idle_count = self.chip.module_count - len(active)
        idle_level = idle_count * self.idle_module_current()
        length = IDLE_PAD_CYCLES + max(
            min(FALLBACK_TILE_CYCLES, module.trace.cycles * 4)
            for module, _phase in active
        )
        total_current = np.full(length, idle_level)
        total_sens = np.zeros(length)
        per_module_idle = self.idle_module_current()
        for module, phase in active:
            current = self.current_from_energy(
                module.trace.energy_pj, active_threads=module.count,
                supply_v=supply,
            )
            sens = module.trace.sensitivity
            start = IDLE_PAD_CYCLES + phase
            # Tile the raw run (it may not be periodic) to fill the window.
            filled = 0
            while start + filled < length:
                take = min(len(current), length - start - filled)
                total_current[start + filled : start + filled + take] += current[:take]
                window = total_sens[start + filled : start + filled + take]
                np.maximum(window, sens[:take], out=window)
                filled += take
            total_current[:start] += per_module_idle
        current_trace = CurrentTrace(total_current, self.chip.cycle_time_s)
        voltage = self.solve(
            self.solver_at(supply).simulate,
            current_trace,
            baseline_current_a=self.chip.module_count * per_module_idle,
        )
        return PdnResponse(
            voltage=voltage,
            sensitivity=total_sens,
            current=current_trace,
            period_cycles=None,
            supply_v=supply,
        )

    # ------------------------------------------------------------------
    # Batched solves (one matrix call per group of same-length rows)
    # ------------------------------------------------------------------
    def run_batch(self, items) -> list[PdnResponse]:
        """Solve a group of same-path, same-period candidates in one call.

        *items* is a list of ``(profile, phases, supply)`` tuples whose
        profiles all dispatch to the same path ("periodic" or "jittered")
        with one common period, so the assembled rows form a rectangular
        matrix.  The network response is supply-independent (the nominal
        voltage only shifts the operating point), so one canonical solver
        serves every row; results are bit-identical to per-item serial
        solves.
        """
        path = items[0][0].path
        supplies = np.array([supply for _profile, _phases, supply in items])
        solver = self.solver_at(self.pdn.vdd_nominal)
        dt = self.chip.cycle_time_s
        if path == "periodic":
            rows = [
                self.periodic_rows(profile, phases, supply)
                for profile, phases, supply in items
            ]
            matrix = np.stack([current for current, _sens in rows])
            volts = self.solve(
                solver.steady_state_periodic_batch, matrix, vdd_rows=supplies
            )
        elif path == "jittered":
            rows = [
                self.jittered_rows(profile, phases, supply)
                for profile, phases, supply in items
            ]
            matrix = np.stack([current for current, _sens, _base in rows])
            baselines = np.array([base for _current, _sens, base in rows])
            volts = self.solve(
                solver.simulate_batch, matrix,
                baselines=baselines, vdd_rows=supplies,
            )
        else:
            raise ConfigurationError(
                f"batched PDN solves support periodic/jittered paths, not {path!r}"
            )
        self.counters.batched_solves += 1
        self.counters.batched_rows += len(items)
        responses = []
        for i, (profile, phases, supply) in enumerate(items):
            voltage = VoltageTrace(volts[i], dt, float(supplies[i]))
            response = PdnResponse(
                voltage=voltage,
                sensitivity=rows[i][1],
                current=CurrentTrace(matrix[i], dt),
                period_cycles=profile.period_cycles,
                supply_v=supply,
                batched=True,
            )
            # Populate (never consult) the response cache: later serial
            # repeats of the same point become hits.
            self.cache.put(self.response_key(profile, phases, supply), response)
            responses.append(response)
        return responses


class AnalyzeStage:
    """Stage 4: assemble the response into the public Measurement."""

    name = "analyze"

    def run(self, profile: ActivityProfile, response: PdnResponse) -> Measurement:
        return Measurement(
            voltage=response.voltage,
            sensitivity=response.sensitivity,
            current=response.current,
            period_cycles=response.period_cycles,
            supply_v=response.supply_v,
            iteration_cycles=(
                profile.iteration_cycles if profile.path != "transient" else None
            ),
        )
