"""The staged measurement pipeline: request in, measurement out.

``MeasurementPipeline`` wires the four stages together, owns the shared
:class:`~repro.pipeline.stages.PipelineCounters`, times every stage, and
emits one :class:`~repro.core.telemetry.StageEvent` per stage per
measurement.  ``measure_batch`` is the vectorized entry point: it runs
compile/activity per candidate, then groups candidates whose PDN rows
stack into a rectangular matrix and solves each group in a single scipy
call.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.telemetry import StageEvent, notify
from repro.errors import ConfigurationError, MeasurementError
from repro.obs.spans import span
from repro.pipeline.artifacts import Measurement, MeasureRequest
from repro.pipeline.stages import (
    DEFAULT_JITTER_SEED,
    DEFAULT_WARMUP_ITERATIONS,
    ActivityStage,
    AnalyzeStage,
    CompileStage,
    PdnStage,
    PipelineCounters,
)
from repro.power.trace import CurrentTrace


class MeasurementPipeline:
    """Compile → activity → pdn → analyze, with per-stage caches/timing.

    Pass ``activity=`` and ``counters=`` to share the chip simulator,
    profile cache, and counter ledger with another pipeline (the
    qualifier's perturbed platforms do this, so chip-simulation work is
    counted once no matter how many PDN variants consume it).
    """

    def __init__(
        self,
        chip,
        pdn,
        *,
        warmup_iterations: int = DEFAULT_WARMUP_ITERATIONS,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        jitter_step_cycles: int | None = None,
        activity: ActivityStage | None = None,
        counters: PipelineCounters | None = None,
        observers=(),
    ):
        if abs(pdn.vdd_nominal - chip.vdd) > 1e-9:
            raise ConfigurationError(
                "PDN nominal voltage must match the chip supply "
                f"({pdn.vdd_nominal} != {chip.vdd})"
            )
        if warmup_iterations < 8:
            raise ConfigurationError("warmup_iterations must be >= 8")
        if jitter_step_cycles is None:
            jitter_step_cycles = PdnStage.JITTER_STEP_CYCLES
        if jitter_step_cycles < 0:
            raise ConfigurationError("jitter_step_cycles must be >= 0")
        self.chip = chip
        if counters is None:
            counters = activity.counters if activity is not None else PipelineCounters()
        self.counters = counters
        self.compile = CompileStage(chip)
        if activity is None:
            activity = ActivityStage(chip, warmup_iterations, counters)
        self.activity = activity
        self.pdn_stage = PdnStage(
            chip, pdn,
            jitter_seed=jitter_seed,
            jitter_step_cycles=jitter_step_cycles,
            counters=counters,
        )
        self.analyze = AnalyzeStage()
        self.observers = tuple(observers)

    # ------------------------------------------------------------------
    # Serial measurement
    # ------------------------------------------------------------------
    def measure(self, request: MeasureRequest) -> Measurement:
        phases, supply = self._validated(request)
        with span("pipeline.measure", threads=request.threads) as measure_span:
            self.counters.measurements += 1
            profile = self._profile_for(request)
            self.counters.path_counts[profile.path] += 1
            measure_span.set(path=profile.path)
            response = self._timed_pdn(profile, phases, supply)
            start = time.perf_counter()
            measurement = self.analyze.run(profile, response)
            wall = time.perf_counter() - start
            self.counters.record_stage("analyze", wall)
            self._stage_event("analyze", wall)
        return measurement

    def measure_batch(self, requests) -> list[Measurement]:
        """Measure many requests, batching compatible PDN solves.

        Compile and activity run per candidate (hitting their caches as
        usual); candidates whose profiles share a dispatch path and period
        form rectangular row groups that solve in one matrix call.
        Transient fallbacks and singleton groups take the ordinary serial
        stage.  Results are bit-identical to :meth:`measure` in request
        order.
        """
        requests = list(requests)
        prepared = []
        for request in requests:
            phases, supply = self._validated(request)
            self.counters.measurements += 1
            profile = self._profile_for(request)
            self.counters.path_counts[profile.path] += 1
            prepared.append((profile, phases, supply))

        groups: dict = {}
        for idx, (profile, phases, supply) in enumerate(prepared):
            if profile.path in ("periodic", "jittered"):
                key = (profile.path, profile.period_cycles)
            else:
                key = ("transient", idx)
            groups.setdefault(key, []).append(idx)

        responses: list = [None] * len(requests)
        for (path, _), indices in groups.items():
            if path == "transient" or len(indices) == 1:
                for idx in indices:
                    profile, phases, supply = prepared[idx]
                    responses[idx] = self._timed_pdn(profile, phases, supply)
                continue
            start = time.perf_counter()
            with span("pipeline.pdn_solve", path=path, batched=True,
                      rows=len(indices)):
                solved = self.pdn_stage.run_batch([prepared[i] for i in indices])
            wall = time.perf_counter() - start
            self.counters.record_stage("pdn", wall)
            self._stage_event(
                "pdn", wall, batched=True, path=path,
                detail=f"{len(indices)} rows",
            )
            for idx, response in zip(indices, solved):
                responses[idx] = response

        start = time.perf_counter()
        measurements = [
            self.analyze.run(profile, response)
            for (profile, _phases, _supply), response in zip(prepared, responses)
        ]
        wall = time.perf_counter() - start
        self.counters.record_stage("analyze", wall)
        self._stage_event("analyze", wall, batched=True)
        return measurements

    # ------------------------------------------------------------------
    # Raw-trace measurement (synthetic workloads)
    # ------------------------------------------------------------------
    def measure_current(
        self,
        current: CurrentTrace,
        *,
        sensitivity=None,
        supply_v: float | None = None,
        baseline_current_a: float | None = None,
    ) -> Measurement:
        supply = self.chip.vdd if supply_v is None else supply_v
        if abs(current.dt - self.chip.cycle_time_s) > 1e-18:
            raise MeasurementError("current trace dt must match the chip clock")
        self.counters.measurements += 1
        baseline = (
            current.samples[0] if baseline_current_a is None else baseline_current_a
        )
        start = time.perf_counter()
        voltage = self.pdn_stage.solve(
            self.pdn_stage.solver_at(supply).simulate,
            current, baseline_current_a=baseline,
        )
        wall = time.perf_counter() - start
        self.counters.record_stage("pdn", wall)
        self._stage_event("pdn", wall, path="external")
        sens = (
            np.ones(len(current)) if sensitivity is None else
            np.asarray(sensitivity, dtype=np.float64)
        )
        if len(sens) != len(current):
            raise MeasurementError("sensitivity length must match the current trace")
        return Measurement(
            voltage=voltage,
            sensitivity=sens,
            current=current,
            period_cycles=None,
            supply_v=supply,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validated(self, request: MeasureRequest):
        phases = (
            list(request.module_phases) if request.module_phases
            else [0] * self.chip.module_count
        )
        if len(phases) != self.chip.module_count:
            raise MeasurementError("one phase per module required")
        supply = self.chip.vdd if request.supply_v is None else request.supply_v
        if supply <= 0:
            raise ConfigurationError("supply voltage must be positive")
        return tuple(int(p) for p in phases), supply

    def _profile_for(self, request: MeasureRequest):
        start = time.perf_counter()
        compiled = self.compile.run(request)
        wall = time.perf_counter() - start
        self.counters.record_stage("compile", wall)
        self._stage_event("compile", wall)

        start = time.perf_counter()
        hits_before = self.activity.cache.hits
        profile = self.activity.run(compiled)
        wall = time.perf_counter() - start
        self.counters.record_stage("activity", wall)
        self._stage_event(
            "activity", wall,
            cache_hit=self.activity.cache.hits > hits_before,
            path=profile.path,
            detail=profile.fallback_reason,
        )
        return profile

    def _timed_pdn(self, profile, phases, supply):
        start = time.perf_counter()
        hits_before = self.pdn_stage.cache.hits
        with span("pipeline.pdn_solve", path=profile.path) as solve_span:
            response = self.pdn_stage.run(profile, phases=phases, supply=supply)
            solve_span.set(cache_hit=self.pdn_stage.cache.hits > hits_before)
        wall = time.perf_counter() - start
        self.counters.record_stage("pdn", wall)
        self._stage_event(
            "pdn", wall,
            cache_hit=self.pdn_stage.cache.hits > hits_before,
            path=profile.path,
        )
        return response

    def _stage_event(self, stage, wall_s, **kwargs):
        if self.observers:
            notify(self.observers, StageEvent(stage=stage, wall_s=wall_s, **kwargs))
