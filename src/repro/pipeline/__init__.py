"""The staged measurement pipeline (compile → activity → pdn → analyze).

See :mod:`repro.pipeline.artifacts` for the typed artifacts,
:mod:`repro.pipeline.stages` for the stage implementations,
:mod:`repro.pipeline.pipeline` for the orchestrator, and
:mod:`repro.pipeline.batch` for the vectorized batch backend.
"""

from repro.pipeline.artifacts import (
    ActivityProfile,
    CompiledProgram,
    Measurement,
    MeasureRequest,
    ModuleActivity,
    PdnResponse,
    artifact_key,
)
from repro.pipeline.batch import BatchMeasurementBackend
from repro.pipeline.cache import StageCache
from repro.pipeline.pipeline import MeasurementPipeline
from repro.pipeline.stages import (
    ActivityStage,
    AnalyzeStage,
    CompileStage,
    PdnStage,
    PipelineCounters,
    Stage,
)

__all__ = [
    "ActivityProfile",
    "ActivityStage",
    "AnalyzeStage",
    "BatchMeasurementBackend",
    "CompileStage",
    "CompiledProgram",
    "Measurement",
    "MeasureRequest",
    "MeasurementPipeline",
    "ModuleActivity",
    "PdnResponse",
    "PdnStage",
    "PipelineCounters",
    "Stage",
    "StageCache",
    "artifact_key",
]
