"""Per-stage artifact caches keyed by content hashes."""

from __future__ import annotations

from collections import OrderedDict


class StageCache:
    """A counting (optionally LRU-bounded) cache for one pipeline stage.

    Keys are artifact content hashes (see
    :func:`repro.pipeline.artifacts.artifact_key`), so a hit means the
    stage's inputs are identical and its output can be reused verbatim.
    """

    def __init__(self, name: str, *, max_entries: int | None = None):
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.max_entries is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        self._entries[key] = value
        if self.max_entries is not None:
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
