#!/usr/bin/env python3
"""Voltage-at-failure analysis: droop is not the only failure indicator.

Reproduces the paper's Table I insight (Section V.A.4): the supply is
lowered in 12.5 mV decrements until each program fails.  SM2's droop is
benchmark-class, yet it fails at a much higher voltage because it exercises
sensitive paths (integer multiply/divide, load address paths) — a result a
droop-only simulator would get wrong.

Run:  python examples/failure_analysis.py
"""

from repro.analysis.report import format_table, vf_delta_label
from repro.experiments.setup import (
    bulldozer_testbed,
    program_failure_voltage,
    workload_failure_voltage,
)
from repro.isa.opcodes import default_table
from repro.workloads import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    spec_model,
    stressmark_program,
)


def main() -> None:
    platform = bulldozer_testbed()
    table = default_table()

    print("lowering supply in 12.5 mV steps until each program fails...\n")

    results = []  # (name, droop_mv, vf)
    for name, kernel in [
        ("A-Res", a_res_canned(table)),
        ("SM-Res", sm_res(table)),
        ("SM1", sm1(table)),
        ("A-Ex", a_ex_canned(table)),
        ("SM2", sm2(table)),
    ]:
        program = stressmark_program(kernel)
        droop = platform.measure_program(program, 4).max_droop_v
        vf = program_failure_voltage(platform, program, 4)
        results.append((name, droop, vf))

    zeusmp_droop = None
    from numpy.random import default_rng

    from repro.workloads.runner import run_workload

    zeusmp_droop = run_workload(
        platform, spec_model("zeusmp"), 4, rng=default_rng(1)
    ).max_droop_v
    vf_zeusmp = workload_failure_voltage(platform, spec_model("zeusmp"), 4)
    results.append(("zeusmp", zeusmp_droop, vf_zeusmp))

    reference = max(vf for _n, _d, vf in results)
    rows = [
        [name, f"{droop * 1e3:.1f} mV", f"{vf:.4f} V",
         vf_delta_label(vf, reference)]
        for name, droop, vf in results
    ]
    print(format_table(
        ["program", "max droop (nominal)", "failure voltage", "relative"],
        rows,
        title="voltage at failure, 4T (cf. paper Table I)",
    ))

    sm2_row = next(r for r in results if r[0] == "SM2")
    zeusmp_row = next(r for r in results if r[0] == "zeusmp")
    print(
        f"\nNote: SM2's droop ({sm2_row[1] * 1e3:.0f} mV) is below zeusmp's "
        f"({zeusmp_row[1] * 1e3:.0f} mV), yet SM2 fails at a HIGHER voltage "
        f"({sm2_row[2]:.4f} V vs {zeusmp_row[2]:.4f} V) — the sensitive-path "
        "effect of paper Section V.A.4."
    )


if __name__ == "__main__":
    main()
