#!/usr/bin/env python3
"""Droop survey: benchmarks vs. stressmarks across thread counts (Fig. 9).

Measures a representative slice of the paper's Fig. 9 grid — two SPEC-like
benchmarks, two PARSEC-like benchmarks, and the stressmark set — at 1, 2, 4,
and 8 threads, and prints droops relative to 4T SM1.  Also demonstrates the
Fig. 10 histogram view for one benchmark and one resonant stressmark.

Run:  python examples/droop_survey.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table
from repro.measure.droop import DroopHistogram
from repro.workloads import (
    a_ex_canned,
    a_res_canned,
    parsec_model,
    run_workload,
    sm1,
    sm2,
    sm_res,
    spec_model,
    stressmark_program,
)

THREADS = (1, 2, 4, 8)


def main() -> None:
    platform = bulldozer_testbed()
    table = default_table()

    droops: dict = {}

    stressmarks = {
        "SM1": sm1(table),
        "SM2": sm2(table),
        "SM-Res": sm_res(table),
        "A-Ex": a_ex_canned(table),
        "A-Res": a_res_canned(table),
    }
    print("measuring stressmarks (dithered worst-case alignment)...")
    for name, kernel in stressmarks.items():
        program = stressmark_program(kernel)
        droops[name] = {
            t: platform.measure_program(program, t).max_droop_v for t in THREADS
        }

    print("measuring benchmarks (SPECrate-style replication)...")
    for name, model in [
        ("zeusmp", spec_model("zeusmp")),
        ("hmmer", spec_model("hmmer")),
        ("swaptions", parsec_model("swaptions")),
        ("fluidanimate", parsec_model("fluidanimate")),
    ]:
        droops[name] = {
            t: run_workload(
                platform, model, t,
                duration_cycles=100_000, rng=np.random.default_rng(42),
            ).max_droop_v
            for t in THREADS
        }

    baseline = droops["SM1"][4]
    rows = [
        [name] + [f"{droops[name][t] / baseline:.2f}" for t in THREADS]
        for name in droops
    ]
    print()
    print(format_table(
        ["program", "1T", "2T", "4T", "8T"],
        rows,
        title="max droop relative to 4T SM1 (cf. paper Fig. 9)",
    ))

    # Histogram view (cf. paper Fig. 10).
    print("\nVdd histograms over 500k cycles (cf. paper Fig. 10):")
    zeusmp = run_workload(platform, spec_model("zeusmp"), 4,
                          duration_cycles=500_000,
                          rng=np.random.default_rng(7))
    a_res = platform.measure_program(
        stressmark_program(a_res_canned(table)), 4
    )
    a_res_long = np.tile(a_res.voltage.samples,
                         500_000 // len(a_res.voltage.samples))
    for name, samples in [("zeusmp", zeusmp.voltage.samples),
                          ("A-Res", a_res_long)]:
        hist = DroopHistogram.from_samples(samples, platform.chip.vdd, bins=60)
        print(f"  {name:8s} spread = {hist.spread_v() * 1e3:5.1f} mV, "
              f"mode sits {1e3 * (platform.chip.vdd - hist.modal_voltage):5.1f} mV "
              f"below nominal")


if __name__ == "__main__":
    main()
