#!/usr/bin/env python3
"""Quickstart: generate a di/dt stressmark with AUDIT in ~30 seconds.

Builds the Bulldozer-like testbed (4-module chip + its power-distribution
network), lets AUDIT detect the PDN's first-droop resonance, runs the GA
closed loop against measured voltage droops, and prints the winning
stressmark as NASM assembly alongside a comparison with the hand-tuned
expert stressmark.

Run:  python examples/quickstart.py
"""

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.experiments.setup import bulldozer_testbed
from repro.isa.encoder import encode_program
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import sm_res, stressmark_program


def main() -> None:
    # 1. Plug in the hardware: chip model + PDN + measurement path.
    platform = bulldozer_testbed()
    print(f"testbed: {platform.chip.name}, "
          f"{platform.chip.module_count} modules / "
          f"{platform.chip.total_threads} threads @ "
          f"{platform.chip.frequency_hz / 1e9:.1f} GHz, "
          f"Vdd = {platform.chip.vdd} V")

    # 2. Run AUDIT: resonance sweep + GA against measured droops.
    config = AuditConfig(
        threads=4,                       # one thread per module, dithered
        mode=StressmarkMode.RESONANT,    # first-droop resonance stressmark
        ga=GaConfig(population_size=16, generations=10, seed=1),
    )
    runner = AuditRunner(platform, config=config)
    print("\nrunning AUDIT (resonance sweep + GA closed loop)...")
    result = runner.run()

    print(f"detected first-droop resonance: "
          f"{result.resonance.resonance_hz / 1e6:.1f} MHz "
          f"({result.resonance.best_period_cycles} cycles)")
    print(f"GA evaluations: {result.ga_result.evaluations}")
    print(f"A-Res max droop (4T, dithered): "
          f"{result.max_droop_v * 1e3:.1f} mV")

    # 3. Compare with the hand-tuned expert stressmark.
    hand = platform.measure_program(
        stressmark_program(sm_res(default_table())), 4
    )
    print(f"hand-tuned SM-Res droop:        {hand.max_droop_v * 1e3:.1f} mV")
    print(f"AUDIT / hand-tuned:             "
          f"{result.max_droop_v / hand.max_droop_v:.2f}x")

    # 4. Emit the stressmark as NASM assembly (the paper's artifact).
    print("\n--- generated stressmark (NASM) ---")
    print(encode_program(result.program(), name="a_res"))


if __name__ == "__main__":
    main()
