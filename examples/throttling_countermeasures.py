#!/usr/bin/env python3
"""Droop mitigation vs. AUDIT: FPU throttling (the paper's Section V.B).

Enables the static FPU issue throttle and shows:

1. throttling collapses the droop of FP-resonant stressmarks;
2. SM1 keeps much of its droop (its integer stress path is untouched);
3. re-running AUDIT *with the throttle enabled* finds a new integer-heavy
   stress path — when one di/dt path is blocked, the tool finds another.

Run:  python examples/throttling_countermeasures.py
"""

from repro.analysis.report import format_table
from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import IClass, default_table
from repro.workloads.stressmarks import a_res_canned, sm1, sm_res, stressmark_program


def main() -> None:
    free = bulldozer_testbed()
    throttled = bulldozer_testbed(fp_throttle=1)
    table = default_table()

    kernels = {
        "SM1": sm1(table),
        "SM-Res": sm_res(table),
        "A-Res": a_res_canned(table),
    }
    rows = []
    for name, kernel in kernels.items():
        program = stressmark_program(kernel)
        base = free.measure_program(program, 4).max_droop_v
        capped = throttled.measure_program(program, 4).max_droop_v
        rows.append([name, f"{base * 1e3:.1f} mV", f"{capped * 1e3:.1f} mV",
                     f"{capped / base * 100:.0f} %"])
    print(format_table(
        ["stressmark", "no throttle", "FPU throttle", "droop retained"],
        rows,
        title="FPU throttling impact (cf. paper Table II)",
    ))

    print("\nre-running AUDIT against the throttled machine...")
    runner = AuditRunner(
        throttled,
        config=AuditConfig(
            threads=4,
            mode=StressmarkMode.RESONANT,
            ga=GaConfig(population_size=14, generations=10, seed=7),
        ),
    )
    result = runner.run(name="A-Res-Th")
    print(f"A-Res-Th droop under throttling: {result.max_droop_v * 1e3:.1f} mV")

    fp_fraction = result.kernel.fp_fraction
    int_ops = sum(
        1 for inst in result.kernel.hp
        if not inst.spec.is_fp and inst.spec.iclass is not IClass.NOP
    )
    print(f"A-Res-Th HP composition: {fp_fraction * 100:.0f} % FP ops, "
          f"{int_ops} integer ops — the GA routed power through the "
          "unthrottled integer clusters.")


if __name__ == "__main__":
    main()
