#!/usr/bin/env python3
"""Porting AUDIT to a different processor (the paper's Section V.C).

Swaps the Bulldozer part for the Phenom-II-like chip on the same board and
shows the three adaptation behaviours the paper demonstrates:

1. the FMA4-based SM1 stressmark is rejected outright (incompatible ISA);
2. the resonance sweep finds the *new* first-droop frequency (~80 MHz
   instead of ~100 MHz — the on-die decap changed with the processor);
3. AUDIT regenerates a resonant stressmark for the new part that matches
   or beats the surviving hand-tuned stressmark, with zero manual retuning.

Run:  python examples/port_to_new_processor.py
"""

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.core.resonance import find_resonance
from repro.errors import SchedulingError
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import sm1, sm2, stressmark_program


def main() -> None:
    table = default_table()

    # The old and the new testbed share the board; only the chip changed.
    old = bulldozer_testbed()
    new = phenom_testbed()
    print(f"old processor: {old.chip.name} @ {old.chip.frequency_hz / 1e9:.1f} GHz "
          f"({sorted(old.chip.extensions)})")
    print(f"new processor: {new.chip.name} @ {new.chip.frequency_hz / 1e9:.1f} GHz "
          f"({sorted(new.chip.extensions)})")

    # 1. SM1 depends on FMA4 and must be rejected on the older part.
    try:
        new.measure_program(stressmark_program(sm1(table)), 4)
        print("\nSM1 ran on the Phenom — unexpected!")
    except SchedulingError as error:
        print(f"\nSM1 rejected on the new part, as on real hardware: {error}")

    # 2. The resonance moved with the processor; AUDIT's sweep finds it.
    for name, platform in (("bulldozer", old), ("phenom", new)):
        sweep = find_resonance(platform, table, threads=1,
                               period_candidates=list(range(16, 73, 4)))
        print(f"{name}: first-droop resonance at "
              f"{sweep.resonance_hz / 1e6:.1f} MHz "
              f"({sweep.best_period_cycles} cycles at "
              f"{platform.chip.frequency_hz / 1e9:.1f} GHz)")

    # 3. Re-run the full AUDIT loop against the new part.
    print("\nregenerating a resonant stressmark for the Phenom...")
    runner = AuditRunner(
        new,
        config=AuditConfig(
            threads=4,
            mode=StressmarkMode.RESONANT,
            ga=GaConfig(population_size=12, generations=8, seed=5),
        ),
    )
    result = runner.run()
    phenom_pool = table.supported_on(new.chip.extensions)
    hand = new.measure_program(
        stressmark_program(sm2(phenom_pool, period_cycles=35)), 4
    )
    print(f"AUDIT A-Res droop on Phenom:  {result.max_droop_v * 1e3:.1f} mV")
    print(f"hand-tuned SM2 droop:         {hand.max_droop_v * 1e3:.1f} mV")
    print(f"AUDIT / hand-tuned:           "
          f"{result.max_droop_v / hand.max_droop_v:.2f}x "
          "(paper: 1.10x, same direction)")


if __name__ == "__main__":
    main()
