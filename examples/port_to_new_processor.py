#!/usr/bin/env python3
"""Porting AUDIT to a different processor (the paper's Section V.C).

Swaps the Bulldozer part for the Phenom-II-like chip on the same board and
shows the three adaptation behaviours the paper demonstrates:

1. the FMA4-based SM1 stressmark is rejected outright (incompatible ISA);
2. the resonance sweep finds the *new* first-droop frequency (~80 MHz
   instead of ~100 MHz — the on-die decap changed with the processor);
3. a scenario-matrix *fleet* characterizes both parts in one shot — the
   re-tuning the paper does by hand is just another axis value, and the
   cross-platform report shows AUDIT matching or beating the surviving
   hand-tuned stressmark on the new part with zero manual retuning.

The equivalent from the command line (see README "Characterize a new
platform"):

    repro fleet run --matrix chip=bulldozer,phenom --matrix threads=4 \\
        --matrix budget=12x8 --matrix seed=5 --dir fleet/ --workers 2

Run:  python examples/port_to_new_processor.py
"""

import tempfile

from repro.core.resonance import find_resonance
from repro.errors import SchedulingError
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.fleet import FleetOrchestrator, ScenarioMatrix
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import sm1, sm2, stressmark_program


def main() -> None:
    table = default_table()

    # The old and the new testbed share the board; only the chip changed.
    old = bulldozer_testbed()
    new = phenom_testbed()
    print(f"old processor: {old.chip.name} @ {old.chip.frequency_hz / 1e9:.1f} GHz "
          f"({sorted(old.chip.extensions)})")
    print(f"new processor: {new.chip.name} @ {new.chip.frequency_hz / 1e9:.1f} GHz "
          f"({sorted(new.chip.extensions)})")

    # 1. SM1 depends on FMA4 and must be rejected on the older part.
    try:
        new.measure_program(stressmark_program(sm1(table)), 4)
        print("\nSM1 ran on the Phenom — unexpected!")
    except SchedulingError as error:
        print(f"\nSM1 rejected on the new part, as on real hardware: {error}")

    # 2. The resonance moved with the processor; AUDIT's sweep finds it.
    for name, platform in (("bulldozer", old), ("phenom", new)):
        sweep = find_resonance(platform, table, threads=1,
                               period_candidates=list(range(16, 73, 4)))
        print(f"{name}: first-droop resonance at "
              f"{sweep.resonance_hz / 1e6:.1f} MHz "
              f"({sweep.best_period_cycles} cycles at "
              f"{platform.chip.frequency_hz / 1e9:.1f} GHz)")

    # 3. Characterize both parts with one fleet: the chip is an axis, not
    #    a porting effort.  Each scenario is a full checkpointed AUDIT
    #    campaign; the report is the cross-platform comparison.
    print("\nrunning the two-platform characterization fleet...")
    matrix = ScenarioMatrix(
        chip=("bulldozer", "phenom"),
        threads=(4,),
        budget=("12x8",),
        seed=(5,),
    )
    with tempfile.TemporaryDirectory(prefix="audit-fleet-") as fleet_dir:
        report = FleetOrchestrator(matrix, fleet_dir, workers=1).run()
    for key, result in report.best_per_platform().items():
        print(f"best[{key}]: {result.scenario_id} "
              f"({result.droop_v * 1e3:.1f} mV droop)")

    # The hand-tuned comparison point the paper keeps: SM2 still runs on
    # the Phenom, and the regenerated stressmark should match or beat it.
    phenom_pool = table.supported_on(new.chip.extensions)
    hand = new.measure_program(
        stressmark_program(sm2(phenom_pool, period_cycles=35)), 4
    )
    phenom_best = report.best_per_platform()["phenom/nominal"]
    print(f"AUDIT A-Res droop on Phenom:  {phenom_best.droop_v * 1e3:.1f} mV")
    print(f"hand-tuned SM2 droop:         {hand.max_droop_v * 1e3:.1f} mV")
    print(f"AUDIT / hand-tuned:           "
          f"{phenom_best.droop_v / hand.max_droop_v:.2f}x "
          "(paper: 1.10x, same direction)")


if __name__ == "__main__":
    main()
