"""Tests for PDN parameter sets."""

import pytest

from repro.errors import ConfigurationError
from repro.pdn.elements import LadderStage, PdnParameters, bulldozer_pdn, phenom_pdn


class TestLadderStage:
    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            LadderStage(0.0, 1e-9, 1e-6, 1e-3)
        with pytest.raises(ConfigurationError):
            LadderStage(1e-3, -1e-9, 1e-6, 1e-3)

    def test_natural_frequency(self):
        # 1 nH with 1 uF -> ~5.03 MHz
        stage = LadderStage(1e-3, 1e-9, 1e-6, 1e-3)
        assert stage.natural_frequency_hz == pytest.approx(5.033e6, rel=1e-3)

    def test_characteristic_impedance_and_q(self):
        stage = LadderStage(1e-3, 1e-9, 1e-6, 1e-3)
        assert stage.characteristic_impedance_ohm == pytest.approx(0.0316, rel=1e-2)
        assert stage.quality_factor == pytest.approx(0.0316 / 2e-3, rel=1e-2)


class TestPdnParameters:
    def test_bulldozer_first_droop_near_100mhz(self):
        params = bulldozer_pdn()
        assert params.first_droop_frequency_hz == pytest.approx(100e6, rel=0.02)

    def test_phenom_first_droop_near_80mhz(self):
        params = phenom_pdn()
        assert params.first_droop_frequency_hz == pytest.approx(80e6, rel=0.02)

    def test_stage_frequencies_strictly_ordered(self):
        p = bulldozer_pdn()
        f3 = p.board.natural_frequency_hz
        f2 = p.package.natural_frequency_hz
        f1 = p.die.natural_frequency_hz
        assert f3 < f2 < f1

    def test_misordered_stages_rejected(self):
        p = bulldozer_pdn()
        with pytest.raises(ConfigurationError):
            PdnParameters(vdd_nominal=1.2, board=p.die, package=p.package, die=p.board)

    def test_dc_resistance_sums_path_resistances(self):
        p = bulldozer_pdn()
        expected = (p.board.resistance_ohm + p.package.resistance_ohm
                    + p.die.resistance_ohm)
        assert p.dc_resistance_ohm == pytest.approx(expected)

    def test_load_line_adds_to_dc_resistance(self):
        p = bulldozer_pdn().with_load_line(1e-3)
        assert p.dc_resistance_ohm == pytest.approx(
            bulldozer_pdn().dc_resistance_ohm + 1e-3
        )

    def test_load_line_default_disabled(self):
        assert bulldozer_pdn().load_line_ohm == 0.0

    def test_negative_load_line_rejected(self):
        with pytest.raises(ConfigurationError):
            bulldozer_pdn().with_load_line(-1e-3)

    def test_phenom_shares_board_with_bulldozer(self):
        # Paper Section V.C: same board, different processor.
        assert phenom_pdn().board == bulldozer_pdn(vdd=1.3).board
        assert phenom_pdn().package == bulldozer_pdn(vdd=1.3).package
        assert phenom_pdn().die != bulldozer_pdn().die

    def test_rejects_nonpositive_vdd(self):
        p = bulldozer_pdn()
        with pytest.raises(ConfigurationError):
            PdnParameters(vdd_nominal=0.0, board=p.board, package=p.package, die=p.die)
