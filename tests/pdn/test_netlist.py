"""Tests for the HSPICE netlist exporter."""

import numpy as np
import pytest

from repro.errors import PdnError
from repro.pdn.elements import bulldozer_pdn
from repro.pdn.netlist import export_netlist, parse_netlist_elements
from repro.power.trace import CurrentTrace, square_wave

DT = 1 / 3.2e9


@pytest.fixture()
def load():
    return square_wave(high_a=30, low_a=5, high_samples=16, low_samples=16,
                       periods=10, dt=DT)


class TestExport:
    def test_deck_structure(self, load):
        deck = export_netlist(bulldozer_pdn(), load)
        assert deck.startswith("* ")
        assert "Vvrm vrm 0 DC" in deck
        assert ".tran" in deck
        assert deck.rstrip().endswith(".end")
        assert "Iload die 0 PWL(" in deck

    def test_all_three_stages_present(self, load):
        deck = export_netlist(bulldozer_pdn(), load)
        for stage in ("board", "pkg", "die"):
            assert f"R{stage} " in deck
            assert f"L{stage} " in deck
            assert f"C{stage} " in deck
            assert f"Resr_{stage} " in deck

    def test_element_values_round_trip(self, load):
        params = bulldozer_pdn()
        elements = parse_netlist_elements(export_netlist(params, load))
        assert elements["Rboard"] == pytest.approx(params.board.resistance_ohm)
        assert elements["Lpkg"] == pytest.approx(params.package.inductance_h)
        assert elements["Cdie"] == pytest.approx(params.die.capacitance_f)
        assert elements["Resr_die"] == pytest.approx(params.die.esr_ohm)
        assert elements["Vvrm"] == pytest.approx(params.vdd_nominal)

    def test_load_line_emitted_only_when_enabled(self, load):
        without = export_netlist(bulldozer_pdn(), load)
        assert "Rll" not in without
        with_ll = export_netlist(bulldozer_pdn().with_load_line(1e-3), load)
        assert "Rll vrm vrm_ll" in with_ll

    def test_pwl_covers_the_whole_trace(self, load):
        deck = export_netlist(bulldozer_pdn(), load)
        pwl = deck.split("PWL(")[1].split(")")[0].split()
        times = [float(v) for v in pwl[0::2]]
        assert times[0] == 0.0
        assert times[-1] == pytest.approx((len(load) - 1) * DT)
        assert times == sorted(times)

    def test_long_traces_are_decimated(self):
        long_load = CurrentTrace(np.random.default_rng(0).uniform(0, 30, 200_000), DT)
        deck = export_netlist(bulldozer_pdn(), long_load, max_pwl_points=1000)
        pwl = deck.split("PWL(")[1].split(")")[0].split()
        assert len(pwl) // 2 <= 1002

    def test_validation(self, load):
        with pytest.raises(PdnError):
            export_netlist(bulldozer_pdn(), load, max_pwl_points=1)
