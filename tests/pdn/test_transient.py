"""Tests for the transient solver: accuracy, stability, and droop physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PdnError
from repro.pdn.elements import bulldozer_pdn
from repro.pdn.impedance import first_droop_frequency
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver, VoltageTrace
from repro.power.trace import CurrentTrace, square_wave, step_load

DT = 1 / 3.2e9
VDD = 1.2


@pytest.fixture(scope="module")
def network():
    return PdnNetwork(bulldozer_pdn())


@pytest.fixture(scope="module")
def solver(network):
    return TransientSolver(network, DT)


@pytest.fixture(scope="module")
def resonant_period(network):
    f1 = first_droop_frequency(network)
    return round(1.0 / (f1 * DT))


class TestVoltageTrace:
    def test_metrics(self):
        tr = VoltageTrace(np.array([1.2, 1.1, 1.25]), DT, VDD)
        assert tr.min_v == pytest.approx(1.1)
        assert tr.max_v == pytest.approx(1.25)
        assert tr.max_droop_v == pytest.approx(0.1)
        assert tr.max_overshoot_v == pytest.approx(0.05)
        assert tr.worst_droop_index == 1

    def test_droop_clamped_at_zero(self):
        tr = VoltageTrace(np.array([1.3, 1.25]), DT, VDD)
        assert tr.max_droop_v == 0.0

    def test_validation(self):
        with pytest.raises(PdnError):
            VoltageTrace(np.array([]), DT, VDD)
        with pytest.raises(PdnError):
            VoltageTrace(np.ones(3), 0.0, VDD)

    def test_time_axis(self):
        tr = VoltageTrace(np.ones(3), DT, VDD)
        np.testing.assert_allclose(tr.time_axis(), [0, DT, 2 * DT])


class TestTransientAccuracy:
    def test_zero_load_holds_nominal_voltage(self, solver):
        quiet = CurrentTrace(np.zeros(1000), DT)
        v = solver.simulate(quiet)
        np.testing.assert_allclose(v.samples, VDD, atol=1e-12)

    def test_dc_load_settles_to_ir_drop(self, network, solver):
        const = CurrentTrace(np.full(3_000_000, 20.0), DT)
        v = solver.simulate(const)
        expected = VDD - network.dc_droop(20.0)
        assert v.samples[-1] == pytest.approx(expected, abs=1e-4)

    def test_long_simulation_numerically_stable(self, solver):
        const = CurrentTrace(np.full(3_000_000, 20.0), DT)
        v = solver.simulate(const)
        assert np.all(np.isfinite(v.samples))
        assert np.all(np.abs(v.samples - VDD) < 0.5)

    def test_baseline_current_starts_in_steady_state(self, network, solver):
        const = CurrentTrace(np.full(100, 15.0), DT)
        v = solver.simulate(const, baseline_current_a=15.0)
        expected = VDD - network.dc_droop(15.0)
        np.testing.assert_allclose(v.samples, expected, atol=1e-9)

    def test_matches_direct_state_space_recurrence(self, solver):
        """sosfilt path must agree with a literal state-space recurrence."""
        rng = np.random.default_rng(7)
        load = rng.uniform(0, 30, size=400)
        v_fast = solver.simulate(CurrentTrace(load, DT)).samples
        ad, bd = solver._ad, solver._bd
        cd, dd = solver._cd, solver._dd
        x = np.zeros((ad.shape[0], 1))
        v_ref = np.empty(len(load))
        for k, i_k in enumerate(load):
            v_ref[k] = VDD + (cd @ x + dd * i_k)[0, 0]
            x = ad @ x + bd * i_k
        np.testing.assert_allclose(v_fast, v_ref, atol=1e-9)

    def test_dt_mismatch_rejected(self, solver):
        with pytest.raises(PdnError):
            solver.simulate(CurrentTrace(np.ones(10), DT * 2))

    def test_bad_dt_rejected(self, network):
        with pytest.raises(PdnError):
            TransientSolver(network, 0.0)


class TestDroopPhysics:
    def test_current_step_causes_droop_then_recovery_ring(self, solver):
        step = step_load(low_a=5, high_a=40, low_samples=300, high_samples=600, dt=DT)
        v = solver.simulate(step, baseline_current_a=5.0)
        assert v.max_droop_v > 0.01
        # First droop rings: there is an overshoot above the post-step DC level.
        post_dc = VDD - solver.network.dc_droop(40.0)
        assert v.samples[300:].max() > post_dc

    def test_resonant_load_builds_larger_droop_than_single_step(
        self, solver, resonant_period
    ):
        """Paper Fig. 4: resonance grows in amplitude vs a single event."""
        h = resonant_period // 2
        period = square_wave(40, 5, h, resonant_period - h, 1, DT)
        resonant = solver.steady_state_periodic(period).max_droop_v
        step = step_load(5, 40, 300, 600, DT)
        excitation = solver.simulate(step, baseline_current_a=5.0).max_droop_v
        assert resonant > 1.2 * excitation

    def test_on_resonance_beats_off_resonance(self, solver, resonant_period):
        h = resonant_period // 2
        on_res = square_wave(40, 5, h, resonant_period - h, 1, DT)
        off_len = resonant_period * 2  # half the resonant frequency
        off_res = square_wave(40, 5, off_len // 2, off_len - off_len // 2, 1, DT)
        droop_on = solver.steady_state_periodic(on_res).max_droop_v
        droop_off = solver.steady_state_periodic(off_res).max_droop_v
        assert droop_on > 1.3 * droop_off

    def test_steady_state_periodic_matches_long_transient(
        self, solver, resonant_period
    ):
        h = resonant_period // 2
        period = square_wave(40, 5, h, resonant_period - h, 1, DT)
        ss = solver.steady_state_periodic(period)
        long = solver.simulate(period.tile(3000), baseline_current_a=period.mean_a)
        late_min = long.samples[len(long.samples) // 2 :].min()
        assert ss.min_v == pytest.approx(late_min, abs=2e-3)

    def test_larger_swing_larger_droop(self, solver, resonant_period):
        h = resonant_period // 2
        small = square_wave(20, 5, h, resonant_period - h, 1, DT)
        large = square_wave(40, 5, h, resonant_period - h, 1, DT)
        assert (
            solver.steady_state_periodic(large).max_droop_v
            > solver.steady_state_periodic(small).max_droop_v
        )

    def test_impulse_response_decays(self, solver):
        h = solver.impulse_response(200_000)
        assert np.abs(h[-100:]).max() < np.abs(h[:100]).max() * 1e-2

    def test_impulse_response_validation(self, solver):
        with pytest.raises(PdnError):
            solver.impulse_response(0)


class TestLinearityProperties:
    @given(scale=st.floats(0.1, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_response_scales_linearly(self, scale):
        solver = TransientSolver(PdnNetwork(bulldozer_pdn()), DT)
        base = square_wave(30, 5, 16, 16, 5, DT)
        v1 = solver.simulate(base)
        v2 = solver.simulate(base.scaled(scale))
        dev1 = v1.samples - VDD
        dev2 = v2.samples - VDD
        np.testing.assert_allclose(dev2, dev1 * scale, atol=1e-9, rtol=1e-6)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_superposition(self, seed):
        solver = TransientSolver(PdnNetwork(bulldozer_pdn()), DT)
        rng = np.random.default_rng(seed)
        a = CurrentTrace(rng.uniform(0, 20, 256), DT)
        b = CurrentTrace(rng.uniform(0, 20, 256), DT)
        va = solver.simulate(a).samples - VDD
        vb = solver.simulate(b).samples - VDD
        vab = solver.simulate(a + b).samples - VDD
        np.testing.assert_allclose(vab, va + vb, atol=1e-9)
