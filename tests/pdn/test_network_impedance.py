"""Tests for the PDN state-space network and impedance analysis."""

import numpy as np
import pytest

from repro.errors import PdnError
from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.pdn.impedance import first_droop_frequency, sweep_impedance
from repro.pdn.network import PdnNetwork


@pytest.fixture(scope="module")
def network():
    return PdnNetwork(bulldozer_pdn())


class TestNetworkAssembly:
    def test_state_dimension(self, network):
        assert network.a_matrix.shape == (6, 6)
        assert network.b_matrix.shape == (6, 1)
        assert network.c_matrix.shape == (1, 6)
        assert network.d_matrix.shape == (1, 1)

    def test_network_is_stable(self, network):
        eigenvalues = np.linalg.eigvals(network.a_matrix)
        assert np.all(eigenvalues.real < 0)

    def test_dc_impedance_equals_path_resistance(self, network):
        z0 = network.impedance(np.array([0.0]))[0]
        assert z0 == pytest.approx(network.params.dc_resistance_ohm, rel=1e-6)

    def test_dc_droop_scales_linearly(self, network):
        assert network.dc_droop(20.0) == pytest.approx(2 * network.dc_droop(10.0))

    def test_negative_frequency_rejected(self, network):
        with pytest.raises(PdnError):
            network.transfer(np.array([-1.0]))

    def test_load_line_raises_dc_impedance(self):
        base = PdnNetwork(bulldozer_pdn())
        with_ll = PdnNetwork(bulldozer_pdn().with_load_line(1e-3))
        z_base = base.impedance(np.array([0.0]))[0]
        z_ll = with_ll.impedance(np.array([0.0]))[0]
        assert z_ll == pytest.approx(z_base + 1e-3, rel=1e-6)

    def test_transfer_is_negative_real_at_dc(self, network):
        h0 = network.transfer(np.array([0.0]))[0]
        assert h0.real < 0
        assert abs(h0.imag) < 1e-12


class TestImpedanceSweep:
    def test_finds_three_resonances_in_order(self, network):
        sweep = sweep_impedance(network)
        labels = [r.label for r in sweep.resonances]
        assert labels == ["third", "second", "first"]
        freqs = [r.frequency_hz for r in sweep.resonances]
        assert freqs == sorted(freqs)

    def test_first_droop_frequency_near_design_target(self, network):
        sweep = sweep_impedance(network)
        assert sweep.first_droop.frequency_hz == pytest.approx(100e6, rel=0.05)

    def test_first_droop_peak_dominates_other_resonances(self, network):
        # Paper Section II: second/third droops are typically smaller in
        # magnitude than first droop.
        sweep = sweep_impedance(network)
        first = sweep.first_droop.impedance_ohm
        assert first > sweep.resonance("second").impedance_ohm
        assert first > sweep.resonance("third").impedance_ohm

    def test_peak_impedance_well_above_dc(self, network):
        sweep = sweep_impedance(network)
        assert sweep.first_droop.impedance_ohm > 3 * network.params.dc_resistance_ohm

    def test_resonance_lookup_unknown_label(self, network):
        sweep = sweep_impedance(network)
        with pytest.raises(PdnError):
            sweep.resonance("fourth")

    def test_sweep_argument_validation(self, network):
        with pytest.raises(PdnError):
            sweep_impedance(network, f_min_hz=0)
        with pytest.raises(PdnError):
            sweep_impedance(network, f_min_hz=1e6, f_max_hz=1e3)
        with pytest.raises(PdnError):
            sweep_impedance(network, points=4)

    def test_fine_first_droop_search(self, network):
        f1 = first_droop_frequency(network)
        assert f1 == pytest.approx(100e6, rel=0.05)

    def test_phenom_resonates_lower_than_bulldozer(self):
        f_bd = first_droop_frequency(PdnNetwork(bulldozer_pdn()))
        f_ph = first_droop_frequency(PdnNetwork(phenom_pdn()))
        assert f_ph < f_bd
        assert f_ph == pytest.approx(80e6, rel=0.06)
