"""Physics invariants of the PDN model, checked property-style.

These pin down the solver against closed-form electrical identities, so a
regression in matrix assembly or discretisation cannot hide behind
"numbers changed a little".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver
from repro.power.trace import CurrentTrace, square_wave

DT = 1 / 3.2e9


@pytest.fixture(scope="module")
def network():
    return PdnNetwork(bulldozer_pdn())


@pytest.fixture(scope="module")
def solver(network):
    return TransientSolver(network, DT)


class TestElectricalIdentities:
    def test_impulse_response_sums_to_dc_resistance(self, network, solver):
        """sum(h) * 1A = steady-state IR drop: the discrete DC identity."""
        h = solver.impulse_response(3_000_000)
        assert -h.sum() == pytest.approx(network.params.dc_resistance_ohm,
                                         rel=1e-3)

    def test_periodic_steady_state_mean_is_ir_drop(self, network, solver):
        """mean(v) = vdd - R_dc * mean(i), exactly, for any periodic load."""
        rng = np.random.default_rng(3)
        load = CurrentTrace(rng.uniform(0, 40, size=128), DT)
        v = solver.steady_state_periodic(load)
        expected = 1.2 - network.params.dc_resistance_ohm * load.mean_a
        assert v.samples.mean() == pytest.approx(expected, rel=1e-9)

    def test_impedance_hermitian_symmetry_at_dc(self, network):
        h = network.transfer(np.array([0.0]))[0]
        assert abs(h.imag) < 1e-15

    def test_impedance_rolls_off_at_high_frequency(self, network):
        """Above the first droop the die decap shorts the load: |Z| falls
        toward the decap ESR + die path floor."""
        z_peak = network.impedance(np.array([100e6]))[0]
        z_high = network.impedance(np.array([3e9]))[0]
        assert z_high < z_peak / 2

    @given(freq=st.floats(1e4, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_impedance_is_finite_and_positive(self, freq):
        network = PdnNetwork(bulldozer_pdn())
        z = network.impedance(np.array([freq]))[0]
        assert np.isfinite(z)
        assert z > 0

    @given(seed=st.integers(0, 10_000), n=st.integers(8, 256))
    @settings(max_examples=25, deadline=None)
    def test_periodic_response_bounded_by_worst_case_impedance(self, seed, n):
        """Peak deviation <= sum over harmonics of |Z_k·I_k| (triangle
        inequality in the frequency domain)."""
        network = PdnNetwork(bulldozer_pdn())
        solver = TransientSolver(network, DT)
        rng = np.random.default_rng(seed)
        load = CurrentTrace(rng.uniform(0, 30, size=n), DT)
        v = solver.steady_state_periodic(load)
        spectrum = np.fft.rfft(load.samples) / n
        freqs = np.fft.rfftfreq(n, d=DT)
        h = network.transfer(freqs)
        bound = np.abs(h[0] * spectrum[0]) + 2 * np.sum(
            np.abs(h[1:] * spectrum[1:])
        )
        worst_dev = np.max(np.abs(v.samples - 1.2))
        assert worst_dev <= bound + 1e-12

    def test_causality_no_response_before_stimulus(self, solver):
        load = CurrentTrace(
            np.concatenate([np.zeros(500), np.full(500, 30.0)]), DT
        )
        v = solver.simulate(load)
        np.testing.assert_allclose(v.samples[:500], 1.2, atol=1e-12)

    def test_passivity_constant_load_never_overshoots_nominal(self, solver):
        """Monotone step into a passive network cannot push v above vdd
        before the first current change arrives back (no energy sources)."""
        load = CurrentTrace(np.full(100_000, 25.0), DT)
        v = solver.simulate(load)
        assert v.max_v <= 1.2 + 1e-9


class TestCrossChipConsistency:
    def test_same_board_same_low_frequency_impedance(self):
        """The Phenom swap keeps the board: below ~1 MHz the two PDNs agree."""
        z_bd = PdnNetwork(bulldozer_pdn(1.2)).impedance(np.array([1e4, 1e5]))
        z_ph = PdnNetwork(phenom_pdn(1.3)).impedance(np.array([1e4, 1e5]))
        np.testing.assert_allclose(z_bd, z_ph, rtol=0.05)

    def test_different_die_different_first_droop(self):
        f = np.linspace(60e6, 140e6, 500)
        z_bd = PdnNetwork(bulldozer_pdn(1.2)).impedance(f)
        z_ph = PdnNetwork(phenom_pdn(1.3)).impedance(f)
        assert abs(f[z_bd.argmax()] - f[z_ph.argmax()]) > 10e6


class TestResonanceBuildup:
    def test_droop_grows_monotonically_with_periods_applied(self, solver):
        """Fig. 4's right panel: each resonant period deepens the droop
        until saturation."""
        period = square_wave(40, 5, 16, 16, 1, DT)
        droops = []
        for reps in (1, 2, 4, 8, 16, 64):
            v = solver.simulate(period.tile(reps),
                                baseline_current_a=period.mean_a)
            droops.append(v.max_droop_v)
        assert droops == sorted(droops)
        # And it saturates at the periodic steady state.
        steady = solver.steady_state_periodic(period).max_droop_v
        assert droops[-1] == pytest.approx(steady, rel=0.05)

    def test_quality_factor_sets_buildup_time(self, solver):
        """Within the first few periods the droop is well below steady
        state — resonance needs M cycles to build (the dithering M)."""
        period = square_wave(40, 5, 16, 16, 1, DT)
        first = solver.simulate(period,
                                baseline_current_a=period.mean_a).max_droop_v
        steady = solver.steady_state_periodic(period).max_droop_v
        assert first < 0.6 * steady
