"""Tests for the Joseph-Brooks baseline stressmark and cache-level memory ops."""

import pytest

from repro.core.platform import MeasurementPlatform
from repro.errors import IsaError
from repro.isa import Instruction, default_table, make_independent
from repro.isa.kernels import build_kernel
from repro.isa.registers import GPRS
from repro.pdn.elements import bulldozer_pdn
from repro.uarch.config import bulldozer_chip
from repro.uarch.module import ModuleSimulator
from repro.isa.kernels import ThreadProgram
from repro.workloads.stressmarks import a_res_canned, joseph_brooks, sm_res, stressmark_program

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


class TestMemoryLevels:
    def test_default_level_is_l1(self):
        inst = make_independent(TABLE.get("load"), 1)[0]
        assert inst.memory_level == "l1"

    def test_invalid_level_rejected(self):
        with pytest.raises(IsaError):
            Instruction(spec=TABLE.get("load"), dest=GPRS[0],
                        sources=(GPRS[1],), memory_level="l9")

    def test_deeper_hits_slow_the_loop(self):
        from dataclasses import replace

        sim = ModuleSimulator(bulldozer_chip())

        def period_for(level):
            loads = tuple(replace(i, memory_level=level)
                          for i in make_independent(TABLE.get("load"), 4))
            kernel = build_kernel(loads, replications=1, lp_nops=0,
                                  nop_spec=TABLE.nop)
            trace = sim.run([ThreadProgram(kernel, 10_000)], max_iterations=60)
            return trace.steady_period()

        assert period_for("memory") > period_for("l2") > period_for("l1")

    def test_deeper_hits_cost_more_energy(self):
        from dataclasses import replace

        sim = ModuleSimulator(bulldozer_chip())

        def energy_per_iter(level):
            loads = tuple(replace(i, memory_level=level)
                          for i in make_independent(TABLE.get("load"), 4))
            kernel = build_kernel(loads, replications=1, lp_nops=0,
                                  nop_spec=TABLE.nop)
            trace = sim.run([ThreadProgram(kernel, 10_000)], max_iterations=40)
            return trace.energy_pj.sum() / len(trace.iter_start_cycles[0])

        assert energy_per_iter("l3") > energy_per_iter("l1")


class TestJosephBrooks:
    def test_structure_matches_the_papers_description(self):
        kernel = joseph_brooks(TABLE)
        # High-current phase: loads and stores, mixing L1 and L2 hits.
        assert all(i.spec.memory for i in kernel.hp)
        levels = {i.memory_level for i in kernel.hp if i.spec.mnemonic == "load"}
        assert levels == {"l1", "l2"}
        # Low-current phase: a serial divide chain, not NOPs.
        assert all(i.spec.mnemonic == "idiv" for i in kernel.lp)

    def test_divide_chain_serialises(self):
        kernel = joseph_brooks(TABLE)
        reads = [i.reads for i in kernel.lp]
        writes = [i.writes for i in kernel.lp]
        for i in range(1, len(kernel.lp)):
            assert writes[i - 1] & reads[i]

    def test_produces_a_real_but_subresonant_droop(self, platform):
        """A strong single-event stressmark — but never tuned to the PDN."""
        jb = platform.measure_program(
            stressmark_program(joseph_brooks(TABLE)), 4).max_droop_v
        resonant = platform.measure_program(
            stressmark_program(sm_res(TABLE)), 4).max_droop_v
        audit = platform.measure_program(
            stressmark_program(a_res_canned(TABLE)), 4).max_droop_v
        assert jb > 0.03               # a genuine stressmark...
        assert jb < resonant           # ...but below the resonance-tuned ones
        assert jb < audit

    def test_scales_with_threads(self, platform):
        program = stressmark_program(joseph_brooks(TABLE))
        d1 = platform.measure_program(program, 1).max_droop_v
        d4 = platform.measure_program(program, 4).max_droop_v
        assert d4 > 2 * d1
