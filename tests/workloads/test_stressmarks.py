"""Tests for the manual stressmark library."""

import pytest

from repro.core.platform import MeasurementPlatform
from repro.errors import SchedulingError, WorkloadError
from repro.isa.opcodes import default_table
from repro.pdn.elements import bulldozer_pdn
from repro.uarch.config import bulldozer_chip, phenom_chip
from repro.uarch.module import ModuleSimulator
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


def droop(platform, kernel, threads=4):
    return platform.measure_program(stressmark_program(kernel), threads).max_droop_v


class TestKernelStructure:
    def test_sm_res_is_pure_fp(self):
        kernel = sm_res(TABLE)
        assert all(i.spec.is_fp for i in kernel.hp)
        assert all(i.is_nop for i in kernel.lp)
        assert kernel.name == "SM-Res"

    def test_sm1_requires_fma4(self):
        kernel = sm1(TABLE)
        mnemonics = {i.spec.mnemonic for i in kernel.hp}
        assert "vfmaddpd" in mnemonics

    def test_sm1_rejected_on_phenom(self):
        kernel = sm1(TABLE)
        sim = ModuleSimulator(phenom_chip())
        with pytest.raises(SchedulingError):
            sim.run([stressmark_program(kernel)], max_iterations=4)

    def test_sm2_exercises_sensitive_paths(self):
        kernel = sm2(TABLE)
        peak_sensitivity = max(i.spec.path_sensitivity for i in kernel.hp)
        assert peak_sensitivity >= 1.03
        assert all(not i.spec.is_fp for i in kernel.hp)

    def test_a_res_mixes_clusters_and_sprinkles_nops(self):
        kernel = a_res_canned(TABLE)
        has_fp = any(i.spec.is_fp for i in kernel.hp)
        has_int = any(
            not i.spec.is_fp and not i.is_nop for i in kernel.hp
        )
        has_nops = any(i.is_nop for i in kernel.hp)
        assert has_fp and has_int and has_nops

    def test_a_ex_has_long_lp(self):
        kernel = a_ex_canned(TABLE)
        assert len(kernel.lp) > 5 * len(kernel.hp)

    def test_period_validation(self):
        with pytest.raises(WorkloadError):
            sm_res(TABLE, period_cycles=2)

    def test_phenom_variants_avoid_fma(self):
        pool = TABLE.supported_on(phenom_chip().extensions)
        kernel = sm_res(pool)
        assert all(i.spec.mnemonic != "vfmaddpd" for i in kernel.hp)
        a_res = a_res_canned(pool)
        assert all("vfmadd" not in i.spec.mnemonic for i in a_res.hp)


class TestDroopOrdering:
    """The paper's Fig. 9 shape at 4T (the primary configuration)."""

    @pytest.fixture(scope="class")
    def droops(self, platform):
        return {
            "SM1": droop(platform, sm1(TABLE)),
            "SM2": droop(platform, sm2(TABLE)),
            "SM-Res": droop(platform, sm_res(TABLE)),
            "A-Res": droop(platform, a_res_canned(TABLE)),
            "A-Ex": droop(platform, a_ex_canned(TABLE)),
        }

    def test_resonant_stressmarks_dominate(self, droops):
        assert droops["A-Res"] > droops["SM1"]
        assert droops["SM-Res"] > droops["SM1"]

    def test_audit_beats_or_matches_hand_tuned(self, droops):
        assert droops["A-Res"] >= droops["SM-Res"] * 0.95

    def test_sm2_droop_is_modest(self, droops):
        assert droops["SM2"] < 0.5 * droops["SM1"]

    def test_excitation_below_resonance(self, droops):
        assert droops["A-Ex"] < droops["A-Res"]

    def test_4t_beats_8t_for_fp_stressmarks(self, platform):
        for kernel in (sm1(TABLE), sm_res(TABLE), a_res_canned(TABLE)):
            d4 = droop(platform, kernel, 4)
            d8 = droop(platform, kernel, 8)
            assert d8 < d4, kernel.name

    def test_droop_grows_1t_to_4t(self, platform):
        kernel = sm_res(TABLE)
        d = [droop(platform, kernel, t) for t in (1, 2, 4)]
        assert d[0] < d[1] < d[2]
