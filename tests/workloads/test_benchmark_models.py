"""Tests for synthetic SPEC/PARSEC models and the workload runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import MeasurementPlatform
from repro.errors import WorkloadError
from repro.isa.opcodes import default_table
from repro.pdn.elements import bulldozer_pdn
from repro.uarch.config import bulldozer_chip
from repro.workloads.parsec import PARSEC_MODELS, parsec_model, parsec_names
from repro.workloads.phases import ActivityModel
from repro.workloads.runner import run_workload
from repro.workloads.spec import SPEC_MODELS, spec_model, spec_names
from repro.workloads.stressmarks import sm1, stressmark_program

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


class TestActivityModel:
    def make(self, **kw):
        defaults = dict(
            name="toy", util_mean=0.5, util_sigma=0.05,
            stall_rate_per_kcycle=2.0, stall_cycles=20, burst_cycles=20,
            burst_boost=0.3,
        )
        defaults.update(kw)
        return ActivityModel(**defaults)

    def test_utilisation_bounded(self):
        model = self.make()
        util = model.thread_utilisation(20_000, np.random.default_rng(0))
        assert util.min() >= 0.0
        assert util.max() <= 1.0
        assert len(util) == 20_000

    def test_utilisation_tracks_mean(self):
        model = self.make(util_mean=0.6, stall_rate_per_kcycle=0.0)
        util = model.thread_utilisation(100_000, np.random.default_rng(1))
        assert util.mean() == pytest.approx(0.6, abs=0.08)

    def test_stalls_create_low_regions(self):
        quiet = self.make(stall_rate_per_kcycle=0.0, util_mean=0.6, util_sigma=0.0)
        noisy = self.make(stall_rate_per_kcycle=10.0, util_mean=0.6, util_sigma=0.0)
        rng = np.random.default_rng(2)
        u_quiet = quiet.thread_utilisation(50_000, rng)
        u_noisy = noisy.thread_utilisation(50_000, np.random.default_rng(2))
        assert u_noisy.min() < 0.1
        assert u_quiet.min() > 0.4

    def test_bursts_raise_peak(self):
        model = self.make(burst_boost=0.4, util_mean=0.4, util_sigma=0.0,
                          stall_rate_per_kcycle=5.0)
        util = model.thread_utilisation(50_000, np.random.default_rng(3))
        assert util.max() > 0.7

    def test_barriers_align_drains_across_threads(self):
        model = self.make(barrier_interval_cycles=10_000, barrier_skew_cycles=10)
        rng = np.random.default_rng(4)
        utils = [model.thread_utilisation(30_000, rng) for _ in range(4)]
        utils = model.apply_barriers(utils, rng)
        at_barrier = [u[10_000 + 20] for u in utils]
        assert max(at_barrier) < 0.2  # everyone drained

    def test_no_barriers_when_unset(self):
        model = self.make()
        rng = np.random.default_rng(5)
        utils = [np.full(1000, 0.5)]
        assert model.apply_barriers(utils, rng)[0] is not utils[0] or True
        np.testing.assert_array_equal(model.apply_barriers(utils, rng)[0], utils[0])

    def test_energy_scales_with_utilisation(self):
        model = self.make()
        chip = bulldozer_chip()
        energy = model.thread_energy(chip, np.array([0.0, 0.5, 1.0]))
        assert energy[0] == 0.0
        assert energy[2] == pytest.approx(2 * energy[1])

    def test_sensitivity_zero_when_idle(self):
        model = self.make(sensitivity=1.03)
        sens = model.thread_sensitivity(np.array([0.0, 0.5]))
        assert sens[0] == 0.0
        assert sens[1] == pytest.approx(1.03)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            self.make(util_mean=1.5)
        with pytest.raises(WorkloadError):
            self.make(stall_cycles=0)
        with pytest.raises(WorkloadError):
            self.make(burst_boost=-1)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_utilisation_always_in_unit_interval(self, seed):
        model = self.make(util_sigma=0.3, stall_rate_per_kcycle=8.0,
                          burst_boost=0.8)
        util = model.thread_utilisation(5000, np.random.default_rng(seed))
        assert np.all((util >= 0.0) & (util <= 1.0))


class TestSuites:
    def test_spec_contains_the_papers_benchmarks(self):
        assert "zeusmp" in spec_names()
        assert len(SPEC_MODELS) >= 8

    def test_parsec_contains_the_papers_benchmarks(self):
        names = parsec_names()
        assert {"fluidanimate", "streamcluster", "swaptions"} <= set(names)
        assert len(PARSEC_MODELS) >= 5

    def test_lookup_and_errors(self):
        assert spec_model("zeusmp").name == "zeusmp"
        assert parsec_model("swaptions").name == "swaptions"
        with pytest.raises(WorkloadError):
            spec_model("doom")
        with pytest.raises(WorkloadError):
            parsec_model("doom")

    def test_parsec_models_have_barriers_except_canneal(self):
        for model in PARSEC_MODELS:
            if model.name == "canneal":
                assert model.barrier_interval_cycles is None
            else:
                assert model.barrier_interval_cycles is not None


class TestRunWorkload:
    def test_measurement_shape(self, platform):
        m = run_workload(platform, spec_model("zeusmp"), 4,
                         duration_cycles=50_000, rng=np.random.default_rng(0))
        assert len(m.voltage) == 50_000
        assert m.max_droop_v > 0
        assert np.all(np.isfinite(m.voltage.samples))

    def test_benchmarks_droop_below_stressmarks(self, platform):
        rng = np.random.default_rng(1)
        bench = run_workload(platform, spec_model("zeusmp"), 4,
                             duration_cycles=100_000, rng=rng).max_droop_v
        stress = platform.measure_program(
            stressmark_program(sm1(TABLE)), 4).max_droop_v
        assert bench < stress

    def test_zeusmp_tops_the_spec_pack(self, platform):
        droops = {}
        for name in ("zeusmp", "hmmer", "namd", "povray"):
            droops[name] = run_workload(
                platform, spec_model(name), 4,
                duration_cycles=100_000, rng=np.random.default_rng(7),
            ).max_droop_v
        assert droops["zeusmp"] == max(droops.values())

    def test_droop_grows_with_threads(self, platform):
        rng = np.random.default_rng(2)
        droops = [
            run_workload(platform, spec_model("zeusmp"), t,
                         duration_cycles=60_000, rng=np.random.default_rng(2)
                         ).max_droop_v
            for t in (1, 4)
        ]
        assert droops[0] < droops[1]

    def test_reproducible_with_seeded_rng(self, platform):
        a = run_workload(platform, spec_model("gcc"), 2,
                         duration_cycles=30_000, rng=np.random.default_rng(9))
        b = run_workload(platform, spec_model("gcc"), 2,
                         duration_cycles=30_000, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.voltage.samples, b.voltage.samples)

    def test_validation(self, platform):
        with pytest.raises(WorkloadError):
            run_workload(platform, spec_model("gcc"), 0)
        with pytest.raises(WorkloadError):
            run_workload(platform, spec_model("gcc"), 2, duration_cycles=10)
