"""Tests for OS interference and thread placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.osmodel.affinity import packed_placement, spread_placement
from repro.osmodel.scheduler import WINDOWS_TICK_S, OsInterferenceModel, TickPhases
from repro.uarch.config import bulldozer_chip, phenom_chip


class TestSpreadPlacement:
    @pytest.mark.parametrize(
        "threads,expected",
        [
            (1, [1, 0, 0, 0]),
            (2, [1, 1, 0, 0]),
            (4, [1, 1, 1, 1]),
            (8, [2, 2, 2, 2]),
            (5, [2, 1, 1, 1]),
        ],
    )
    def test_paper_configurations(self, threads, expected):
        assert spread_placement(bulldozer_chip(), threads) == expected

    def test_phenom_capacity(self):
        assert spread_placement(phenom_chip(), 4) == [1, 1, 1, 1]
        with pytest.raises(ConfigurationError):
            spread_placement(phenom_chip(), 5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spread_placement(bulldozer_chip(), 0)
        with pytest.raises(ConfigurationError):
            spread_placement(bulldozer_chip(), 9)


class TestPackedPlacement:
    def test_packs_modules_full_first(self):
        assert packed_placement(bulldozer_chip(), 2) == [2, 0, 0, 0]
        assert packed_placement(bulldozer_chip(), 3) == [2, 1, 0, 0]
        assert packed_placement(bulldozer_chip(), 8) == [2, 2, 2, 2]

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_both_policies_conserve_threads(self, n):
        chip = bulldozer_chip()
        assert sum(spread_placement(chip, n)) == n
        assert sum(packed_placement(chip, n)) == n


class TestOsInterference:
    def test_tick_count_matches_duration(self):
        model = OsInterferenceModel(seed=0)
        ticks = model.natural_dithering(
            duration_s=0.1, cores=4, loop_period_cycles=32
        )
        assert len(ticks) == int(np.ceil(0.1 / WINDOWS_TICK_S))
        assert sum(t.duration_s for t in ticks) == pytest.approx(0.1)

    def test_reference_core_phase_is_zero(self):
        model = OsInterferenceModel(seed=1)
        for tick in model.natural_dithering(duration_s=0.05, cores=4,
                                            loop_period_cycles=32):
            assert tick.phases[0] == 0
            assert len(tick.phases) == 4

    def test_phases_bounded_by_period(self):
        model = OsInterferenceModel(seed=2)
        ticks = model.natural_dithering(duration_s=0.2, cores=8,
                                        loop_period_cycles=24)
        for tick in ticks:
            assert all(0 <= p < 24 for p in tick.phases)

    def test_phases_vary_across_ticks(self):
        model = OsInterferenceModel(seed=3)
        ticks = model.natural_dithering(duration_s=0.3, cores=4,
                                        loop_period_cycles=32)
        unique = {t.phases for t in ticks}
        assert len(unique) > 1

    def test_seeded_reproducibility(self):
        a = OsInterferenceModel(seed=42).natural_dithering(
            duration_s=0.1, cores=4, loop_period_cycles=32)
        b = OsInterferenceModel(seed=42).natural_dithering(
            duration_s=0.1, cores=4, loop_period_cycles=32)
        assert [t.phases for t in a] == [t.phases for t in b]

    def test_alignment_occurs_eventually(self):
        """Natural dithering passes near alignment given enough ticks."""
        model = OsInterferenceModel(seed=4)
        ticks = model.natural_dithering(duration_s=3.0, cores=4,
                                        loop_period_cycles=16)
        best = min(t.misalignment(16) for t in ticks)
        assert best <= 2

    def test_misalignment_is_circular(self):
        tick = TickPhases(0.0, 1.0, (0, 31))
        assert tick.misalignment(32) == 1

    def test_interrupt_cost_scale(self):
        model = OsInterferenceModel(seed=5)
        cost = model.interrupt_cycle_cost(frequency_hz=3.2e9)
        assert 1000 < cost < 10_000_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OsInterferenceModel(tick_period_s=0)
        model = OsInterferenceModel()
        with pytest.raises(ConfigurationError):
            model.natural_dithering(duration_s=0, cores=4, loop_period_cycles=32)
        with pytest.raises(ConfigurationError):
            model.natural_dithering(duration_s=1, cores=0, loop_period_cycles=32)
