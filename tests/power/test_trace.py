"""Tests for current-trace construction and algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.trace import CurrentTrace, square_wave, step_load, sum_traces

DT = 1 / 3.2e9


class TestCurrentTraceBasics:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CurrentTrace(np.array([]), DT)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            CurrentTrace(np.zeros((2, 2)), DT)

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            CurrentTrace(np.ones(4), 0.0)

    def test_duration_and_stats(self):
        tr = CurrentTrace(np.array([1.0, 3.0, 2.0]), DT)
        assert tr.duration_s == pytest.approx(3 * DT)
        assert tr.mean_a == pytest.approx(2.0)
        assert tr.peak_a == pytest.approx(3.0)
        assert tr.swing_a == pytest.approx(2.0)

    def test_tile(self):
        tr = CurrentTrace(np.array([1.0, 2.0]), DT).tile(3)
        assert len(tr) == 6
        np.testing.assert_array_equal(tr.samples, [1, 2, 1, 2, 1, 2])

    def test_roll_is_circular(self):
        tr = CurrentTrace(np.array([1.0, 2.0, 3.0]), DT).roll(1)
        np.testing.assert_array_equal(tr.samples, [3, 1, 2])

    def test_pad(self):
        tr = CurrentTrace(np.array([5.0]), DT).pad(leading=2, trailing=1, level=1.0)
        np.testing.assert_array_equal(tr.samples, [1, 1, 5, 1])

    def test_add_requires_matching_grids(self):
        a = CurrentTrace(np.ones(3), DT)
        b = CurrentTrace(np.ones(4), DT)
        with pytest.raises(ConfigurationError):
            _ = a + b
        c = CurrentTrace(np.ones(3), DT * 2)
        with pytest.raises(ConfigurationError):
            _ = a + c

    def test_add_sums_samples(self):
        a = CurrentTrace(np.array([1.0, 2.0]), DT)
        b = CurrentTrace(np.array([10.0, 20.0]), DT)
        np.testing.assert_array_equal((a + b).samples, [11, 22])

    def test_scaled(self):
        tr = CurrentTrace(np.array([1.0, 2.0]), DT).scaled(2.5)
        np.testing.assert_array_equal(tr.samples, [2.5, 5.0])


class TestSumTraces:
    def test_pads_shorter_traces_with_zero(self):
        a = CurrentTrace(np.array([1.0, 1.0, 1.0]), DT)
        b = CurrentTrace(np.array([2.0]), DT)
        total = sum_traces([a, b])
        np.testing.assert_array_equal(total.samples, [3, 1, 1])

    def test_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            sum_traces([])

    def test_rejects_mixed_dt(self):
        a = CurrentTrace(np.ones(2), DT)
        b = CurrentTrace(np.ones(2), DT * 2)
        with pytest.raises(ConfigurationError):
            sum_traces([a, b])


class TestGenerators:
    def test_square_wave_shape(self):
        tr = square_wave(high_a=10, low_a=2, high_samples=3, low_samples=2,
                         periods=2, dt=DT)
        np.testing.assert_array_equal(
            tr.samples, [10, 10, 10, 2, 2, 10, 10, 10, 2, 2]
        )

    def test_square_wave_rejects_zero_period(self):
        with pytest.raises(ConfigurationError):
            square_wave(1, 0, 0, 0, 1, DT)

    def test_step_load_shape(self):
        tr = step_load(low_a=1, high_a=9, low_samples=2, high_samples=3, dt=DT)
        np.testing.assert_array_equal(tr.samples, [1, 1, 9, 9, 9])

    def test_step_load_needs_both_sides(self):
        with pytest.raises(ConfigurationError):
            step_load(1, 9, 0, 3, DT)


class TestTraceProperties:
    @given(
        samples=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=64),
        shift=st.integers(-200, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_roll_preserves_multiset(self, samples, shift):
        tr = CurrentTrace(np.array(samples), DT)
        rolled = tr.roll(shift)
        assert sorted(rolled.samples) == pytest.approx(sorted(tr.samples))

    @given(
        samples=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=32),
        reps=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_tile_preserves_mean(self, samples, reps):
        tr = CurrentTrace(np.array(samples), DT)
        assert tr.tile(reps).mean_a == pytest.approx(tr.mean_a)

    @given(
        a=st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=16),
        b=st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_traces_is_superposition(self, a, b):
        ta = CurrentTrace(np.array(a), DT)
        tb = CurrentTrace(np.array(b), DT)
        total = sum_traces([ta, tb])
        n = max(len(a), len(b))
        pa = np.pad(np.array(a), (0, n - len(a)))
        pb = np.pad(np.array(b), (0, n - len(b)))
        np.testing.assert_allclose(total.samples, pa + pb)
