"""Tests for the energy-to-current model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power.energy import EnergyModel, PowerParameters


class TestPowerParameters:
    def test_rejects_negative_currents(self):
        with pytest.raises(ConfigurationError):
            PowerParameters(leakage_a=-1.0)

    def test_rejects_bad_gating_efficiency(self):
        with pytest.raises(ConfigurationError):
            PowerParameters(clock_gating_efficiency=1.5)


class TestEnergyModel:
    def make(self, **kw):
        params = PowerParameters(leakage_a=1.0, idle_clock_a=2.0,
                                 clock_gating_efficiency=0.5)
        return EnergyModel(params, vdd=kw.get("vdd", 1.2),
                           frequency_hz=kw.get("f", 3.2e9))

    def test_rejects_bad_operating_point(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(PowerParameters(), vdd=0.0, frequency_hz=3e9)
        with pytest.raises(ConfigurationError):
            EnergyModel(PowerParameters(), vdd=1.2, frequency_hz=0)

    def test_zero_energy_cycle_is_clock_gated(self):
        model = self.make()
        current = model.current_from_energy(np.array([0.0]))
        # leakage (1.0) + half of idle clock (1.0)
        assert current[0] == pytest.approx(2.0)
        assert current[0] == pytest.approx(model.idle_current())

    def test_active_cycle_keeps_full_clock_current(self):
        model = self.make()
        tiny = model.current_from_energy(np.array([1e-9]))  # ~0 but active
        assert tiny[0] == pytest.approx(3.0, rel=1e-3)

    def test_dynamic_current_scales_with_energy(self):
        model = self.make()
        c = model.current_from_energy(np.array([100.0, 200.0]))
        dyn1 = c[0] - 3.0
        dyn2 = c[1] - 3.0
        assert dyn2 == pytest.approx(2 * dyn1)

    def test_physical_magnitude(self):
        # 100 pJ per cycle at 3.2 GHz and 1.2 V is 100e-12 * 3.2e9 / 1.2 A.
        model = self.make()
        c = model.current_from_energy(np.array([100.0]))
        expected_dyn = 100e-12 * 3.2e9 / 1.2
        assert c[0] - 3.0 == pytest.approx(expected_dyn)

    def test_lower_vdd_means_more_current_for_same_energy(self):
        high_v = self.make(vdd=1.3).current_from_energy(np.array([100.0]))
        low_v = self.make(vdd=1.1).current_from_energy(np.array([100.0]))
        assert low_v[0] > high_v[0]

    def test_rejects_negative_energy(self):
        with pytest.raises(ConfigurationError):
            self.make().current_from_energy(np.array([-1.0]))

    def test_energy_to_amps_scalar(self):
        model = self.make()
        assert model.energy_to_amps(100.0) == pytest.approx(100e-12 * 3.2e9 / 1.2)
