"""Tests for machine configuration, caches, and resource trackers."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.uarch.caches import CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.uarch.config import (
    ChipConfig,
    CoreConfig,
    ModuleConfig,
    bulldozer_chip,
    phenom_chip,
)
from repro.uarch.resources import PerCycleLimiter, TokenPool, UnitPool


class TestConfigs:
    def test_bulldozer_preset_matches_paper(self):
        chip = bulldozer_chip()
        assert chip.module_count == 4
        assert chip.module.threads == 2
        assert chip.total_threads == 8
        assert "fma4" in chip.extensions

    def test_phenom_preset_matches_paper(self):
        chip = phenom_chip()
        assert chip.module.threads == 1          # no multi-threading
        assert chip.total_threads == 4
        assert "fma4" not in chip.extensions
        # Less aggressive power management -> weaker clock gating.
        assert (chip.power.clock_gating_efficiency
                < bulldozer_chip().power.clock_gating_efficiency)

    def test_core_config_validation(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(int_alu_count=0)

    def test_module_thread_limit(self):
        with pytest.raises(ConfigurationError):
            ModuleConfig(threads=3)

    def test_fp_throttle_validation(self):
        with pytest.raises(ConfigurationError):
            ModuleConfig(fp_arith_pipes=2, fp_simd_pipes=2, fp_throttle=5)
        with pytest.raises(ConfigurationError):
            ModuleConfig(fp_throttle=0)

    def test_fp_pipe_count_sums_pools(self):
        assert ModuleConfig(fp_arith_pipes=2, fp_simd_pipes=2).fp_pipe_count == 4

    def test_with_fp_throttle_round_trip(self):
        chip = bulldozer_chip().with_fp_throttle(2)
        assert chip.module.fp_throttle == 2
        assert chip.with_fp_throttle(None).module.fp_throttle is None
        # Original untouched (frozen dataclasses).
        assert bulldozer_chip().module.fp_throttle is None

    def test_with_vdd(self):
        chip = bulldozer_chip().with_vdd(1.1)
        assert chip.vdd == pytest.approx(1.1)
        assert chip.frequency_hz == bulldozer_chip().frequency_hz

    def test_chip_validation(self):
        base = bulldozer_chip()
        with pytest.raises(ConfigurationError):
            ChipConfig(name="x", module=base.module, module_count=0,
                       frequency_hz=3e9, vdd=1.2, power=base.power,
                       extensions=frozenset())

    def test_cycle_time(self):
        assert bulldozer_chip().cycle_time_s == pytest.approx(1 / 3.2e9)


class TestCaches:
    def test_latencies_increase_down_the_hierarchy(self):
        caches = CacheHierarchy()
        lat = [caches.load_latency(level) for level in
               (CacheLevel.L1, CacheLevel.L2, CacheLevel.L3, CacheLevel.MEMORY)]
        assert lat == sorted(lat)
        assert lat[0] < lat[-1]

    def test_energies_increase_down_the_hierarchy(self):
        caches = CacheHierarchy()
        e = [caches.access_energy(level) for level in
             (CacheLevel.L1, CacheLevel.L2, CacheLevel.L3, CacheLevel.MEMORY)]
        assert e == sorted(e)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec(0, 10.0)
        with pytest.raises(ConfigurationError):
            CacheLevelSpec(4, -1.0)


class TestTokenPool:
    def test_acquire_until_exhausted(self):
        pool = TokenPool(2)
        assert pool.try_acquire()
        assert pool.try_acquire()
        assert not pool.try_acquire()
        assert pool.available == 0

    def test_release_at_future_cycle(self):
        pool = TokenPool(1)
        assert pool.try_acquire()
        pool.release_at(5)
        pool.advance_to(4)
        assert not pool.try_acquire()
        pool.advance_to(5)
        assert pool.try_acquire()

    def test_over_release_detected(self):
        pool = TokenPool(1)
        pool.release_at(1)
        pool.release_at(2)
        with pytest.raises(SchedulingError):
            pool.advance_to(3)

    def test_capacity_validation(self):
        with pytest.raises(SchedulingError):
            TokenPool(0)


class TestUnitPool:
    def test_pipes_block_while_busy(self):
        pool = UnitPool(1)
        assert pool.try_issue(0, occupy_cycles=3)
        assert not pool.try_issue(1, occupy_cycles=1)
        assert pool.try_issue(3, occupy_cycles=1)

    def test_multiple_pipes(self):
        pool = UnitPool(2)
        assert pool.try_issue(0, 1)
        assert pool.try_issue(0, 1)
        assert not pool.try_issue(0, 1)
        assert pool.free_pipes(0) == 0
        assert pool.free_pipes(1) == 2

    def test_validation(self):
        with pytest.raises(SchedulingError):
            UnitPool(0)
        with pytest.raises(SchedulingError):
            UnitPool(1).try_issue(0, 0)


class TestPerCycleLimiter:
    def test_limits_per_cycle_independently(self):
        lim = PerCycleLimiter(2)
        assert lim.try_take(0)
        assert lim.try_take(0)
        assert not lim.try_take(0)
        assert lim.try_take(1)

    def test_used_counts(self):
        lim = PerCycleLimiter(3)
        lim.try_take(7)
        lim.try_take(7)
        assert lim.used(7) == 2
        assert lim.used(8) == 0

    def test_forget_before_bounds_memory(self):
        lim = PerCycleLimiter(1)
        for c in range(10):
            lim.try_take(c)
        lim.forget_before(8)
        assert lim.used(5) == 0
        assert lim.used(9) == 1

    def test_validation(self):
        with pytest.raises(SchedulingError):
            PerCycleLimiter(0)
