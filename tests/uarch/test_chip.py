"""Tests for chip-level assembly of module currents."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.isa import RegisterAllocator, ThreadProgram, build_kernel, default_table, make_instruction
from repro.uarch.chip import ChipSimulator
from repro.uarch.config import bulldozer_chip

TABLE = default_table()


def make_program(mnemonics=("mulpd", "add"), lp_nops=4):
    alloc = RegisterAllocator()
    sub = tuple(make_instruction(TABLE.get(m), alloc) for m in mnemonics)
    kernel = build_kernel(sub, replications=1, lp_nops=lp_nops, nop_spec=TABLE.nop)
    return ThreadProgram(kernel, 10_000)


@pytest.fixture()
def chip_sim():
    return ChipSimulator(bulldozer_chip())


class TestRunPlacement:
    def test_idle_modules_yield_none(self, chip_sim):
        prog = make_program()
        placement = [[prog], [], [], []]
        traces = chip_sim.run_placement(placement, max_iterations=10)
        assert traces[0] is not None
        assert traces[1] is None and traces[2] is None and traces[3] is None

    def test_placement_size_enforced(self, chip_sim):
        with pytest.raises(SchedulingError):
            chip_sim.run_placement([[], []])

    def test_memoisation_reuses_identical_module_runs(self, chip_sim):
        prog = make_program()
        placement = [[prog], [prog], [prog], [prog]]
        traces = chip_sim.run_placement(placement, max_iterations=10)
        assert traces[0] is traces[1] is traces[2] is traces[3]


class TestCurrentConversion:
    def test_module_current_has_baseline_plus_dynamic(self, chip_sim):
        energy = np.array([0.0, 100.0, 0.0])
        current = chip_sim.module_current(energy, active_threads=1)
        assert current[1] > current[0]
        assert current[0] == pytest.approx(current[2])
        # Gated cycle equals per-thread idle current.
        assert current[0] == pytest.approx(chip_sim.energy_model.idle_current())

    def test_two_thread_module_doubles_baseline(self, chip_sim):
        energy = np.zeros(4)
        one = chip_sim.module_current(energy, active_threads=1)
        two = chip_sim.module_current(energy, active_threads=2)
        np.testing.assert_allclose(two, 2 * one)

    def test_active_threads_validation(self, chip_sim):
        with pytest.raises(SchedulingError):
            chip_sim.module_current(np.zeros(2), active_threads=0)

    def test_chip_current_superposes_and_pads_idle(self, chip_sim):
        idle = chip_sim.idle_module_current()
        m0 = np.full(4, 10.0)
        m1 = np.full(2, 5.0)
        trace = chip_sim.chip_current([m0, m1, None, None])
        assert len(trace) == 4
        assert trace.samples[0] == pytest.approx(10 + 5 + 2 * idle)
        # Module 1 finished after 2 cycles -> falls back to idle current.
        assert trace.samples[3] == pytest.approx(10 + 3 * idle)

    def test_chip_current_needs_active_or_length(self, chip_sim):
        with pytest.raises(SchedulingError):
            chip_sim.chip_current([None, None, None, None])
        trace = chip_sim.chip_current([None, None, None, None], length=8)
        assert len(trace) == 8
        np.testing.assert_allclose(
            trace.samples, 4 * chip_sim.idle_module_current()
        )

    def test_chip_current_module_count_enforced(self, chip_sim):
        with pytest.raises(SchedulingError):
            chip_sim.chip_current([np.ones(2)])

    def test_dt_matches_clock(self, chip_sim):
        assert chip_sim.dt == pytest.approx(1 / 3.2e9)
