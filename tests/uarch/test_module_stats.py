"""Tests for pipeline occupancy/stall statistics."""

import pytest

from repro.isa import ThreadProgram, build_kernel, default_table, make_independent
from repro.uarch.config import bulldozer_chip
from repro.uarch.module import ModuleSimulator

TABLE = default_table()


def run_kernel(mnemonic, count, lp_nops=8, iters=30, chip=None):
    kernel = build_kernel(
        make_independent(TABLE.get(mnemonic), count),
        replications=1, lp_nops=lp_nops, nop_spec=TABLE.nop,
    )
    sim = ModuleSimulator(chip or bulldozer_chip())
    return sim.run([ThreadProgram(kernel, 10_000)], max_iterations=iters)


class TestModuleStats:
    def test_stats_attached_to_every_run(self):
        trace = run_kernel("add", 4)
        assert trace.stats is not None
        assert trace.stats.decoded_instructions > 0

    def test_issue_counters_match_instruction_mix(self):
        trace = run_kernel("mulpd", 8, iters=20)
        stats = trace.stats
        # 8 mulpd (fpu) + 1 loop close (ialu) per iteration.
        assert stats.issues_by_unit["fpu"] == 8 * 20
        assert stats.issues_by_unit["ialu"] == 20
        assert "fsimd" not in stats.issues_by_unit

    def test_issue_share(self):
        trace = run_kernel("paddd", 9, iters=20)
        stats = trace.stats
        assert stats.issue_share("fsimd") == pytest.approx(0.9)
        assert stats.issue_share("agu") == 0.0

    def test_decoded_counts_include_nops(self):
        trace = run_kernel("add", 2, lp_nops=10, iters=10)
        # (2 adds + 10 nops + 1 close) per iteration.
        assert trace.stats.decoded_instructions == 13 * 10

    def test_retired_counts_exclude_nops(self):
        trace = run_kernel("add", 2, lp_nops=10, iters=10)
        assert trace.stats.retired_instructions == 3 * 10

    def test_window_stalls_appear_under_backpressure(self):
        # A divider-bound loop fills the window and stalls decode.
        trace = run_kernel("divpd", 12, lp_nops=0, iters=30)
        assert trace.stats.decode_stalls["window"] > 0

    def test_quiet_loop_has_no_stalls(self):
        trace = run_kernel("add", 2, lp_nops=16, iters=20)
        stalls = trace.stats.decode_stalls
        assert stalls["window"] == 0
        assert stalls["int_tokens"] == 0

    def test_token_stalls_for_register_hungry_loops(self):
        # More in-flight int dests than the 28-token PRF while a slow op
        # holds retirement.
        from repro.isa.kernels import LoopKernel, nop_region

        slow = make_independent(TABLE.get("divpd"), 2)
        adds = make_independent(TABLE.get("add"), 40)
        kernel = LoopKernel(hp=slow + adds, lp=nop_region(TABLE.nop, 8))
        sim = ModuleSimulator(bulldozer_chip())
        trace = sim.run([ThreadProgram(kernel, 10_000)], max_iterations=30)
        assert trace.stats.decode_stalls["int_tokens"] > 0
