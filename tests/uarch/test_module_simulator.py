"""Tests for the cycle-level module simulator.

These encode the microarchitectural behaviours the paper's analysis depends
on: NOPs are front-end-only, FPU sharing stretches co-scheduled loops, the
FPU throttle limits FP issue, and dependence chains serialise.
"""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.isa import (
    RegisterAllocator,
    ThreadProgram,
    build_kernel,
    default_table,
    make_instruction,
    nop,
)
from repro.uarch.config import bulldozer_chip, phenom_chip
from repro.uarch.module import ModuleSimulator

TABLE = default_table()


def independent_ops(mnemonic, count):
    """Ops with shared never-written sources and rotating dests: zero RAW.

    The round-robin allocator can create accidental cross-instruction RAW
    chains via register reuse (a real hazard the GA navigates); these tests
    isolate unit-pool behaviour, so they need genuinely independent ops.
    """
    from repro.isa.registers import Register, RegClass

    spec = TABLE.get(mnemonic)
    if spec.operand_class is RegClass.XMM:
        srcs = tuple(Register(f"xmm{15 - i}", RegClass.XMM)
                     for i in range(spec.num_sources))
        dests = [Register(f"xmm{i % 12}", RegClass.XMM) for i in range(count)]
    else:
        from repro.isa.registers import GPRS

        srcs = tuple(GPRS[-(i + 1)] for i in range(spec.num_sources))
        dests = [GPRS[i % (len(GPRS) - spec.num_sources)] for i in range(count)]
    from repro.isa import Instruction

    return tuple(
        Instruction(spec=spec, dest=d if spec.has_dest else None, sources=srcs)
        for d in dests
    )


def subblock(mnemonics, dependent=False):
    alloc = RegisterAllocator()
    return tuple(
        make_instruction(TABLE.get(m), alloc, dependent=dependent) for m in mnemonics
    )


def kernel_of(mnemonics, lp_nops=8, replications=1, name="k"):
    return build_kernel(
        subblock(mnemonics), replications=replications, lp_nops=lp_nops,
        nop_spec=TABLE.nop, name=name,
    )


def run_single(kernel, iters=40, chip=None):
    sim = ModuleSimulator(chip or bulldozer_chip())
    return sim.run([ThreadProgram(kernel, 10_000)], max_iterations=iters)


class TestBasicExecution:
    def test_energy_trace_is_nonnegative_and_active(self):
        trace = run_single(kernel_of(["mulpd", "add", "load"]))
        assert np.all(trace.energy_pj >= 0)
        assert trace.energy_pj.max() > 0

    def test_iteration_starts_recorded(self):
        trace = run_single(kernel_of(["add"]), iters=10)
        assert len(trace.iter_start_cycles[0]) == 10

    def test_steady_period_reached(self):
        trace = run_single(kernel_of(["mulpd", "add", "nop", "load"]))
        assert trace.steady_period() is not None

    def test_periodic_profile_verified_repeating(self):
        trace = run_single(kernel_of(["mulpd", "add"]))
        profile = trace.periodic_profile()
        assert profile is not None
        energy, sens, period = profile
        assert len(energy) == period
        assert len(sens) == period
        assert period > 0

    def test_nop_only_kernel_runs_at_decode_width(self):
        # 16 NOPs + loop close through a 4-wide decoder: >= 4 cycles/iter.
        from repro.isa import LoopKernel, nop_region

        kernel = LoopKernel(hp=(), lp=nop_region(TABLE.nop, 16))
        trace = run_single(kernel)
        period = trace.steady_period()
        assert period is not None
        assert 4 <= period <= 6

    def test_thread_count_validation(self):
        sim = ModuleSimulator(bulldozer_chip())
        prog = ThreadProgram(kernel_of(["add"]), 10)
        with pytest.raises(SchedulingError):
            sim.run([])
        with pytest.raises(SchedulingError):
            sim.run([prog, prog, prog])

    def test_max_iterations_caps_work(self):
        trace = run_single(kernel_of(["add"]), iters=5)
        assert len(trace.iter_start_cycles[0]) == 5


class TestStructuralHazards:
    def test_alu_pool_limits_int_throughput(self):
        # 24 independent ADDs on 2 ALUs need >= 12 cycles/iteration.
        trace = run_single(kernel_of(["add"] * 24, lp_nops=0))
        assert trace.steady_period() >= 12

    def test_nops_cheaper_than_adds_in_loop_length(self):
        """Paper Section V.A.5: replacing NOPs with ADDs stretches the loop."""
        mixed = ["add" if i % 2 == 0 else "nop" for i in range(24)]
        all_adds = ["add"] * 24
        period_mixed = run_single(kernel_of(mixed, lp_nops=0)).steady_period()
        period_adds = run_single(kernel_of(all_adds, lp_nops=0)).steady_period()
        assert period_adds > period_mixed

    def test_fp_pipe_pool_limits_fp_throughput(self):
        # 16 independent FP adds on 2 shared FMAC pipes need >= 8 cycles.
        kernel = build_kernel(independent_ops("addpd", 16), replications=1,
                              lp_nops=0, nop_spec=TABLE.nop)
        assert run_single(kernel, iters=60).steady_period() >= 8

    def test_simd_int_uses_separate_pipes_from_fp_arith(self):
        # 8 FP-arith + 8 SIMD-int split over both pools beat 16 FP-arith.
        mixed = build_kernel(
            independent_ops("mulpd", 8) + independent_ops("paddd", 8),
            replications=1, lp_nops=0, nop_spec=TABLE.nop,
        )
        arith_only = build_kernel(independent_ops("mulpd", 16), replications=1,
                                  lp_nops=0, nop_spec=TABLE.nop)
        assert (run_single(mixed, iters=60).steady_period()
                < run_single(arith_only, iters=60).steady_period())

    def test_divider_blocks_its_unit(self):
        fast_kernel = build_kernel(independent_ops("mulpd", 4), replications=1,
                                   lp_nops=0, nop_spec=TABLE.nop)
        slow_kernel = build_kernel(independent_ops("divpd", 4), replications=1,
                                   lp_nops=0, nop_spec=TABLE.nop)
        fast = run_single(fast_kernel, iters=60).steady_period()
        slow = run_single(slow_kernel, iters=60).steady_period()
        assert slow > 2 * fast

    def test_loop_carried_chain_serialises(self):
        from repro.isa import make_chain

        chain = make_chain(TABLE.get("mulpd"), 6)
        independent = subblock(["mulpd"] * 6)
        k_chain = build_kernel(chain, replications=1, lp_nops=0, nop_spec=TABLE.nop)
        k_indep = build_kernel(independent, replications=1, lp_nops=0,
                               nop_spec=TABLE.nop)
        p_chain = run_single(k_chain).steady_period()
        p_indep = run_single(k_indep).steady_period()
        # Chain: 6 ops x 5-cycle latency serialised across iterations too;
        # independent: pipelined at 2 FMAC pipes.
        assert p_chain > 3 * p_indep
        assert p_chain >= 30


class TestSharedResources:
    def test_two_fp_threads_interfere(self):
        """Paper Section V.A.2: the shared FPU stretches co-resident loops."""
        kernel = kernel_of(["vfmaddpd", "mulpd", "addpd", "mulpd"], lp_nops=4)
        prog = ThreadProgram(kernel, 10_000)
        sim = ModuleSimulator(bulldozer_chip())
        solo = sim.run([prog], max_iterations=40).steady_period()
        pair = sim.run([prog, prog], max_iterations=40).steady_period()
        assert pair > 1.5 * solo

    def test_int_threads_interfere_less_than_fp(self):
        # Integer clusters are dedicated: an ALU-bound integer loop barely
        # stretches when co-scheduled, an FP-bound loop doubles.
        int_kernel = kernel_of(["add"] * 8, lp_nops=0)
        fp_kernel = kernel_of(["mulpd", "addpd"] * 4, lp_nops=0)
        sim = ModuleSimulator(bulldozer_chip())

        def stretch(kernel):
            prog = ThreadProgram(kernel, 10_000)
            solo = sim.run([prog], max_iterations=60).steady_period()
            pair = sim.run([prog, prog], max_iterations=60).steady_period()
            return pair / solo

        assert stretch(fp_kernel) > stretch(int_kernel)

    def test_fp_throttle_slows_fp_loops(self):
        kernel = build_kernel(independent_ops("mulpd", 8), replications=1,
                              lp_nops=0, nop_spec=TABLE.nop)
        prog = ThreadProgram(kernel, 10_000)
        free = ModuleSimulator(bulldozer_chip())
        throttled = ModuleSimulator(bulldozer_chip().with_fp_throttle(1))
        p_free = free.run([prog], max_iterations=60).steady_period()
        p_throttled = throttled.run([prog], max_iterations=60).steady_period()
        assert p_throttled >= 2 * p_free
        assert p_throttled > p_free

    def test_fp_throttle_does_not_slow_integer_loops(self):
        kernel = kernel_of(["add", "xor", "sub"], lp_nops=2)
        prog = ThreadProgram(kernel, 10_000)
        p_free = ModuleSimulator(bulldozer_chip()).run(
            [prog], max_iterations=40).steady_period()
        p_thr = ModuleSimulator(bulldozer_chip().with_fp_throttle(1)).run(
            [prog], max_iterations=40).steady_period()
        assert p_thr == p_free


class TestPhaseAndSensitivity:
    def test_phase_cycles_delays_thread_start(self):
        kernel = kernel_of(["add"])
        sim = ModuleSimulator(bulldozer_chip())
        base = sim.run([ThreadProgram(kernel, 10)], max_iterations=10)
        shifted = sim.run([ThreadProgram(kernel, 10, phase_cycles=7)],
                          max_iterations=10)
        assert shifted.iter_start_cycles[0][0] == base.iter_start_cycles[0][0] + 7

    def test_sensitive_ops_mark_sensitivity_trace(self):
        plain = run_single(kernel_of(["add"] * 4, lp_nops=0))
        sensitive = run_single(kernel_of(["imul"] * 4, lp_nops=0))
        assert sensitive.sensitivity.max() > plain.sensitivity.max()
        assert plain.sensitivity.max() == pytest.approx(1.0)

    def test_extension_check_rejects_fma_on_phenom(self):
        kernel = kernel_of(["vfmaddpd"])
        sim = ModuleSimulator(phenom_chip())
        with pytest.raises(SchedulingError):
            sim.run([ThreadProgram(kernel, 10)])

    def test_phenom_runs_sse2_code(self):
        kernel = kernel_of(["mulpd", "add"])
        trace = run_single(kernel, chip=phenom_chip())
        assert trace.energy_pj.max() > 0
