"""Tests for the fault policy, guarded evaluation, and chaos injection."""

import numpy as np
import pytest

from repro.core.audit import AuditConfig, AuditRunner
from repro.core.engine import EvaluationEngine
from repro.core.faults import (
    FaultInjectingBackend,
    FaultInjectionConfig,
    FaultPolicy,
    FaultRecord,
    GuardedFitness,
    InjectedFaultError,
    QuarantineExhaustedError,
    RetryingMeasurements,
    fault_record_from,
)
from repro.core.ga import GaConfig
from repro.core.genome import GenomeSpace
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import FaultEvent, TelemetryCollector
from repro.errors import ConfigurationError, InvariantViolation, MeasurementError
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table

TABLE = default_table()


def small_space(slots=4):
    return GenomeSpace(table=TABLE, slots=slots, replications=1,
                       lp_nops_min=0, lp_nops_max=16)


def genomes(n, seed=0):
    space = small_space()
    rng = np.random.default_rng(seed)
    return [space.random_genome(rng) for _ in range(n)]


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


class FlakyFitness:
    """Fails deterministically for the first *failures* calls per genome."""

    def __init__(self, failures=0, value=1.5, error=MeasurementError):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = {}

    def __call__(self, genome):
        count = self.calls.get(genome, 0)
        self.calls[genome] = count + 1
        if count < self.failures:
            raise self.error(f"flaky failure {count}")
        return self.value


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_defaults_are_sane(self):
        policy = FaultPolicy()
        assert policy.max_retries == 2
        assert policy.on_exhaust == "raise"

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"eval_timeout_s": 0},
        {"on_exhaust": "explode"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)

    def test_exhausted_fitness(self):
        assert FaultPolicy(on_exhaust="skip").exhausted_fitness() == float("-inf")
        assert FaultPolicy(
            on_exhaust="penalize", penalty_fitness=-1.0
        ).exhausted_fitness() == -1.0


class TestFaultInjectionConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            FaultInjectionConfig(exception_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjectionConfig(exception_rate=0.6, corrupt_rate=0.6)
        with pytest.raises(ConfigurationError):
            FaultInjectionConfig(hang_s=-1)


# ----------------------------------------------------------------------
# Guarded evaluation
# ----------------------------------------------------------------------
class TestGuardedFitness:
    def test_clean_call_is_one_attempt(self):
        guard = GuardedFitness(lambda g: 2.5, FaultPolicy(max_retries=3))
        outcome = guard("genome")
        assert outcome.value == 2.5
        assert outcome.attempts == 1
        assert outcome.faults == ()

    def test_retries_until_success(self):
        fitness = FlakyFitness(failures=2)
        guard = GuardedFitness(fitness, FaultPolicy(max_retries=3))
        outcome = guard("g")
        assert outcome.value == 1.5
        assert outcome.attempts == 3
        assert len(outcome.faults) == 2
        assert all(isinstance(f, FaultRecord) for f in outcome.faults)

    def test_exhaust_raise_wraps_with_original_as_cause(self):
        guard = GuardedFitness(
            FlakyFitness(failures=99), FaultPolicy(max_retries=1)
        )
        with pytest.raises(QuarantineExhaustedError) as excinfo:
            guard("g")
        assert isinstance(excinfo.value.__cause__, MeasurementError)
        assert "2 attempts" in str(excinfo.value)

    def test_exhaust_skip_returns_exhausted_outcome(self):
        guard = GuardedFitness(
            FlakyFitness(failures=99),
            FaultPolicy(max_retries=2, on_exhaust="skip"),
        )
        outcome = guard("g")
        assert outcome.exhausted
        assert outcome.value is None
        assert outcome.attempts == 3
        assert len(outcome.faults) == 3

    def test_non_finite_fitness_is_a_fault(self):
        values = iter([float("nan"), float("inf"), 0.5])
        guard = GuardedFitness(
            lambda g: next(values), FaultPolicy(max_retries=3)
        )
        outcome = guard("g")
        assert outcome.value == 0.5
        assert outcome.attempts == 3
        assert all("non-finite" in f.error for f in outcome.faults)

    def test_cooperative_timeout_counts_as_fault(self):
        import time as time_mod

        def slow_then_fast(genome, calls=[0]):
            calls[0] += 1
            if calls[0] == 1:
                time_mod.sleep(0.05)
            return 1.0

        guard = GuardedFitness(
            slow_then_fast,
            FaultPolicy(max_retries=1, eval_timeout_s=0.01),
        )
        outcome = guard("g")
        assert outcome.value == 1.0
        assert outcome.attempts == 2
        assert outcome.faults[0].timeout

    def test_backoff_sleeps_between_attempts(self):
        import time as time_mod

        start = time_mod.perf_counter()
        guard = GuardedFitness(
            FlakyFitness(failures=2),
            FaultPolicy(max_retries=2, backoff_s=0.02, backoff_factor=2.0),
        )
        assert guard("g").value == 1.5
        # 0.02 + 0.04 of backoff at minimum.
        assert time_mod.perf_counter() - start >= 0.06


# ----------------------------------------------------------------------
# Engine integration: retry, quarantine, telemetry
# ----------------------------------------------------------------------
class TestEngineFaultHandling:
    def test_transient_faults_recover_and_count(self):
        observer = RecordingObserver()
        fitness = FlakyFitness(failures=1, value=3.0)
        engine = EvaluationEngine(
            fitness,
            observers=[observer],
            fault_policy=FaultPolicy(max_retries=2),
        )
        batch = genomes(3)
        assert engine.evaluate_many(batch) == [3.0] * 3
        assert engine.retries == 3
        assert engine.quarantines == 0
        faults = [e for e in observer.events if isinstance(e, FaultEvent)]
        assert len(faults) == 3
        assert all(e.action == "retry" for e in faults)

    def test_exhausted_genome_is_quarantined_with_penalty(self):
        observer = RecordingObserver()
        engine = EvaluationEngine(
            FlakyFitness(failures=99),
            observers=[observer],
            fault_policy=FaultPolicy(
                max_retries=1, on_exhaust="penalize", penalty_fitness=-0.5
            ),
        )
        genome = genomes(1)[0]
        assert engine.evaluate_many([genome]) == [-0.5]
        assert engine.quarantines == 1
        assert genome in engine.quarantined
        actions = [e.action for e in observer.events
                   if isinstance(e, FaultEvent)]
        assert actions == ["retry", "quarantine"]
        # Quarantined fitness is cached: no re-measurement next generation.
        assert engine.evaluate_many([genome]) == [-0.5]
        assert engine.cache_hits == 1

    def test_skip_policy_never_wins_selection(self):
        engine = EvaluationEngine(
            FlakyFitness(failures=99),
            fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
        )
        genome = genomes(1)[0]
        assert engine.evaluate_many([genome]) == [float("-inf")]

    def test_raise_policy_propagates(self):
        engine = EvaluationEngine(
            FlakyFitness(failures=99, error=InjectedFaultError),
            fault_policy=FaultPolicy(max_retries=1, on_exhaust="raise"),
        )
        with pytest.raises(QuarantineExhaustedError) as excinfo:
            engine.evaluate_many(genomes(2))
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)

    def test_no_policy_keeps_legacy_raise_behaviour(self):
        engine = EvaluationEngine(FlakyFitness(failures=99))
        with pytest.raises(MeasurementError):
            engine.evaluate_many(genomes(1))


# ----------------------------------------------------------------------
# The chaos wrapper
# ----------------------------------------------------------------------
class TestFaultInjectingBackend:
    def chaos_platform(self, config):
        inner = bulldozer_testbed().backend
        backend = FaultInjectingBackend(inner, config=config)
        return MeasurementPlatform(backend=backend), backend

    def probe(self):
        from repro.core.resonance import probe_program

        return probe_program(TABLE, hp_count=8, lp_nops=8)

    def test_same_seed_same_fault_schedule(self):
        def schedule(seed):
            inner = bulldozer_testbed().backend
            backend = FaultInjectingBackend(inner, config=FaultInjectionConfig(
                seed=seed, exception_rate=0.3))
            faults = []
            for _ in range(20):
                try:
                    backend.measure_program(self.probe(), 2)
                    faults.append(False)
                except InjectedFaultError:
                    faults.append(True)
            return faults

        assert schedule(3) == schedule(3)
        assert any(schedule(3))

    def test_exception_injection(self):
        platform, backend = self.chaos_platform(
            FaultInjectionConfig(seed=0, exception_rate=1.0))
        with pytest.raises(InjectedFaultError):
            platform.measure_program(self.probe(), 2)
        assert backend.counts.exceptions == 1

    def test_nan_corruption_trips_the_platform_guard(self):
        platform, backend = self.chaos_platform(
            FaultInjectionConfig(seed=0, corrupt_rate=1.0))
        with pytest.raises(InvariantViolation) as excinfo:
            platform.measure_program(self.probe(), 2)
        assert excinfo.value.guard == "voltage-finite"
        assert excinfo.value.layer == "platform"
        assert backend.counts.corruptions == 1

    def test_corruption_still_poisons_an_unguarded_backend(self):
        """The raw backend (no platform guard) returns the NaN trace."""
        inner = bulldozer_testbed().backend
        backend = FaultInjectingBackend(inner, config=FaultInjectionConfig(
            seed=0, corrupt_rate=1.0))
        measurement = backend.measure_program(self.probe(), 2)
        assert np.isnan(measurement.max_droop_v)

    @pytest.mark.parametrize("mode, guard", [
        ("nan", "voltage-finite"),
        ("inf", "voltage-finite"),
        ("truncate", "trace-length"),
    ])
    def test_each_corruption_shape_trips_its_guard(self, mode, guard):
        """NaN/Inf/truncated traces raise, never score a finite fitness."""
        platform, _backend = self.chaos_platform(FaultInjectionConfig(
            seed=0, corrupt_rate=1.0, corrupt_mode=mode))
        with pytest.raises(InvariantViolation) as excinfo:
            platform.measure_program(self.probe(), 2)
        assert excinfo.value.guard == guard

    def test_corrupt_mode_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjectionConfig(corrupt_mode="scramble")

    def test_fault_record_from_tags_invariants(self):
        record = fault_record_from(
            InvariantViolation("voltage-finite", "platform", "NaN sample"))
        assert record.invariant == "voltage-finite"
        assert record.layer == "platform"
        plain = fault_record_from(MeasurementError("boom"))
        assert plain.invariant == "" and plain.layer == ""

    def test_clean_calls_pass_through_bit_exact(self):
        platform, _backend = self.chaos_platform(
            FaultInjectionConfig(seed=0))  # all rates zero
        clean = bulldozer_testbed()
        program = self.probe()
        assert (platform.measure_program(program, 2).max_droop_v
                == clean.measure_program(program, 2).max_droop_v)

    def test_platform_simulator_internals_visible_through_wrapper(self):
        platform, _backend = self.chaos_platform(FaultInjectionConfig(seed=0))
        assert platform.chip_sim is not None
        assert platform.pdn is not None
        platform.measure_program(self.probe(), 2)
        assert platform.stats().measurements == 1


class TestRetryingMeasurements:
    def test_retries_injected_faults(self):
        inner = bulldozer_testbed().backend
        backend = FaultInjectingBackend(inner, config=FaultInjectionConfig(
            seed=12, exception_rate=0.4))
        platform = MeasurementPlatform(backend=backend)
        observer = RecordingObserver()
        guarded = RetryingMeasurements(
            platform, FaultPolicy(max_retries=8), observers=[observer])
        from repro.core.resonance import probe_program

        program = probe_program(TABLE, hp_count=8, lp_nops=8)
        for _ in range(10):
            measurement = guarded.measure_program(program, 2)
            assert measurement.max_droop_v > 0
        assert backend.counts.exceptions > 0
        retries = [e for e in observer.events if isinstance(e, FaultEvent)]
        assert len(retries) == backend.counts.exceptions

    def test_exhaustion_reraises(self):
        inner = bulldozer_testbed().backend
        backend = FaultInjectingBackend(inner, config=FaultInjectionConfig(
            seed=0, exception_rate=1.0))
        guarded = RetryingMeasurements(
            MeasurementPlatform(backend=backend), FaultPolicy(max_retries=1))
        from repro.core.resonance import probe_program

        with pytest.raises(QuarantineExhaustedError) as excinfo:
            guarded.measure_program(
                probe_program(TABLE, hp_count=8, lp_nops=8), 2
            )
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)


# ----------------------------------------------------------------------
# The acceptance chaos test: a full campaign under 20% faults
# ----------------------------------------------------------------------
class TestChaosCampaign:
    CONFIG = AuditConfig(
        threads=2,
        ga=GaConfig(population_size=6, generations=3, seed=1),
    )

    def test_campaign_survives_20pct_faults_with_unchanged_fitness(self):
        clean = AuditRunner(bulldozer_testbed(), config=self.CONFIG).run()

        chaos = FaultInjectingBackend(
            bulldozer_testbed().backend,
            config=FaultInjectionConfig(
                seed=7,
                exception_rate=0.10,
                hang_rate=0.05,
                hang_s=0.001,
                corrupt_rate=0.05,
            ),
        )
        collector = TelemetryCollector()
        runner = AuditRunner(
            MeasurementPlatform(backend=chaos),
            config=self.CONFIG,
            observers=[collector],
            fault_policy=FaultPolicy(max_retries=6, on_exhaust="penalize"),
        )
        result = runner.run()

        # The campaign completed and retried its way back to the exact
        # fitness landscape of the clean run: non-faulted genomes (here,
        # every genome — all faults were transient under retry) score
        # bit-identically, so the winning stressmark is the same.
        assert chaos.counts.injected > 0
        assert result.genome == clean.genome
        assert result.max_droop_v == clean.max_droop_v
        assert result.ga_result.history == clean.ga_result.history

        # Retry counts are visible in telemetry and in the summary table.
        assert collector.fault_retries >= chaos.counts.injected
        summary = collector.summary_table()
        assert "fault retries" in summary
        assert "quarantined genomes" in summary

    def test_quarantine_surfaces_when_retries_cannot_win(self):
        """With zero retries, every faulted genome is quarantined.

        Runs the GA's evaluation path (engine over a chaos platform)
        directly — the resonance sweep's guarded measurements re-raise on
        exhaustion by design, so a zero-retry policy only makes sense for
        genome scoring.
        """
        chaos = FaultInjectingBackend(
            bulldozer_testbed().backend,
            config=FaultInjectionConfig(seed=3, exception_rate=0.2),
        )
        collector = TelemetryCollector()
        space = small_space()
        engine = EvaluationEngine.for_stressmarks(
            MeasurementPlatform(backend=chaos),
            space,
            threads=2,
            observers=[collector],
            fault_policy=FaultPolicy(
                max_retries=0, on_exhaust="penalize", penalty_fitness=0.0
            ),
        )
        batch = genomes(20, seed=5)
        values = engine.evaluate_many(batch)
        assert len(values) == len(batch)
        assert chaos.counts.exceptions > 0
        assert engine.quarantines == chaos.counts.exceptions
        assert collector.quarantines == engine.quarantines
        # Non-faulted genomes still score: penalized ones read exactly 0.0.
        assert sum(v > 0.0 for v in values) == len(batch) - engine.quarantines
        assert "quarantined genomes" in collector.summary_table()
